//! The small-step machine: the directive alphabet and the one
//! [`step`] function that applies a directive's named transition rule
//! to a [`State`], yielding the successor state or the exact predicted
//! error.
//!
//! Consumers lower their surface syntax (the fuzzer's AST, the
//! enumerator's alphabet) to [`Directive`]s and fold [`step`] over the
//! sequence; the first error poisons the program — nothing after it is
//! interpreted, matching the runtime's fail-stop task graph.

use crate::error::{Degradation, SemError};
use crate::map::MapKind;
use crate::section::AbsSection;
use crate::state::{Conflict, State};

/// A deliberately wrong rule variant — the harness's canaries, used to
/// prove the comparison pipeline detects spec/runtime disagreement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Perturb {
    /// `S-Kernel` for the 3-point stencil zeroes the left neighbour.
    StencilDropsLeftHalo,
    /// `S-Fold` stops one element early.
    ReduceSkipsLast,
    /// `S-Redistribute` silently drops the lost device's pieces
    /// instead of replaying them.
    RecoveryDropsLostChunk,
}

/// The `spread_integrity(…)` clause of a spread construct — what the
/// commit-boundary verification rules do with a pending corruption
/// token on the committing device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IntegritySem {
    /// No digests: a pending flip rots the payload *below* this
    /// machine's abstraction (the abstract values are unchanged; the
    /// differential harness's bit-level comparison is what catches it),
    /// so the rule leaves the token armed and the state untouched.
    #[default]
    Off,
    /// `S-Verify`: the first committing drain on a device with a
    /// pending token consumes it and poisons the program with
    /// [`SemError::IntegrityViolation`].
    Verify,
    /// `S-Heal`: every pending token on the committing device is
    /// consumed by detect→discard→re-execute rounds that end in the
    /// uncorrupted bits — value-invisible, like `S-Rescue`.
    Heal,
}

/// The reduction operator of `S-Fold`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldOp {
    /// `reduction(+: …)`.
    Sum,
    /// `reduction(max: …)`.
    Max,
    /// `reduction(min: …)`.
    Min,
}

impl FoldOp {
    /// The fold's identity element.
    pub fn identity(self) -> f64 {
        match self {
            FoldOp::Sum => 0.0,
            FoldOp::Max => f64::NEG_INFINITY,
            FoldOp::Min => f64::INFINITY,
        }
    }

    /// Combine an accumulator with one element.
    pub fn combine(self, acc: f64, v: f64) -> f64 {
        match self {
            FoldOp::Sum => acc + v,
            FoldOp::Max => acc.max(v),
            FoldOp::Min => acc.min(v),
        }
    }
}

/// The kernel a construct piece runs (`S-Kernel`), over the piece's
/// iteration range against the mapped device images.
#[derive(Clone, Debug, PartialEq)]
pub enum KernelSem {
    /// `a[i] += c`.
    AddConst {
        /// Target array.
        a: u32,
        /// The constant.
        c: f64,
    },
    /// `a[i] *= c`.
    Scale {
        /// Target array.
        a: u32,
        /// The factor.
        c: f64,
    },
    /// `y[i] += alpha * x[i]`.
    Saxpy {
        /// Read-only input array.
        x: u32,
        /// Accumulated output array.
        y: u32,
        /// The scale factor.
        alpha: f64,
    },
    /// `dst[i] = src[i-1] + src[i] + src[i+1]` — the piece's maps must
    /// cover the one-element halo.
    Stencil3 {
        /// Input array (mapped with halo).
        src: u32,
        /// Output array.
        dst: u32,
    },
    /// The boundary-clamped 3-point stencil over an `n`-element array:
    /// neighbours clamp to `0` and `n − 1` at the array edges.
    Stencil3Clamped {
        /// Input array (mapped with the clamped halo).
        src: u32,
        /// Output array.
        dst: u32,
        /// Array length the neighbours clamp to.
        n: usize,
    },
    /// `partials[i] = alpha * a[i]` — the per-device phase of a
    /// reduction, folded later by [`Directive::HostFold`].
    Partials {
        /// Input array.
        a: u32,
        /// Partials output array.
        partials: u32,
        /// The scale factor.
        alpha: f64,
    },
}

/// One map leg of an enter/exit data directive.
#[derive(Clone, Debug, PartialEq)]
pub struct Leg {
    /// Target device.
    pub device: u32,
    /// The map clause kind.
    pub kind: MapKind,
    /// The mapped section.
    pub section: AbsSection,
}

/// One leg of a `target update spread` directive.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateLeg {
    /// Target device.
    pub device: u32,
    /// Copy direction: device→host when true, host→device otherwise.
    pub from_device: bool,
    /// True when the leg runs under `exchange(auto/peer)`: an eligible
    /// host→device leg records a peer route (`S-Exchange`). The copy's
    /// *values* are unchanged either way — peer pulls are only legal
    /// when the source equals the host image bit for bit.
    pub exchange: bool,
    /// The updated section.
    pub section: AbsSection,
}

/// One piece (chunk placed on a device) of a spread construct.
#[derive(Clone, Debug, PartialEq)]
pub struct Piece {
    /// The device the schedule placed this piece on.
    pub device: u32,
    /// First iteration.
    pub start: usize,
    /// Iteration count.
    pub len: usize,
    /// The construct's map clauses for this piece, in clause order.
    pub maps: Vec<(MapKind, AbsSection)>,
    /// The kernel to run over `start..start + len`.
    pub kernel: KernelSem,
}

impl Piece {
    /// The piece's iteration range.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

/// One directive — the machine's instruction set. Consumers lower each
/// surface statement to one or more of these.
#[derive(Clone, Debug, PartialEq)]
pub enum Directive {
    /// A `target spread` construct: admission first (`S-Admit` /
    /// `S-Degrade`), then per piece the loss rules (`S-FailStop` /
    /// `S-Redistribute`), enters (`S-Enter`), kernel (`S-Kernel`) and
    /// exit-equivalent exits (`S-Exit`).
    SpreadConstruct {
        /// The construct's `devices(…)` list.
        devices: Vec<u32>,
        /// True under `spread_resilience(redistribute)`.
        resilient: bool,
        /// The pre-computed admission plan under `spread_pressure(…)`:
        /// `Some(Ok(events))` records the degradations, `Some(Err(e))`
        /// poisons the construct, `None` means no pressure clause.
        /// (The planner itself lives with the runtime's scheduling
        /// code; the rule consumes its verdict.)
        admission: Option<Result<Vec<Degradation>, SemError>>,
        /// The `spread_integrity(…)` clause: how the commit boundary
        /// treats pending corruption tokens (`S-Verify` / `S-Heal`).
        integrity: IntegritySem,
        /// The scheduled pieces in chunk order.
        pieces: Vec<Piece>,
    },
    /// `target enter data spread`: each leg checks `S-Lost` then
    /// applies `S-Enter`.
    EnterData(Vec<Leg>),
    /// `target exit data spread`: each leg checks `S-Lost` then applies
    /// `S-Exit`.
    ExitData(Vec<Leg>),
    /// `target update spread`: each leg checks `S-Lost` then applies
    /// `S-Update`, recording an `S-Exchange` route when eligible.
    UpdateData(Vec<UpdateLeg>),
    /// A planned compute slowdown lands on a device (`S-Slow`): purely
    /// a timing fault, so the rule validates its parameters and leaves
    /// the state untouched — slowed kernels still compute the same
    /// bits, only later.
    Slowdown {
        /// The slowed device.
        device: u32,
        /// Duration multiplier; must be finite and ≥ 1.
        factor: f64,
    },
    /// Planned silent corruption armed against a device (`S-Flip`):
    /// each token taints one committing device→host drain on that
    /// device, without any error being raised. The rule validates its
    /// parameters and arms the tokens; what happens when one fires is
    /// the committing construct's [`IntegritySem`] rule's business.
    Flip {
        /// The device whose outbound payloads rot.
        device: u32,
        /// How many drains to taint; must be ≥ 1.
        count: u32,
    },
    /// A straggler rescue (`S-Rescue`): the piece is speculatively
    /// re-executed on device `to`. The first-commit-wins gate makes
    /// the duplicate value-invisible, so the rule interprets the piece
    /// once, re-placed on the rescue target — exactly the bits the
    /// winning copy publishes, whichever copy that is.
    Rescue {
        /// The straggling piece, as originally scheduled.
        piece: Piece,
        /// The rescue target device.
        to: u32,
    },
    /// The host-side fold of a reduction (`S-Fold`).
    HostFold {
        /// The partials array to fold.
        partials: u32,
        /// First element.
        start: usize,
        /// One past the last element.
        end: usize,
        /// The reduction operator.
        op: FoldOp,
    },
    /// A malformed directive, rejected before any effect (`S-Invalid`).
    Invalid,
}

/// Lift a mapping conflict into the spec error naming the device and
/// the requested section.
fn conflict_err(device: u32, requested: AbsSection, c: Conflict) -> SemError {
    match c {
        Conflict::Extension { present } => SemError::OverlapExtension {
            device,
            requested,
            present,
        },
        Conflict::NotMapped => SemError::NotMapped { device, requested },
    }
}

/// Rule `S-Lost` for data-directive legs: any leg on a dead device
/// poisons the program (data directives carry no resilience clause).
fn data_alive(st: &State, device: u32) -> Result<(), SemError> {
    if st.alive[device as usize] {
        Ok(())
    } else {
        Err(SemError::DeviceLost { device })
    }
}

/// Rule `S-Exchange` eligibility: the lowest-numbered alive sibling of
/// `dst` holding a live entry that contains `s` with bytes bit-equal to
/// the host image over `s`. `None` routes over the host bus.
fn peer_route(st: &State, dst: u32, s: &AbsSection) -> Option<u32> {
    let want = &st.host[s.array as usize][s.range()];
    for src in 0..st.devices.len() as u32 {
        if src == dst || !st.alive[src as usize] {
            continue;
        }
        let map = &st.devices[src as usize];
        let Some(id) = map.lookup_containing(s) else {
            continue;
        };
        let e = map.entry(id).unwrap();
        let Some(data) = &e.data else { continue };
        let off = s.start - e.section.start;
        let bytes_equal = data[off..off + s.len]
            .iter()
            .zip(want.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        if bytes_equal {
            return Some(src);
        }
    }
    None
}

/// Rule `S-Kernel`: run one piece's kernel against the device images.
fn run_kernel(st: &mut State, device: u32, kernel: &KernelSem, r: std::ops::Range<usize>) {
    match *kernel {
        KernelSem::AddConst { a, c } => {
            for i in r {
                let v = st.read_dev(device, a, i);
                st.write_dev(device, a, i, v + c);
            }
        }
        KernelSem::Scale { a, c } => {
            for i in r {
                let v = st.read_dev(device, a, i);
                st.write_dev(device, a, i, v * c);
            }
        }
        KernelSem::Saxpy { x, y, alpha } => {
            for i in r {
                let xv = st.read_dev(device, x, i);
                let yv = st.read_dev(device, y, i);
                st.write_dev(device, y, i, yv + alpha * xv);
            }
        }
        KernelSem::Stencil3 { src, dst } => {
            let drop_left = st.perturb == Some(Perturb::StencilDropsLeftHalo);
            for i in r {
                let left = if drop_left {
                    0.0
                } else {
                    st.read_dev(device, src, i - 1)
                };
                let v = left + st.read_dev(device, src, i) + st.read_dev(device, src, i + 1);
                st.write_dev(device, dst, i, v);
            }
        }
        KernelSem::Stencil3Clamped { src, dst, n } => {
            for i in r {
                let l = if i == 0 { i } else { i - 1 };
                let rr = if i == n - 1 { i } else { i + 1 };
                let v = st.read_dev(device, src, l)
                    + st.read_dev(device, src, i)
                    + st.read_dev(device, src, rr);
                st.write_dev(device, dst, i, v);
            }
        }
        KernelSem::Partials { a, partials, alpha } => {
            for i in r {
                let v = alpha * st.read_dev(device, a, i);
                st.write_dev(device, partials, i, v);
            }
        }
    }
}

/// Run one construct piece: `S-Enter` per map clause, `S-Kernel`, then
/// `S-Exit` with each clause's exit-equivalent kind.
fn run_piece(st: &mut State, piece: &Piece) -> Result<(), SemError> {
    for (kind, s) in &piece.maps {
        st.enter(piece.device, *kind, *s)
            .map_err(|c| conflict_err(piece.device, *s, c))?;
    }
    run_kernel(st, piece.device, &piece.kernel, piece.range());
    for (kind, s) in &piece.maps {
        st.exit(piece.device, kind.exit_equivalent(), *s)
            .map_err(|c| conflict_err(piece.device, *s, c))?;
    }
    Ok(())
}

/// The balanced contiguous split `spread_overlap(depth)` pipelines a
/// piece over: `depth` sub-ranges (clamped to the iteration count),
/// earlier stages absorbing the remainder — the spec twin of the
/// runtime's stage planner.
pub fn split_stages(r: std::ops::Range<usize>, depth: u32) -> Vec<std::ops::Range<usize>> {
    let n = r.len();
    let k = (depth.max(1) as usize).min(n.max(1));
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut at = r.start;
    for j in 0..k {
        let len = base + usize::from(j < rem);
        out.push(at..at + len);
        at += len;
    }
    out
}

/// Rule `S-Pipeline`: run one piece the way `spread_overlap(depth)`
/// does — enters **whole** (per map clause, unchanged), the kernel over
/// `depth` balanced contiguous sub-ranges **in order**, exits **whole**
/// with each clause's exit-equivalent kind.
///
/// The rule's content is an equivalence claim: because the sub-ranges
/// partition the piece's range and run in ascending order on one
/// device, `run_piece_pipelined(st, p, depth)` transitions `st` to
/// exactly the state `run_piece(st, p)` does, for every depth ≥ 1.
/// Pipelining changes *when* bytes move, never *what* commits — which
/// is why the conformance oracle stays overlap-blind and the harness
/// compares final states bit for bit. The bounded model check in this
/// crate's tests exercises every kernel form × depths 1..=4.
pub fn run_piece_pipelined(st: &mut State, piece: &Piece, depth: u32) -> Result<(), SemError> {
    for (kind, s) in &piece.maps {
        st.enter(piece.device, *kind, *s)
            .map_err(|c| conflict_err(piece.device, *s, c))?;
    }
    for stage in split_stages(piece.range(), depth) {
        run_kernel(st, piece.device, &piece.kernel, stage);
    }
    for (kind, s) in &piece.maps {
        st.exit(piece.device, kind.exit_equivalent(), *s)
            .map_err(|c| conflict_err(piece.device, *s, c))?;
    }
    Ok(())
}

/// Apply one directive's transition rule to `st`. The successor state
/// is written in place; an `Err` is the exact predicted failure and
/// leaves the state poisoned mid-directive — callers stop at the first
/// error, like the runtime's task graph does.
pub fn step(st: &mut State, d: &Directive) -> Result<(), SemError> {
    match d {
        // S-Invalid: rejected before any effect.
        Directive::Invalid => Err(SemError::Invalid),
        Directive::SpreadConstruct {
            devices,
            resilient,
            admission,
            integrity,
            pieces,
        } => {
            // S-Admit / S-Degrade: the admission verdict lands before
            // any piece runs.
            if let Some(adm) = admission {
                match adm {
                    Ok(events) => st.degradations.extend(events.iter().cloned()),
                    Err(e) => return Err(e.clone()),
                }
            }
            for piece in pieces {
                if !st.alive[piece.device as usize] {
                    // S-FailStop: no resilience clause, or no survivor
                    // in the construct's device list.
                    let survivor = devices.iter().any(|&d| st.alive[d as usize]);
                    if !resilient || !survivor {
                        return Err(SemError::DeviceLost {
                            device: piece.device,
                        });
                    }
                    // The RecoveryDropsLostChunk canary: pretend the
                    // replay silently drops the piece.
                    if st.perturb == Some(Perturb::RecoveryDropsLostChunk) {
                        continue;
                    }
                    // S-Redistribute: the replay is bit-invisible
                    // (fresh-in, fresh-out, disjoint sections), so the
                    // rule interprets the piece in place.
                }
                run_piece(st, piece)?;
                // S-Verify / S-Heal: the first committing drain on a
                // device with pending flip tokens hits the digest
                // check. A piece with no committing (from/tofrom) map
                // drains nothing, so it cannot consume a token.
                let d = piece.device as usize;
                let commits = piece
                    .maps
                    .iter()
                    .any(|(k, s)| k.copies_out() && !s.is_empty());
                if commits && st.flips[d] > 0 {
                    match integrity {
                        // Below the abstraction: the rotten bytes land
                        // on the host unnoticed. The abstract values
                        // stay clean — the harness's bit-level
                        // comparison against the runtime is what
                        // surfaces the divergence.
                        IntegritySem::Off => {}
                        // One token, one caught mismatch, fail-stop.
                        IntegritySem::Verify => {
                            st.flips[d] -= 1;
                            return Err(SemError::IntegrityViolation {
                                device: piece.device,
                            });
                        }
                        // Detect→discard→redo rounds burn every token
                        // on the device and end in the clean bits the
                        // piece already produced — value-invisible.
                        IntegritySem::Heal => st.flips[d] = 0,
                    }
                }
            }
            Ok(())
        }
        Directive::EnterData(legs) => {
            for leg in legs {
                data_alive(st, leg.device)?;
                st.enter(leg.device, leg.kind, leg.section)
                    .map_err(|c| conflict_err(leg.device, leg.section, c))?;
            }
            Ok(())
        }
        Directive::ExitData(legs) => {
            for leg in legs {
                data_alive(st, leg.device)?;
                st.exit(leg.device, leg.kind, leg.section)
                    .map_err(|c| conflict_err(leg.device, leg.section, c))?;
            }
            Ok(())
        }
        Directive::UpdateData(legs) => {
            for leg in legs {
                data_alive(st, leg.device)?;
                // S-Exchange: route eligibility is judged against the
                // state *before* this leg's copy lands.
                if leg.exchange && !leg.from_device && !leg.section.is_empty() {
                    if let Some(src) = peer_route(st, leg.device, &leg.section) {
                        let s = leg.section;
                        st.routes.push((src, leg.device, s.array, s.start, s.len));
                    }
                }
                st.update(leg.device, leg.from_device, leg.section)
                    .map_err(|c| conflict_err(leg.device, leg.section, c))?;
            }
            Ok(())
        }
        Directive::Slowdown { device, factor } => {
            // S-Slow: a timing-only fault. Malformed parameters are
            // rejected (S-Invalid); a well-formed slowdown is a no-op
            // on the abstract state.
            if *device as usize >= st.alive.len() || !factor.is_finite() || *factor < 1.0 {
                return Err(SemError::Invalid);
            }
            Ok(())
        }
        Directive::Flip { device, count } => {
            // S-Flip: arming corruption is not itself an effect on the
            // data — it taints *future* committing drains. Malformed
            // parameters are rejected (S-Invalid).
            if *device as usize >= st.alive.len() || *count == 0 {
                return Err(SemError::Invalid);
            }
            st.flips[*device as usize] += count;
            Ok(())
        }
        Directive::Rescue { piece, to } => {
            // S-Rescue: the rescue target must exist and be alive —
            // the monitor only picks healthy siblings, so a dead
            // target is the predicted failure, not a silent skip.
            if *to as usize >= st.alive.len() {
                return Err(SemError::Invalid);
            }
            if !st.alive[*to as usize] {
                return Err(SemError::DeviceLost { device: *to });
            }
            let replaced = Piece {
                device: *to,
                ..piece.clone()
            };
            run_piece(st, &replaced)
        }
        Directive::HostFold {
            partials,
            start,
            end,
            op,
        } => {
            // S-Fold (with the ReduceSkipsLast canary stopping early).
            let end = if st.perturb == Some(Perturb::ReduceSkipsLast) {
                end.saturating_sub(1)
            } else {
                *end
            };
            let value = (*start..end)
                .map(|i| st.host[*partials as usize][i])
                .fold(op.identity(), |acc, v| op.combine(acc, v));
            st.reduces.push(value);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sec(a: u32, start: usize, len: usize) -> AbsSection {
        AbsSection::new(a, start, len)
    }

    fn addconst_piece(device: u32, start: usize, len: usize, c: f64) -> Piece {
        Piece {
            device,
            start,
            len,
            maps: vec![(MapKind::ToFrom, sec(0, start, len))],
            kernel: KernelSem::AddConst { a: 0, c },
        }
    }

    #[test]
    fn spread_construct_maps_runs_and_unmaps() {
        let mut st = State::new(vec![vec![1.0; 8]], 2, None);
        let d = Directive::SpreadConstruct {
            devices: vec![0, 1],
            resilient: false,
            admission: None,
            integrity: IntegritySem::Off,
            pieces: vec![addconst_piece(0, 0, 4, 2.0), addconst_piece(1, 4, 4, 2.0)],
        };
        step(&mut st, &d).unwrap();
        assert_eq!(st.host[0], vec![3.0; 8]);
        assert!(st.devices[0].snapshot().is_empty(), "construct releases");
        assert!(st.devices[1].snapshot().is_empty());
    }

    #[test]
    fn fail_stop_on_a_dead_device_raises_device_lost() {
        let mut st = State::new(vec![vec![0.0; 4]], 2, Some(1));
        let d = Directive::SpreadConstruct {
            devices: vec![0, 1],
            resilient: false,
            admission: None,
            integrity: IntegritySem::Off,
            pieces: vec![addconst_piece(0, 0, 2, 1.0), addconst_piece(1, 2, 2, 1.0)],
        };
        assert_eq!(step(&mut st, &d), Err(SemError::DeviceLost { device: 1 }));
    }

    #[test]
    fn redistribution_is_value_invisible_and_the_canary_is_not() {
        let resilient = |st: &mut State| {
            step(
                st,
                &Directive::SpreadConstruct {
                    devices: vec![0, 1],
                    resilient: true,
                    admission: None,
                    integrity: IntegritySem::Off,
                    pieces: vec![addconst_piece(0, 0, 2, 1.0), addconst_piece(1, 2, 2, 1.0)],
                },
            )
        };
        let mut st = State::new(vec![vec![0.0; 4]], 2, Some(1));
        resilient(&mut st).unwrap();
        assert_eq!(st.host[0], vec![1.0; 4], "redistribute == fault-free");

        let mut st = State::new(vec![vec![0.0; 4]], 2, Some(1));
        st.perturb = Some(Perturb::RecoveryDropsLostChunk);
        resilient(&mut st).unwrap();
        assert_eq!(
            st.host[0],
            vec![1.0, 1.0, 0.0, 0.0],
            "canary drops the piece"
        );
    }

    #[test]
    fn data_directive_on_a_corpse_is_lost_even_with_resilience() {
        let mut st = State::new(vec![vec![0.0; 4]], 2, Some(0));
        let d = Directive::EnterData(vec![Leg {
            device: 0,
            kind: MapKind::To,
            section: sec(0, 0, 4),
        }]);
        assert_eq!(step(&mut st, &d), Err(SemError::DeviceLost { device: 0 }));
    }

    #[test]
    fn degraded_admission_poisons_before_any_piece() {
        let mut st = State::new(vec![vec![0.0; 4]], 1, None);
        let e = SemError::Degraded {
            device: 0,
            what: "chunk piece [0..4)".into(),
            bytes: 32,
        };
        let d = Directive::SpreadConstruct {
            devices: vec![0],
            resilient: false,
            admission: Some(Err(e.clone())),
            integrity: IntegritySem::Off,
            pieces: vec![addconst_piece(0, 0, 4, 1.0)],
        };
        assert_eq!(step(&mut st, &d), Err(e));
        assert_eq!(st.host[0], vec![0.0; 4], "no piece ran");
    }

    #[test]
    fn fold_sums_partials_and_the_canary_skips_the_last() {
        let fold = Directive::HostFold {
            partials: 0,
            start: 0,
            end: 4,
            op: FoldOp::Sum,
        };
        let mut st = State::new(vec![vec![1.0, 2.0, 3.0, 4.0]], 1, None);
        step(&mut st, &fold).unwrap();
        assert_eq!(st.reduces, vec![10.0]);

        st.perturb = Some(Perturb::ReduceSkipsLast);
        step(&mut st, &fold).unwrap();
        assert_eq!(st.reduces, vec![10.0, 6.0]);
    }

    #[test]
    fn slowdown_is_state_invisible_but_validated() {
        let mut st = State::new(vec![vec![1.0; 4]], 2, None);
        let before = st.host.clone();
        step(
            &mut st,
            &Directive::Slowdown {
                device: 1,
                factor: 8.0,
            },
        )
        .unwrap();
        assert_eq!(st.host, before, "S-Slow changes timing, not values");

        for (device, factor) in [(2, 8.0), (0, 0.5), (0, f64::NAN), (0, f64::INFINITY)] {
            assert_eq!(
                step(&mut st, &Directive::Slowdown { device, factor }),
                Err(SemError::Invalid),
                "device {device} factor {factor} must be rejected"
            );
        }
    }

    /// Bounded model check of rule `S-Pipeline`: for every kernel form
    /// and every depth 1..=4 (including depths that clamp), the
    /// pipelined interpretation of a piece reaches bit-for-bit the same
    /// state as the whole-piece rule.
    #[test]
    fn pipeline_is_equivalent_to_whole_piece_for_every_kernel() {
        let n = 11; // odd so balanced splits exercise the remainder path
        let cases: Vec<(Vec<Vec<f64>>, Piece)> = vec![
            (
                vec![(0..n).map(|i| i as f64).collect()],
                Piece {
                    device: 0,
                    start: 0,
                    len: n,
                    maps: vec![(MapKind::ToFrom, sec(0, 0, n))],
                    kernel: KernelSem::AddConst { a: 0, c: 2.5 },
                },
            ),
            (
                vec![(0..n).map(|i| 1.0 + i as f64).collect()],
                Piece {
                    device: 0,
                    start: 0,
                    len: n,
                    maps: vec![(MapKind::ToFrom, sec(0, 0, n))],
                    kernel: KernelSem::Scale { a: 0, c: -3.0 },
                },
            ),
            (
                vec![
                    (0..n).map(|i| i as f64).collect(),
                    (0..n).map(|i| (i * i) as f64).collect(),
                ],
                Piece {
                    device: 0,
                    start: 0,
                    len: n,
                    maps: vec![(MapKind::To, sec(0, 0, n)), (MapKind::ToFrom, sec(1, 0, n))],
                    kernel: KernelSem::Saxpy {
                        x: 0,
                        y: 1,
                        alpha: 0.5,
                    },
                },
            ),
            (
                vec![(0..n).map(|i| i as f64).collect(), vec![0.0; n]],
                Piece {
                    device: 0,
                    start: 1,
                    len: n - 2,
                    maps: vec![
                        (MapKind::To, sec(0, 0, n)),
                        (MapKind::From, sec(1, 1, n - 2)),
                    ],
                    kernel: KernelSem::Stencil3 { src: 0, dst: 1 },
                },
            ),
            (
                vec![(0..n).map(|i| (2 * i) as f64).collect(), vec![0.0; n]],
                Piece {
                    device: 0,
                    start: 0,
                    len: n,
                    maps: vec![(MapKind::To, sec(0, 0, n)), (MapKind::From, sec(1, 0, n))],
                    kernel: KernelSem::Stencil3Clamped { src: 0, dst: 1, n },
                },
            ),
            (
                vec![(0..n).map(|i| i as f64).collect(), vec![0.0; n]],
                Piece {
                    device: 0,
                    start: 0,
                    len: n,
                    maps: vec![(MapKind::To, sec(0, 0, n)), (MapKind::From, sec(1, 0, n))],
                    kernel: KernelSem::Partials {
                        a: 0,
                        partials: 1,
                        alpha: 4.0,
                    },
                },
            ),
        ];
        for (host, piece) in &cases {
            let mut whole = State::new(host.clone(), 1, None);
            run_piece(&mut whole, piece).unwrap();
            for depth in 1..=4u32 {
                let mut piped = State::new(host.clone(), 1, None);
                run_piece_pipelined(&mut piped, piece, depth).unwrap();
                let same = whole.host.iter().zip(&piped.host).all(|(a, b)| {
                    a.iter()
                        .zip(b.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
                });
                assert!(
                    same,
                    "{:?} depth {depth}: pipelined state diverged",
                    piece.kernel
                );
                assert!(piped.devices[0].snapshot().is_empty(), "exit releases");
            }
        }
    }

    #[test]
    fn split_stages_partitions_in_order() {
        for (range, depth) in [(3..14, 4u32), (0..1, 4), (5..5, 2), (0..8, 1), (2..6, 64)] {
            let stages = split_stages(range.clone(), depth);
            assert!(stages.len() <= depth.max(1) as usize);
            assert!(stages.len() <= range.len().max(1));
            let mut at = range.start;
            for s in &stages {
                assert_eq!(s.start, at, "contiguous in order");
                at = s.end;
            }
            assert_eq!(at, range.end.max(range.start), "partitions the range");
            let max = stages.iter().map(|s| s.len()).max().unwrap_or(0);
            let min = stages.iter().map(|s| s.len()).min().unwrap_or(0);
            assert!(max - min <= 1, "balanced: {stages:?}");
        }
    }

    fn flipped_construct(integrity: IntegritySem) -> Directive {
        Directive::SpreadConstruct {
            devices: vec![0, 1],
            resilient: false,
            admission: None,
            integrity,
            pieces: vec![addconst_piece(0, 0, 4, 2.0), addconst_piece(1, 4, 4, 2.0)],
        }
    }

    #[test]
    fn flip_arms_tokens_and_validates_its_parameters() {
        let mut st = State::new(vec![vec![0.0; 4]], 2, None);
        let before = st.host.clone();
        step(
            &mut st,
            &Directive::Flip {
                device: 1,
                count: 2,
            },
        )
        .unwrap();
        assert_eq!(st.flips, vec![0, 2], "S-Flip arms, it does not corrupt");
        assert_eq!(st.host, before);

        for (device, count) in [(2, 1), (0, 0)] {
            assert_eq!(
                step(&mut st, &Directive::Flip { device, count }),
                Err(SemError::Invalid),
                "device {device} count {count} must be rejected"
            );
        }
    }

    #[test]
    fn verify_consumes_one_token_and_poisons_on_the_committing_device() {
        let mut st = State::new(vec![vec![1.0; 8]], 2, None);
        step(
            &mut st,
            &Directive::Flip {
                device: 1,
                count: 2,
            },
        )
        .unwrap();
        assert_eq!(
            step(&mut st, &flipped_construct(IntegritySem::Verify)),
            Err(SemError::IntegrityViolation { device: 1 })
        );
        assert_eq!(st.flips, vec![0, 1], "one drain, one consumed token");
    }

    #[test]
    fn heal_burns_every_token_on_the_device_and_is_value_invisible() {
        let mut clean = State::new(vec![vec![1.0; 8]], 2, None);
        step(&mut clean, &flipped_construct(IntegritySem::Heal)).unwrap();

        let mut st = State::new(vec![vec![1.0; 8]], 2, None);
        step(
            &mut st,
            &Directive::Flip {
                device: 1,
                count: 3,
            },
        )
        .unwrap();
        step(&mut st, &flipped_construct(IntegritySem::Heal)).unwrap();
        assert_eq!(st.flips, vec![0, 0], "heal rounds drain the streak");
        st.flips = clean.flips.clone();
        assert_eq!(st, clean, "S-Heal == fault-free, bit for bit");
    }

    #[test]
    fn off_leaves_tokens_armed_and_the_abstract_values_clean() {
        let mut st = State::new(vec![vec![1.0; 8]], 2, None);
        step(
            &mut st,
            &Directive::Flip {
                device: 0,
                count: 1,
            },
        )
        .unwrap();
        step(&mut st, &flipped_construct(IntegritySem::Off)).unwrap();
        assert_eq!(st.flips, vec![1, 0], "off computes no digests");
        assert_eq!(st.host[0], vec![3.0; 8], "rot is below the abstraction");
    }

    #[test]
    fn a_non_committing_piece_cannot_consume_a_token() {
        // map(to:) only — nothing drains device→host, so the token
        // survives the whole construct even under verify.
        let mut st = State::new(vec![vec![1.0; 4]], 1, None);
        step(
            &mut st,
            &Directive::Flip {
                device: 0,
                count: 1,
            },
        )
        .unwrap();
        let d = Directive::SpreadConstruct {
            devices: vec![0],
            resilient: false,
            admission: None,
            integrity: IntegritySem::Verify,
            pieces: vec![Piece {
                device: 0,
                start: 0,
                len: 4,
                maps: vec![(MapKind::To, sec(0, 0, 4))],
                kernel: KernelSem::Scale { a: 0, c: 2.0 },
            }],
        };
        step(&mut st, &d).unwrap();
        assert_eq!(st.flips, vec![1], "no committing drain, no check");
    }

    #[test]
    fn rescue_replays_the_piece_on_the_target() {
        // The original piece on device 1 straggles; the rescue runs it
        // on device 0 — the host ends up exactly as if the piece had
        // run where it was scheduled.
        let mut st = State::new(vec![vec![1.0; 8]], 2, None);
        step(
            &mut st,
            &Directive::Rescue {
                piece: addconst_piece(1, 4, 4, 2.0),
                to: 0,
            },
        )
        .unwrap();
        assert_eq!(st.host[0], [1.0, 1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0]);
        assert!(st.devices[0].snapshot().is_empty(), "rescue releases");
    }

    #[test]
    fn rescue_onto_a_corpse_or_out_of_range_fails() {
        let mut st = State::new(vec![vec![0.0; 4]], 2, Some(0));
        assert_eq!(
            step(
                &mut st,
                &Directive::Rescue {
                    piece: addconst_piece(1, 0, 4, 1.0),
                    to: 0,
                }
            ),
            Err(SemError::DeviceLost { device: 0 })
        );
        assert_eq!(
            step(
                &mut st,
                &Directive::Rescue {
                    piece: addconst_piece(1, 0, 4, 1.0),
                    to: 7,
                }
            ),
            Err(SemError::Invalid)
        );
    }

    #[test]
    fn exchange_routes_from_the_lowest_bit_equal_sibling() {
        let mut st = State::new(vec![(0..8).map(f64::from).collect()], 3, None);
        // Device 2 holds [0:4] bit-equal to the host; device 1 holds a
        // stale copy; device 0 is the destination.
        st.enter(1, MapKind::To, sec(0, 0, 4)).unwrap();
        st.write_dev(1, 0, 1, -9.0);
        st.enter(2, MapKind::To, sec(0, 0, 4)).unwrap();
        st.enter(0, MapKind::To, sec(0, 0, 4)).unwrap();
        let d = Directive::UpdateData(vec![UpdateLeg {
            device: 0,
            from_device: false,
            exchange: true,
            section: sec(0, 1, 2),
        }]);
        step(&mut st, &d).unwrap();
        assert_eq!(st.routes, vec![(2, 0, 0, 1, 2)], "stale sibling skipped");

        // A dead sibling is never a source.
        st.alive[2] = false;
        step(&mut st, &d).unwrap();
        assert_eq!(st.routes.len(), 1, "no eligible source -> host bus");
    }
}
