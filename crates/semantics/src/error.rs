//! The spec's error and degradation-event vocabulary.
//!
//! These shadow the runtime's `RtError` variants that a directive
//! program can provoke, expressed over [`AbsSection`]s so the crate
//! stays dependency-free; `spread-check` converts them to real
//! `RtError`s at its boundary.

use crate::section::AbsSection;

/// The predicted failure of a directive program, raised by a transition
/// rule instead of producing a successor state.
#[derive(Clone, Debug, PartialEq)]
pub enum SemError {
    /// `M-Extend`: an enter overlapped a present entry without being
    /// contained in it (the §V-B array-extension error).
    OverlapExtension {
        /// Device the enter targeted.
        device: u32,
        /// The requested section.
        requested: AbsSection,
        /// The already-present entry it collided with.
        present: AbsSection,
    },
    /// `M-NotMapped`: an exit or update named a section no live entry
    /// contains.
    NotMapped {
        /// Device the operation targeted.
        device: u32,
        /// The requested section.
        requested: AbsSection,
    },
    /// `S-FailStop` / `S-Lost`: work landed on a permanently lost
    /// device and nothing allowed recovery.
    DeviceLost {
        /// The dead device.
        device: u32,
    },
    /// `S-Invalid`: the directive was malformed (empty device list,
    /// bad clause combination, …) and rejected before any effect.
    Invalid,
    /// `S-Verify`: a checked commit boundary re-digested a payload that
    /// no longer matched its source digest — silent corruption caught
    /// under `spread_integrity(verify)`, poisoning the program.
    IntegrityViolation {
        /// The device whose payload failed verification.
        device: u32,
    },
    /// `S-Degrade`: under `spread_pressure(fail)` (or an unsplittable /
    /// unspillable piece), admission could not place a chunk piece.
    Degraded {
        /// Device the piece was scheduled on.
        device: u32,
        /// Human-readable description of the piece, matching the
        /// runtime's wording.
        what: String,
        /// The piece's footprint in bytes.
        bytes: u64,
    },
}

/// What kind of graceful degradation the admission planner applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegKind {
    /// The piece ran whole but on a different device than scheduled.
    AdmissionShrunk,
    /// The chunk was split into smaller pieces to fit.
    ChunkSplit,
    /// The piece was spilled to host execution.
    Spilled,
}

/// One recorded degradation event, in the order admission planned it.
#[derive(Clone, Debug, PartialEq)]
pub struct Degradation {
    /// The kind of degradation.
    pub kind: DegKind,
    /// The device involved (`None` for host spills).
    pub device: Option<u32>,
    /// First iteration of the affected piece.
    pub start: usize,
    /// Iteration count of the affected piece.
    pub len: usize,
    /// The piece's footprint in bytes.
    pub bytes: u64,
}
