//! # spread-semantics
//!
//! The executable small-step semantics of the paper's `target spread`
//! directive set — the *specification* that the rest of the workspace
//! consumes instead of re-deriving:
//!
//! * the `spread-check` oracle lowers its directive programs to
//!   [`machine::Directive`]s and steps [`machine::step`] to predict the
//!   final host state, mapping tables, degradation events, peer routes
//!   or the exact error;
//! * `spread-rt` mirrors every presence-table mutation against a
//!   [`state::DeviceMap`] under `debug_assertions`, so every test run
//!   of the runtime validates the live state against the spec;
//! * the bounded model checker enumerates *all* directive programs up
//!   to a size bound and checks runtime-vs-spec agreement exhaustively.
//!
//! The crate is dependency-free on purpose: `spread-rt` sits *below*
//! everything else in the workspace and must be able to depend on the
//! spec without a cycle, so the spec speaks its own small vocabulary
//! ([`section::AbsSection`], [`map::MapKind`], [`error::SemError`]) and
//! the consumers convert at their boundary.
//!
//! ## The abstract state
//!
//! [`state::State`] is the explicit machine state: host array images,
//! one [`state::DeviceMap`] (presence entries with reference counts and
//! a dying phase) per device, device health, the recorded
//! degradation-event and peer-route sequences, and the reduction
//! results — everything the conformance harness observes at quiescence.
//!
//! ## Rule index
//!
//! Mapping micro-rules (one per [`state::DeviceMap`] transition — the
//! granularity `spread-rt`'s presence tables mirror):
//!
//! | rule | method | meaning |
//! |------|--------|---------|
//! | `M-Reuse` | [`state::DeviceMap::begin_enter`] | enter of a section contained in a live entry: refcount + 1, **no copy** |
//! | `M-Extend` | [`state::DeviceMap::begin_enter`] | enter overlapping without containment: the §V-B array-extension error |
//! | `M-Fresh` | [`state::DeviceMap::begin_enter`] | enter of an absent section: caller allocates and [`state::DeviceMap::insert_fresh`] (`M-Alloc`) |
//! | `M-Keep` | [`state::DeviceMap::begin_exit`] | exit with references remaining: refcount − 1, nothing else |
//! | `M-Dying` | [`state::DeviceMap::begin_exit`] | last release: the entry dies — unavailable for reuse, storage live until `M-Free` |
//! | `M-NotMapped` | [`state::DeviceMap::begin_exit`] | exit/update of something no live entry contains |
//! | `M-Free` | [`state::DeviceMap::commit_exit`] | the release transfer completed: the dying entry is removed |
//! | `M-Wipe` | [`state::DeviceMap::clear`] | permanent device loss: every entry (live and dying) vanishes wholesale |
//!
//! Directive rules (one per [`machine::Directive`] arm of
//! [`machine::step`]):
//!
//! | rule | directive / clause | meaning |
//! |------|--------------------|---------|
//! | `S-Invalid` | malformed directive | rejected with [`error::SemError::Invalid`] before any effect |
//! | `S-Admit` | `spread_pressure(…)` | the admission plan's degradation events are recorded before any piece runs |
//! | `S-Degrade` | `spread_pressure(…)` | an unplaceable piece poisons the construct with [`error::SemError::Degraded`] |
//! | `S-FailStop` | `target spread` | a piece on a dead device without `spread_resilience` (or without a surviving device) raises [`error::SemError::DeviceLost`] |
//! | `S-Redistribute` | `spread_resilience(redistribute)` | a piece on a dead device with a survivor redistributes — bit-invisibly, so the rule interprets it in place |
//! | `S-Enter` | `map(spread_to/…)` enter | per map clause: `M-Reuse` or `M-Fresh` + copy-in iff the kind copies in |
//! | `S-Kernel` | construct body | the kernel runs against the mapped device images |
//! | `S-Exit` | construct end / exit data | per clause with its exit-equivalent kind; the last release copies out (`from`) and frees |
//! | `S-Update` | `target update spread` | copies through the containing live entry, host→device or device→host |
//! | `S-Exchange` | `exchange(auto/peer)` | an update leg routes device-to-device from the lowest-numbered alive sibling holding the section bit-equal to the host image |
//! | `S-Lost` | data directives | any leg on a dead device poisons the program (data directives carry no resilience clause) |
//! | `S-Fold` | `reduction(…)` | the host folds the partials array with the reduction operator |
//! | `S-Pipeline` | `spread_overlap(depth)` | a pipelined piece enters whole, runs its kernel over `depth` balanced contiguous sub-ranges in order, exits whole — state-equivalent to `S-Kernel` on the whole range ([`machine::run_piece_pipelined`]) |
//!
//! Perturbations ([`machine::Perturb`]) are the harness's canaries: a
//! deliberately wrong rule variant, used to prove the comparison
//! pipeline detects disagreements.

#![warn(missing_docs)]

pub mod error;
pub mod machine;
pub mod map;
pub mod section;
pub mod state;

pub use error::{DegKind, Degradation, SemError};
pub use machine::{
    run_piece_pipelined, split_stages, step, Directive, FoldOp, IntegritySem, KernelSem, Leg,
    Perturb, Piece, UpdateLeg,
};
pub use map::MapKind;
pub use section::AbsSection;
pub use state::{Conflict, DeviceMap, EnterOutcome, ExitOutcome, State};
