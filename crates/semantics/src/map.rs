//! The spec's map-clause kinds, mirroring the runtime's `MapType` with
//! the same copy directions and the construct-end exit equivalence.

/// A `map(…)` clause kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapKind {
    /// `map(to: …)` / `map(spread_to: …)` — copy in on the
    /// absent→present transition.
    To,
    /// `map(from: …)` / `map(spread_from: …)` — copy out on the last
    /// release.
    From,
    /// `map(tofrom: …)` — both.
    ToFrom,
    /// `map(alloc: …)` — allocate only.
    Alloc,
    /// `map(release: …)` — decrement without copy-out.
    Release,
    /// `map(delete: …)` — force the reference count to zero.
    Delete,
}

impl MapKind {
    /// True if entering with this kind copies host→device on the
    /// absent→present transition.
    pub fn copies_in(self) -> bool {
        matches!(self, MapKind::To | MapKind::ToFrom)
    }

    /// True if the last release with this kind copies device→host.
    pub fn copies_out(self) -> bool {
        matches!(self, MapKind::From | MapKind::ToFrom)
    }

    /// The exit kind a `target` construct applies at its end for a map
    /// entered with `self`: `from`/`tofrom` copy out, everything else
    /// releases without a copy.
    pub fn exit_equivalent(self) -> MapKind {
        match self {
            MapKind::From | MapKind::ToFrom => MapKind::From,
            MapKind::To | MapKind::Alloc => MapKind::Release,
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_directions_and_exit_equivalents() {
        assert!(MapKind::To.copies_in() && !MapKind::To.copies_out());
        assert!(!MapKind::From.copies_in() && MapKind::From.copies_out());
        assert!(MapKind::ToFrom.copies_in() && MapKind::ToFrom.copies_out());
        assert!(!MapKind::Alloc.copies_in() && !MapKind::Release.copies_out());
        assert_eq!(MapKind::ToFrom.exit_equivalent(), MapKind::From);
        assert_eq!(MapKind::From.exit_equivalent(), MapKind::From);
        assert_eq!(MapKind::To.exit_equivalent(), MapKind::Release);
        assert_eq!(MapKind::Alloc.exit_equivalent(), MapKind::Release);
        assert_eq!(MapKind::Delete.exit_equivalent(), MapKind::Delete);
    }
}
