//! The persistent worker-thread team.
//!
//! A [`TeamPool`] of size `T` owns `T - 1` parked worker threads; the
//! calling thread participates as team member 0, exactly like the OpenMP
//! encountering thread in a `parallel` region. [`TeamPool::broadcast`]
//! runs one closure on every member and returns when all are done.
//!
//! The broadcast payload is a borrowed closure (`&F`), erased to a raw
//! pointer for the workers — the pool guarantees the closure outlives the
//! round because `broadcast` does not return until every worker has
//! finished (a panicking worker is counted as finished and the panic is
//! re-raised on the leader after the round).

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::schedule::{ChunkDispenser, LoopSchedule};

/// Type-erased borrowed job: pointer + monomorphized trampoline.
#[derive(Clone, Copy)]
struct RawJob {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

// SAFETY: the pointee is a `&F where F: Sync` that the leader keeps alive
// for the whole round; sending the pointer to workers is exactly the
// `&F: Send` obtained from `F: Sync`.
unsafe impl Send for RawJob {}

unsafe fn trampoline<F: Fn(usize) + Sync>(data: *const (), tid: usize) {
    // SAFETY: `data` was created from `&F` in `broadcast` and is live.
    let f = unsafe { &*(data as *const F) };
    f(tid);
}

struct State {
    epoch: u64,
    job: Option<RawJob>,
    /// Workers still running the current round.
    running: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    start: Condvar,
    done: Condvar,
    panicked: AtomicBool,
}

/// A fixed-size team of threads with OpenMP-parallel-region semantics.
///
/// ```
/// use spread_teams::{LoopSchedule, TeamPool};
///
/// let pool = TeamPool::new(4);
/// let total = pool.parallel_reduce(
///     0..1_000,
///     LoopSchedule::Dynamic { chunk: 64 },
///     0u64,
///     |chunk, acc| acc + chunk.map(|i| i as u64).sum::<u64>(),
///     |a, b| a + b,
/// );
/// assert_eq!(total, 499_500);
/// ```
pub struct TeamPool {
    shared: Arc<Shared>,
    n_threads: usize,
    handles: Vec<JoinHandle<()>>,
}

impl TeamPool {
    /// A team of `n_threads` members (the caller counts as member 0, so
    /// `n_threads - 1` OS threads are spawned). `n_threads` ≥ 1.
    pub fn new(n_threads: usize) -> Self {
        assert!(n_threads >= 1, "a team needs at least one member");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                running: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let handles = (1..n_threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("team-worker-{tid}"))
                    .spawn(move || worker_loop(shared, tid))
                    .expect("failed to spawn team worker")
            })
            .collect();
        TeamPool {
            shared,
            n_threads,
            handles,
        }
    }

    /// Team size (including the calling thread).
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Run `f(tid)` on every team member (tids `0..n_threads`); member 0
    /// is the calling thread. Returns when all members finish. If any
    /// member panicked, the panic is re-raised here.
    pub fn broadcast<F: Fn(usize) + Sync>(&self, f: &F) {
        let raw = RawJob {
            data: f as *const F as *const (),
            call: trampoline::<F>,
        };
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert_eq!(st.running, 0, "overlapping broadcast rounds");
            st.job = Some(raw);
            st.epoch += 1;
            st.running = self.n_threads - 1;
            self.shared.start.notify_all();
        }
        // Leader participates as tid 0 (catching panics so workers can
        // still be drained before re-raising).
        let leader_result = std::panic::catch_unwind(AssertUnwindSafe(|| f(0)));
        {
            let mut st = self.shared.state.lock().unwrap();
            while st.running > 0 {
                st = self.shared.done.wait(st).unwrap();
            }
            st.job = None;
        }
        if let Err(payload) = leader_result {
            std::panic::resume_unwind(payload);
        }
        if self.shared.panicked.swap(false, Ordering::Relaxed) {
            panic!("a team worker panicked during broadcast");
        }
    }

    /// Work-share `range` over the team with the given schedule; `body`
    /// receives each chunk plus the executing member's id.
    pub fn parallel_for<F>(&self, range: std::ops::Range<usize>, schedule: LoopSchedule, body: F)
    where
        F: Fn(std::ops::Range<usize>, usize) + Sync,
    {
        let disp = ChunkDispenser::new(range, schedule, self.n_threads);
        self.broadcast(&|tid| {
            disp.drive(tid, |chunk| body(chunk, tid));
        });
    }

    /// Work-shared reduction: `map` folds each chunk into a partial value
    /// starting from `identity`; partials are combined (in member order,
    /// deterministically for static schedules) with `combine`.
    pub fn parallel_reduce<T, M, C>(
        &self,
        range: std::ops::Range<usize>,
        schedule: LoopSchedule,
        identity: T,
        map: M,
        combine: C,
    ) -> T
    where
        T: Clone + Send + Sync,
        M: Fn(std::ops::Range<usize>, T) -> T + Sync,
        C: Fn(T, T) -> T,
    {
        let disp = ChunkDispenser::new(range, schedule, self.n_threads);
        let partials: Vec<Mutex<T>> = (0..self.n_threads)
            .map(|_| Mutex::new(identity.clone()))
            .collect();
        self.broadcast(&|tid| {
            let mut acc = identity.clone();
            disp.drive(tid, |chunk| {
                acc = map(chunk, std::mem::replace(&mut acc, identity.clone()));
            });
            *partials[tid].lock().unwrap() = acc;
        });
        partials
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .fold(identity.clone(), combine)
    }
}

impl Drop for TeamPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, tid: usize) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    if let Some(job) = st.job {
                        last_epoch = st.epoch;
                        break job;
                    }
                }
                st = shared.start.wait(st).unwrap();
            }
        };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: the leader keeps the closure alive until `running`
            // reaches 0, which only happens after this call returns.
            unsafe { (job.call)(job.data, tid) }
        }));
        if result.is_err() {
            shared.panicked.store(true, Ordering::Relaxed);
        }
        let mut st = shared.state.lock().unwrap();
        st.running -= 1;
        if st.running == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_every_member_once() {
        let pool = TeamPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(&|tid| {
            hits[tid].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn broadcast_rounds_are_serialized() {
        let pool = TeamPool::new(3);
        let counter = AtomicUsize::new(0);
        for round in 0..50 {
            pool.broadcast(&|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), (round + 1) * 3);
        }
    }

    #[test]
    fn single_member_team() {
        let pool = TeamPool::new(1);
        let mut hit = AtomicUsize::new(0);
        pool.broadcast(&|tid| {
            assert_eq!(tid, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(*hit.get_mut(), 1);
    }

    #[test]
    fn parallel_for_writes_disjoint_output() {
        let pool = TeamPool::new(4);
        let mut out = vec![0usize; 1003];
        let cells = crate::split::SliceCells::new(&mut out);
        pool.parallel_for(
            0..1003,
            LoopSchedule::Dynamic { chunk: 17 },
            |chunk, _tid| {
                // SAFETY: dispenser chunks are disjoint.
                let part = unsafe { cells.slice_mut(chunk.clone()) };
                for (k, v) in part.iter_mut().enumerate() {
                    *v = chunk.start + k + 1;
                }
            },
        );
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn parallel_reduce_matches_sequential() {
        let pool = TeamPool::new(4);
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        for sched in [
            LoopSchedule::StaticBlocked,
            LoopSchedule::StaticChunked { chunk: 13 },
            LoopSchedule::Dynamic { chunk: 101 },
            LoopSchedule::Guided { min_chunk: 8 },
        ] {
            let total = pool.parallel_reduce(
                0..data.len(),
                sched,
                0.0f64,
                |chunk, acc| acc + data[chunk].iter().sum::<f64>(),
                |a, b| a + b,
            );
            let seq: f64 = data.iter().sum();
            assert!(
                (total - seq).abs() < 1e-9 * seq.abs().max(1.0),
                "{sched:?}: {total} vs {seq}"
            );
        }
    }

    #[test]
    fn worker_panic_propagates_to_leader() {
        let pool = TeamPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|tid| {
                if tid == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool still usable afterwards.
        let c = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(c.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn leader_panic_propagates_and_pool_survives() {
        let pool = TeamPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|tid| {
                if tid == 0 {
                    panic!("leader boom");
                }
            });
        }));
        assert!(result.is_err());
        let c = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(c.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn borrowed_state_visible_after_round() {
        // A broadcast can mutate borrowed local state through SliceCells
        // and the effects are visible after (the release/acquire pair is
        // the pool's own synchronization).
        let pool = TeamPool::new(4);
        let mut flags = vec![false; 4];
        let cells = crate::split::SliceCells::new(&mut flags);
        pool.broadcast(&|tid| {
            // SAFETY: each member writes only its own index.
            unsafe { cells.slice_mut(tid..tid + 1)[0] = true };
        });
        assert!(flags.iter().all(|&b| b));
    }
}
