//! The fourth parallelism level: `simd`.
//!
//! The offloading model's innermost level is "multiple vector lanes"
//! (paper §III-A). On the host we cannot issue GPU vector instructions,
//! but we can give kernel bodies the same *shape*: fixed-width lane
//! blocks processed together, written so the compiler's auto-vectorizer
//! reliably turns them into SIMD (no bounds checks inside the block, no
//! cross-lane dependences).
//!
//! [`simd_for_each`] and friends split a range into width-`W` blocks plus
//! a scalar tail, mirroring `#pragma omp simd simdlen(W)`.

/// The default lane width (f64 lanes of an AVX-512 register).
pub const DEFAULT_LANES: usize = 8;

/// Apply `body` to each index of `range` in width-`W` blocks: `body`
/// receives the block's base index and the lane offset. Equivalent to a
/// plain loop, but the call structure gives the auto-vectorizer a
/// constant trip count per block.
#[inline]
pub fn simd_for_each<const W: usize>(range: std::ops::Range<usize>, mut body: impl FnMut(usize)) {
    let mut i = range.start;
    while i + W <= range.end {
        for lane in 0..W {
            body(i + lane);
        }
        i += W;
    }
    for j in i..range.end {
        body(j);
    }
}

/// Element-wise `out[i] = f(a[i])` over equal-length slices, in lane
/// blocks. Panics if the lengths differ.
#[inline]
pub fn simd_map<const W: usize>(a: &[f64], out: &mut [f64], f: impl Fn(f64) -> f64) {
    assert_eq!(a.len(), out.len(), "simd_map length mismatch");
    let n = a.len();
    let blocks = n / W;
    for b in 0..blocks {
        let base = b * W;
        // Constant-width block: bounds resolved once, vectorizable.
        let (aa, oo) = (&a[base..base + W], &mut out[base..base + W]);
        for lane in 0..W {
            oo[lane] = f(aa[lane]);
        }
    }
    for i in blocks * W..n {
        out[i] = f(a[i]);
    }
}

/// Element-wise `out[i] = f(a[i], b[i])`, in lane blocks.
#[inline]
pub fn simd_zip<const W: usize>(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    f: impl Fn(f64, f64) -> f64,
) {
    assert_eq!(a.len(), b.len(), "simd_zip length mismatch");
    assert_eq!(a.len(), out.len(), "simd_zip length mismatch");
    let n = a.len();
    let blocks = n / W;
    for blk in 0..blocks {
        let base = blk * W;
        let (aa, bb, oo) = (
            &a[base..base + W],
            &b[base..base + W],
            &mut out[base..base + W],
        );
        for lane in 0..W {
            oo[lane] = f(aa[lane], bb[lane]);
        }
    }
    for i in blocks * W..n {
        out[i] = f(a[i], b[i]);
    }
}

/// Lane-blocked sum with `W` independent accumulators (the standard
/// trick that breaks the serial dependence chain so the reduction
/// vectorizes). Deterministic for a fixed `W`.
#[inline]
pub fn simd_sum<const W: usize>(a: &[f64]) -> f64 {
    let n = a.len();
    let blocks = n / W;
    let mut acc = [0.0f64; W];
    for b in 0..blocks {
        let base = b * W;
        let aa = &a[base..base + W];
        for lane in 0..W {
            acc[lane] += aa[lane];
        }
    }
    let mut tail = 0.0;
    for &v in &a[blocks * W..] {
        tail += v;
    }
    acc.iter().sum::<f64>() + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_covers_exactly_once() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let mut seen = vec![0u32; n];
            simd_for_each::<8>(0..n, |i| seen[i] += 1);
            assert!(seen.iter().all(|&c| c == 1), "n={n}: {seen:?}");
        }
        // Sub-range.
        let mut seen = [0u32; 30];
        simd_for_each::<4>(5..27, |i| seen[i] += 1);
        assert!(seen[5..27].iter().all(|&c| c == 1));
        assert!(seen[..5].iter().chain(&seen[27..]).all(|&c| c == 0));
    }

    #[test]
    fn map_matches_scalar() {
        let a: Vec<f64> = (0..103).map(|i| i as f64).collect();
        let mut out = vec![0.0; 103];
        simd_map::<8>(&a, &mut out, |x| 2.0 * x + 1.0);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 2.0 * i as f64 + 1.0);
        }
    }

    #[test]
    fn zip_matches_scalar() {
        let a: Vec<f64> = (0..77).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..77).map(|i| (i * 3) as f64).collect();
        let mut out = vec![0.0; 77];
        simd_zip::<4>(&a, &b, &mut out, |x, y| x * y);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i * 3) as f64);
        }
    }

    #[test]
    fn sum_matches_sequential_for_integers() {
        // Integer-valued f64s sum exactly in any order.
        let a: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert_eq!(simd_sum::<8>(&a), 499_500.0);
        assert_eq!(simd_sum::<4>(&a[..7]), 21.0);
        assert_eq!(simd_sum::<8>(&[]), 0.0);
    }

    #[test]
    fn sum_is_deterministic_per_width() {
        let a: Vec<f64> = (0..997).map(|i| (i as f64).sin()).collect();
        assert_eq!(simd_sum::<8>(&a), simd_sum::<8>(&a));
        // Different widths may round differently, but stay close.
        let d = (simd_sum::<8>(&a) - simd_sum::<4>(&a)).abs();
        assert!(d < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn map_length_mismatch_panics() {
        let a = vec![0.0; 4];
        let mut out = vec![0.0; 5];
        simd_map::<4>(&a, &mut out, |x| x);
    }
}
