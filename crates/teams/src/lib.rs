//! # spread-teams
//!
//! A work-sharing thread-team executor: the reproduction's stand-in for
//! the intra-device parallelism levels of the OpenMP offloading model —
//! `teams distribute` (teams) and `parallel for` (threads). The paper's
//! combined directive `target spread teams distribute parallel for`
//! lowers each per-device chunk onto this executor, so kernels *really*
//! execute in parallel on host threads while the simulator accounts
//! virtual time.
//!
//! Components:
//!
//! * [`pool`] — [`TeamPool`]: a persistent pool of worker threads with a
//!   broadcast primitive (all threads run the same closure, leader
//!   participates), in the style of an OpenMP parallel region.
//! * [`schedule`] — [`LoopSchedule`]: `static` (blocked or round-robin
//!   chunked), `dynamic`, and `guided` iteration scheduling via an atomic
//!   chunk dispenser.
//! * [`parallel_for`](pool::TeamPool::parallel_for) /
//!   [`parallel_reduce`](pool::TeamPool::parallel_reduce) — work-sharing
//!   loops and reductions over ranges.
//! * [`barrier`] — a sense-reversing spin barrier usable inside a
//!   broadcast region.
//! * [`split`] — [`SliceCells`](split::SliceCells): the unsafe-core,
//!   safe-contract primitive that lets concurrently executing chunks
//!   write disjoint parts of one slice (how kernels write their mapped
//!   output sections).
//! * [`simd`] — the innermost level ("multiple vector lanes"):
//!   lane-blocked loop helpers shaped for the auto-vectorizer,
//!   mirroring `#pragma omp simd simdlen(W)`.

#![warn(missing_docs)]

pub mod barrier;
pub mod pool;
pub mod schedule;
pub mod simd;
pub mod split;

pub use barrier::TeamBarrier;
pub use pool::TeamPool;
pub use schedule::{ChunkDispenser, LoopSchedule};
pub use simd::{simd_for_each, simd_map, simd_sum, simd_zip};
pub use split::SliceCells;
