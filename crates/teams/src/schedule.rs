//! Loop iteration scheduling, mirroring OpenMP's `schedule` clause.
//!
//! A [`ChunkDispenser`] carves a `Range<usize>` into chunks according to a
//! [`LoopSchedule`] and hands them to threads. `static` scheduling is
//! deterministic per thread id; `dynamic` and `guided` use a single atomic
//! cursor (first-come, first-served), exactly like an OpenMP runtime.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How loop iterations are divided among the threads of a team.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LoopSchedule {
    /// `schedule(static)`: one contiguous block per thread (the default
    /// OpenMP static schedule with unspecified chunk).
    #[default]
    StaticBlocked,
    /// `schedule(static, chunk)`: chunks assigned round-robin by thread id.
    StaticChunked {
        /// Chunk size in iterations (≥ 1).
        chunk: usize,
    },
    /// `schedule(dynamic, chunk)`: threads grab the next chunk on demand.
    Dynamic {
        /// Chunk size in iterations (≥ 1).
        chunk: usize,
    },
    /// `schedule(guided, min_chunk)`: exponentially shrinking chunks
    /// (remaining / nthreads), never below `min_chunk`.
    Guided {
        /// Minimum chunk size in iterations (≥ 1).
        min_chunk: usize,
    },
}

/// Thread-safe chunk dispenser for one work-shared loop instance.
pub struct ChunkDispenser {
    range: Range<usize>,
    schedule: LoopSchedule,
    n_threads: usize,
    /// Cursor for dynamic/guided (offset from range.start).
    cursor: AtomicUsize,
}

impl ChunkDispenser {
    /// Create a dispenser for `range` shared by `n_threads` threads.
    pub fn new(range: Range<usize>, schedule: LoopSchedule, n_threads: usize) -> Self {
        assert!(n_threads > 0, "a team needs at least one thread");
        match schedule {
            LoopSchedule::StaticChunked { chunk } | LoopSchedule::Dynamic { chunk } => {
                assert!(chunk > 0, "chunk size must be >= 1")
            }
            LoopSchedule::Guided { min_chunk } => {
                assert!(min_chunk > 0, "min chunk size must be >= 1")
            }
            LoopSchedule::StaticBlocked => {}
        }
        ChunkDispenser {
            range,
            schedule,
            n_threads,
            cursor: AtomicUsize::new(0),
        }
    }

    /// Total iterations.
    pub fn len(&self) -> usize {
        self.range.end.saturating_sub(self.range.start)
    }

    /// True if the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Next chunk for thread `tid`, or `None` when the thread is done.
    ///
    /// For static schedules the result depends only on `(tid, call
    /// number)`; the `cursor` is unused. For dynamic/guided the atomic
    /// cursor serializes hand-out.
    ///
    /// Static scheduling state is tracked per call via the returned
    /// iterator from [`ChunkDispenser::thread_chunks`]; `next_dynamic`
    /// is exposed for the shared-cursor schedules.
    pub fn next_dynamic(&self) -> Option<Range<usize>> {
        let n = self.len();
        match self.schedule {
            LoopSchedule::Dynamic { chunk } => {
                let off = self.cursor.fetch_add(chunk, Ordering::Relaxed);
                if off >= n {
                    return None;
                }
                let start = self.range.start + off;
                let end = (start + chunk).min(self.range.end);
                Some(start..end)
            }
            LoopSchedule::Guided { min_chunk } => loop {
                let off = self.cursor.load(Ordering::Relaxed);
                if off >= n {
                    return None;
                }
                let remaining = n - off;
                let chunk = (remaining / self.n_threads).max(min_chunk).min(remaining);
                if self
                    .cursor
                    .compare_exchange_weak(off, off + chunk, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    let start = self.range.start + off;
                    return Some(start..start + chunk);
                }
            },
            _ => panic!("next_dynamic called on a static schedule"),
        }
    }

    /// The chunks statically assigned to thread `tid`, in order.
    // A Vec<Range> is the uniform return shape for both static variants
    // (blocked = 1 chunk, chunked = many).
    #[allow(clippy::single_range_in_vec_init)]
    pub fn static_chunks(&self, tid: usize) -> Vec<Range<usize>> {
        let n = self.len();
        match self.schedule {
            LoopSchedule::StaticBlocked => {
                // Blocked: thread t gets iterations [t*n/T, (t+1)*n/T) —
                // balanced to within one iteration.
                let lo = self.range.start + tid * n / self.n_threads;
                let hi = self.range.start + (tid + 1) * n / self.n_threads;
                if hi > lo {
                    vec![lo..hi]
                } else {
                    vec![]
                }
            }
            LoopSchedule::StaticChunked { chunk } => {
                let mut out = Vec::new();
                let mut c = tid * chunk;
                while c < n {
                    let start = self.range.start + c;
                    let end = (start + chunk).min(self.range.end);
                    out.push(start..end);
                    c += self.n_threads * chunk;
                }
                out
            }
            _ => panic!("static_chunks called on a dynamic schedule"),
        }
    }

    /// Run `body` for every chunk belonging to thread `tid` (static) or
    /// grabbed by it (dynamic/guided).
    pub fn drive(&self, tid: usize, mut body: impl FnMut(Range<usize>)) {
        match self.schedule {
            LoopSchedule::StaticBlocked | LoopSchedule::StaticChunked { .. } => {
                for c in self.static_chunks(tid) {
                    body(c);
                }
            }
            LoopSchedule::Dynamic { .. } | LoopSchedule::Guided { .. } => {
                while let Some(c) = self.next_dynamic() {
                    body(c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coverage(disp: &ChunkDispenser, n_threads: usize, len: usize, base: usize) {
        let mut seen = vec![0u32; len];
        for tid in 0..n_threads {
            disp.drive(tid, |r| {
                for i in r {
                    seen[i - base] += 1;
                }
            });
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage: {seen:?}");
    }

    #[test]
    fn static_blocked_partitions() {
        let disp = ChunkDispenser::new(10..23, LoopSchedule::StaticBlocked, 4);
        coverage(&disp, 4, 13, 10);
        // Blocks are contiguous and ordered.
        let c0 = disp.static_chunks(0);
        let c3 = disp.static_chunks(3);
        assert_eq!(c0.len(), 1);
        assert_eq!(c0[0].start, 10);
        assert_eq!(c3[0].end, 23);
    }

    #[test]
    fn static_blocked_more_threads_than_iters() {
        let disp = ChunkDispenser::new(0..3, LoopSchedule::StaticBlocked, 8);
        coverage(&disp, 8, 3, 0);
        // Some threads get nothing.
        let empties = (0..8).filter(|&t| disp.static_chunks(t).is_empty()).count();
        assert_eq!(empties, 5);
    }

    #[test]
    fn static_chunked_round_robin() {
        let disp = ChunkDispenser::new(0..14, LoopSchedule::StaticChunked { chunk: 4 }, 3);
        // Mirrors the paper's §III-B.1 example (N=14, chunk 4, 3 devices):
        // chunks [0..4), [4..8), [8..12), [12..14) go to threads 0,1,2,0.
        assert_eq!(disp.static_chunks(0), vec![0..4, 12..14]);
        assert_eq!(disp.static_chunks(1), vec![4..8]);
        assert_eq!(disp.static_chunks(2), vec![8..12]);
        coverage(&disp, 3, 14, 0);
    }

    #[test]
    fn dynamic_covers_exactly_once() {
        let disp = ChunkDispenser::new(5..105, LoopSchedule::Dynamic { chunk: 7 }, 4);
        coverage(&disp, 4, 100, 5);
    }

    #[test]
    fn guided_chunks_shrink() {
        let disp = ChunkDispenser::new(0..1000, LoopSchedule::Guided { min_chunk: 4 }, 4);
        let mut sizes = Vec::new();
        while let Some(c) = disp.next_dynamic() {
            sizes.push(c.len());
        }
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        // Non-increasing (single-threaded drain) and first is remaining/T.
        assert_eq!(sizes[0], 250);
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        assert!(*sizes.last().unwrap() >= 1);
    }

    #[test]
    fn guided_respects_min_chunk() {
        let disp = ChunkDispenser::new(0..100, LoopSchedule::Guided { min_chunk: 16 }, 4);
        let mut sizes = Vec::new();
        while let Some(c) = disp.next_dynamic() {
            sizes.push(c.len());
        }
        // All but the last chunk are >= min_chunk.
        for &s in &sizes[..sizes.len() - 1] {
            assert!(s >= 16);
        }
        assert_eq!(sizes.iter().sum::<usize>(), 100);
    }

    #[test]
    fn empty_range() {
        for sched in [
            LoopSchedule::StaticBlocked,
            LoopSchedule::StaticChunked { chunk: 3 },
            LoopSchedule::Dynamic { chunk: 3 },
            LoopSchedule::Guided { min_chunk: 3 },
        ] {
            let disp = ChunkDispenser::new(7..7, sched, 4);
            assert!(disp.is_empty());
            let mut called = false;
            for tid in 0..4 {
                disp.drive(tid, |_| called = true);
            }
            assert!(!called);
        }
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_rejected() {
        ChunkDispenser::new(0..10, LoopSchedule::Dynamic { chunk: 0 }, 2);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        ChunkDispenser::new(0..10, LoopSchedule::StaticBlocked, 0);
    }
}
