//! A sense-reversing centralized barrier.
//!
//! Classic two-phase barrier from the concurrency literature (see *Rust
//! Atomics and Locks*, ch. 9 idioms): each arrival decrements a counter;
//! the last arrival resets the counter and flips the global *sense*;
//! everyone else spins (with exponential backoff into `yield_now`) on the
//! sense flip they observed on entry. Reusable across any number of
//! phases without reinitialization.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable barrier for a fixed-size team.
pub struct TeamBarrier {
    n: usize,
    remaining: AtomicUsize,
    sense: AtomicBool,
}

impl TeamBarrier {
    /// Barrier for `n` participants (n ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        TeamBarrier {
            n,
            remaining: AtomicUsize::new(n),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Block until all `n` participants have called `wait`. Returns
    /// `true` for exactly one participant per phase (the last arrival),
    /// mirroring `std::sync::Barrier`'s leader result.
    pub fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Relaxed);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arrival: reset and release the others.
            self.remaining.store(self.n, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_participant_never_blocks() {
        let b = TeamBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn phases_are_ordered() {
        // Each thread increments a phase-local counter; after the
        // barrier every thread must observe the full increment count of
        // the finished phase.
        const THREADS: usize = 8;
        const PHASES: usize = 50;
        let barrier = TeamBarrier::new(THREADS);
        let counters: Vec<AtomicUsize> = (0..PHASES).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for c in counters.iter() {
                        c.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        assert_eq!(c.load(Ordering::Relaxed), THREADS);
                        barrier.wait(); // phase separation before next increment
                    }
                });
            }
        });
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        const THREADS: usize = 6;
        const PHASES: usize = 20;
        let barrier = TeamBarrier::new(THREADS);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PHASES {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), PHASES);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        TeamBarrier::new(0);
    }
}
