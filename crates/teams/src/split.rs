//! Disjoint concurrent slice access.
//!
//! Work-shared kernels write their output arrays at iteration-owned
//! indexes: thread A writes `B[i]` for `i` in its chunks, thread B for its
//! chunks, never the same index. Rust cannot prove that statically for
//! dynamically scheduled chunks, so [`SliceCells`] provides the standard
//! unsafe-core/safe-contract primitive (the same shape as rayon's
//! internal splitters): a `Sync` view of a `&mut [T]` from which callers
//! carve *disjoint* mutable sub-slices.
//!
//! Safety is delegated to the chunk dispenser: chunks handed out by
//! [`crate::ChunkDispenser`] are disjoint by construction, so a kernel
//! that only writes inside its chunk is race-free.

use std::marker::PhantomData;

/// A shareable view over a mutable slice that permits concurrent access
/// to *disjoint* regions.
pub struct SliceCells<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: access is only through `slice_mut`/`read`, whose contracts
// require disjointness across threads; T must be Send for &mut T to move
// across threads, and the shared view itself is only handed out under
// those contracts.
unsafe impl<'a, T: Send> Sync for SliceCells<'a, T> {}
unsafe impl<'a, T: Send> Send for SliceCells<'a, T> {}

impl<'a, T> SliceCells<'a, T> {
    /// Wrap a mutable slice. The borrow is held for `'a`, so the
    /// original slice is inaccessible while views exist.
    pub fn new(slice: &'a mut [T]) -> Self {
        SliceCells {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Carve out `range` as a mutable sub-slice.
    ///
    /// # Safety
    ///
    /// No two concurrently live sub-slices (nor any concurrent
    /// [`SliceCells::read`] of an index inside `range`) may overlap.
    /// Bounds are checked; disjointness is the caller's contract.
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &'a mut [T] {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "sub-slice {range:?} out of bounds (len {})",
            self.len
        );
        // SAFETY: bounds checked above; disjointness per contract.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len()) }
    }

    /// Read element `i`.
    ///
    /// # Safety
    ///
    /// `i` must not be concurrently written through any live sub-slice.
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        // SAFETY: bounds checked; no concurrent writer per contract.
        unsafe { *self.ptr.add(i) }
    }

    /// Borrow `range` as a shared sub-slice.
    ///
    /// # Safety
    ///
    /// No element of `range` may be concurrently written through any live
    /// mutable sub-slice while the returned borrow is used.
    pub unsafe fn slice(&self, range: std::ops::Range<usize>) -> &'a [T] {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "sub-slice {range:?} out of bounds (len {})",
            self.len
        );
        // SAFETY: bounds checked above; no concurrent writers per contract.
        unsafe { std::slice::from_raw_parts(self.ptr.add(range.start), range.len()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_disjoint_writes() {
        let mut data = vec![0u64; 1000];
        let cells = SliceCells::new(&mut data);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let cells = &cells;
                s.spawn(move || {
                    // SAFETY: per-thread ranges are disjoint.
                    let part = unsafe { cells.slice_mut(t * 250..(t + 1) * 250) };
                    for (k, v) in part.iter_mut().enumerate() {
                        *v = (t * 250 + k) as u64;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn read_after_writes() {
        let mut data = vec![1.0f64; 8];
        let cells = SliceCells::new(&mut data);
        // SAFETY: single-threaded here; no aliasing.
        unsafe {
            cells.slice_mut(0..4)[2] = 7.0;
            assert_eq!(cells.read(2), 7.0);
            assert_eq!(cells.read(7), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked_slice() {
        let mut data = vec![0u8; 4];
        let cells = SliceCells::new(&mut data);
        // SAFETY: bounds check fires before any access.
        let _ = unsafe { cells.slice_mut(2..6) };
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked_read() {
        let mut data = vec![0u8; 4];
        let cells = SliceCells::new(&mut data);
        // SAFETY: bounds check fires before any access.
        let _ = unsafe { cells.read(4) };
    }

    #[test]
    fn empty_slice() {
        let mut data: Vec<u32> = vec![];
        let cells = SliceCells::new(&mut data);
        assert!(cells.is_empty());
        assert_eq!(cells.len(), 0);
        // Zero-length carve is fine.
        let s = unsafe { cells.slice_mut(0..0) };
        assert!(s.is_empty());
    }
}
