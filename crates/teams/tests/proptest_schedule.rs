//! Property tests: every schedule partitions the iteration space exactly.

use proptest::prelude::*;
use spread_teams::{ChunkDispenser, LoopSchedule, TeamPool};
use std::sync::atomic::{AtomicU32, Ordering};

fn schedules() -> impl Strategy<Value = LoopSchedule> {
    prop_oneof![
        Just(LoopSchedule::StaticBlocked),
        (1usize..32).prop_map(|chunk| LoopSchedule::StaticChunked { chunk }),
        (1usize..32).prop_map(|chunk| LoopSchedule::Dynamic { chunk }),
        (1usize..32).prop_map(|min_chunk| LoopSchedule::Guided { min_chunk }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-threaded drive of the dispenser touches every iteration
    /// exactly once, for every schedule.
    #[test]
    fn dispenser_partitions_range(
        start in 0usize..1000,
        len in 0usize..2000,
        n_threads in 1usize..9,
        sched in schedules(),
    ) {
        let disp = ChunkDispenser::new(start..start + len, sched, n_threads);
        let mut seen = vec![0u32; len];
        let mut out_of_bounds = false;
        for tid in 0..n_threads {
            disp.drive(tid, |r| {
                if r.start < start || r.end > start + len {
                    out_of_bounds = true;
                    return;
                }
                for i in r {
                    seen[i - start] += 1;
                }
            });
        }
        prop_assert!(!out_of_bounds);
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// Concurrent execution on a real pool also touches every iteration
    /// exactly once (dynamic schedules race for chunks).
    #[test]
    fn pool_parallel_for_covers_exactly_once(
        len in 0usize..3000,
        n_threads in 1usize..6,
        sched in schedules(),
    ) {
        let pool = TeamPool::new(n_threads);
        let seen: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        pool.parallel_for(0..len, sched, |chunk, _tid| {
            for i in chunk {
                seen[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    /// Reduction equals the sequential fold for every schedule.
    #[test]
    fn pool_reduce_matches_sequential(
        len in 0usize..2000,
        n_threads in 1usize..6,
        sched in schedules(),
    ) {
        let pool = TeamPool::new(n_threads);
        let total = pool.parallel_reduce(
            0..len,
            sched,
            0u64,
            |chunk, acc| acc + chunk.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        let seq: u64 = (0..len as u64).sum();
        prop_assert_eq!(total, seq);
    }
}
