//! Seeded property tests: every schedule partitions the iteration space
//! exactly (deterministic `spread_prng` loops; offline-friendly).

use spread_prng::Prng;
use spread_teams::{ChunkDispenser, LoopSchedule, TeamPool};
use std::sync::atomic::{AtomicU32, Ordering};

fn schedule(r: &mut Prng) -> LoopSchedule {
    match r.below(4) {
        0 => LoopSchedule::StaticBlocked,
        1 => LoopSchedule::StaticChunked {
            chunk: r.range(1, 32),
        },
        2 => LoopSchedule::Dynamic {
            chunk: r.range(1, 32),
        },
        _ => LoopSchedule::Guided {
            min_chunk: r.range(1, 32),
        },
    }
}

/// Single-threaded drive of the dispenser touches every iteration
/// exactly once, for every schedule.
#[test]
fn dispenser_partitions_range() {
    let mut r = Prng::new(0x7ea_0001);
    for _ in 0..64 {
        let start = r.range(0, 1000);
        let len = r.range(0, 2000);
        let n_threads = r.range(1, 9);
        let sched = schedule(&mut r);
        let ctx = format!("start={start} len={len} n_threads={n_threads} sched={sched:?}");

        let disp = ChunkDispenser::new(start..start + len, sched, n_threads);
        let mut seen = vec![0u32; len];
        let mut out_of_bounds = false;
        for tid in 0..n_threads {
            disp.drive(tid, |chunk| {
                if chunk.start < start || chunk.end > start + len {
                    out_of_bounds = true;
                    return;
                }
                for i in chunk {
                    seen[i - start] += 1;
                }
            });
        }
        assert!(!out_of_bounds, "{ctx}");
        assert!(seen.iter().all(|&c| c == 1), "{ctx}");
    }
}

/// Concurrent execution on a real pool also touches every iteration
/// exactly once (dynamic schedules race for chunks).
#[test]
fn pool_parallel_for_covers_exactly_once() {
    let mut r = Prng::new(0x7ea_0002);
    for _ in 0..32 {
        let len = r.range(0, 3000);
        let n_threads = r.range(1, 6);
        let sched = schedule(&mut r);
        let ctx = format!("len={len} n_threads={n_threads} sched={sched:?}");

        let pool = TeamPool::new(n_threads);
        let seen: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        pool.parallel_for(0..len, sched, |chunk, _tid| {
            for i in chunk {
                seen[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1), "{ctx}");
    }
}

/// Reduction equals the sequential fold for every schedule.
#[test]
fn pool_reduce_matches_sequential() {
    let mut r = Prng::new(0x7ea_0003);
    for _ in 0..32 {
        let len = r.range(0, 2000);
        let n_threads = r.range(1, 6);
        let sched = schedule(&mut r);

        let pool = TeamPool::new(n_threads);
        let total = pool.parallel_reduce(
            0..len,
            sched,
            0u64,
            |chunk, acc| acc + chunk.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        let seq: u64 = (0..len as u64).sum();
        assert_eq!(
            total, seq,
            "len={len} n_threads={n_threads} sched={sched:?}"
        );
    }
}
