//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds offline, so the micro-benchmarks cannot use
//! Criterion; this module provides the small subset the bench targets
//! need: warmup, a fixed sample count, and a median/min/max report. Run
//! with `cargo bench -p spread-bench` — each bench target is a plain
//! `fn main()` (`harness = false`).

use std::time::Instant;

/// Measure `f` (including its setup cost) `samples` times after
/// `warmup` discarded runs, and print one report line.
pub fn bench(name: &str, warmup: usize, samples: usize, mut f: impl FnMut()) {
    for _ in 0..warmup {
        f();
    }
    let mut ns: Vec<u128> = (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    ns.sort_unstable();
    let median = ns[ns.len() / 2];
    println!(
        "{name:<44} median {:>12} ns   min {:>12} ns   max {:>12} ns   ({} samples)",
        median,
        ns[0],
        ns[ns.len() - 1],
        ns.len()
    );
}

/// Prevent the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
