//! Reproduces the §VI-A claim: "internally, the kernel computations had
//! near to linear speedup when more GPUs were added to the
//! configuration. This suggests the occurrence of a communication
//! bottleneck …".
//!
//! Measures, from the trace, (a) total kernel busy time across devices
//! and (b) the kernel-phase makespan, for 1/2/4 GPUs, alongside the
//! transfer aggregate bandwidth achieved.
//!
//! Usage: `cargo run --release -p spread-bench --bin kernel_scaling [--small]`

use spread_bench::markdown_table;
use spread_somier::{run_somier, SomierConfig, SomierImpl};
use spread_trace::{SimDuration, SpanKind};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small {
        SomierConfig::test_small(48, 2).with_trace(true)
    } else {
        SomierConfig::paper().with_trace(true)
    };

    let mut rows = Vec::new();
    let mut kernel_base: Option<f64> = None;
    let mut xfer_base: Option<f64> = None;
    for gpus in [1usize, 2, 4] {
        let (report, rt) = run_somier(&cfg, SomierImpl::OneBufferSpread, gpus).expect("run");
        let tl = rt.timeline();
        // Per-device kernel busy time; the kernel "makespan" proxy is the
        // maximum over devices (they run concurrently).
        let kernel_makespan: SimDuration = tl
            .devices()
            .iter()
            .map(|&d| tl.device_kind_busy(d, |k| k == SpanKind::Kernel).total())
            .max()
            .unwrap_or(SimDuration::ZERO);
        let xfer_busy: SimDuration = tl
            .devices()
            .iter()
            .map(|&d| tl.device_kind_busy(d, SpanKind::is_transfer).total())
            .max()
            .unwrap_or(SimDuration::ZERO);
        let k = kernel_makespan.as_secs_f64();
        let x = xfer_busy.as_secs_f64();
        let k_speedup = kernel_base.get_or_insert(k).to_owned() / k;
        let x_speedup = xfer_base.get_or_insert(x).to_owned() / x;
        rows.push(vec![
            gpus.to_string(),
            report.elapsed.to_string(),
            format!("{kernel_makespan}"),
            format!("{k_speedup:.2}x"),
            format!("{xfer_busy}"),
            format!("{x_speedup:.2}x"),
        ]);
    }
    println!("\n§VI-A: kernel vs transfer scaling (One Buffer, target spread)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "GPUs",
                "Total time",
                "Kernel busy (per device)",
                "Kernel speedup",
                "Transfer busy (per device)",
                "Transfer speedup",
            ],
            &rows
        )
    );
    println!(
        "Paper: kernels scale near-linearly with devices; transfers saturate the shared bus\n\
         (expected kernel speedups ≈ 1.0 / 2.0 / 4.0; transfer speedups ≈ 1.0 / 1.17 / 1.75)"
    );
}
