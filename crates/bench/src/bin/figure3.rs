//! Reproduces **Figure 3 (a, b, c)**: a 10-second window of the
//! execution trace on 4 GPUs for each Somier implementation, showing
//! host↔device transfers (`>` / `<`) and kernels (`#`) per device engine
//! — the reproduction's `nsys` timeline.
//!
//! The paper's observation: "the execution time was mainly dominated by
//! memory transfers and not by kernel computations".
//!
//! Usage: `cargo run --release -p spread-bench --bin figure3 [--small] [--csv]`

use spread_somier::{run_somier, SomierConfig, SomierImpl};
use spread_trace::{render_chrome_trace, render_csv, render_gantt, GanttOptions, SimTime};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let csv = std::env::args().any(|a| a == "--csv");
    let chrome = std::env::args().any(|a| a == "--chrome");
    let cfg = if small {
        SomierConfig::test_small(48, 2).with_trace(true)
    } else {
        SomierConfig::paper().with_trace(true)
    };

    for (tag, which) in [
        ("(a) One Buffer", SomierImpl::OneBufferSpread),
        ("(b) Two Buffers", SomierImpl::TwoBuffers),
        ("(c) Double Buffering", SomierImpl::DoubleBuffering),
    ] {
        let (report, rt) = run_somier(&cfg, which, 4).expect("run");
        let tl = rt.timeline();
        // A 10-second window from the middle of the run (the paper shows
        // "10 seconds of NVIDIA's nsys traces").
        let mid = SimTime::from_secs_f64(tl.end().as_secs_f64() * 0.5);
        // 10 s like the paper, or 10% of the run for small configs.
        let win = (tl.end().as_secs_f64() * 0.1).min(10.0);
        let t1 = mid + spread_trace::SimDuration::from_secs_f64(win);
        println!(
            "\nFigure 3 {tag}: total {} — 10 s window at mid-run",
            report.elapsed
        );
        print!(
            "{}",
            render_gantt(&tl, &GanttOptions::window(mid, t1).with_width(100))
        );
        if csv {
            println!("{}", render_csv(&tl, Some((mid, t1))));
        }
        if chrome {
            let path = format!(
                "figure3_{}.trace.json",
                tag.trim_start_matches(['(', 'a', 'b', 'c', ')', ' '])
                    .replace(' ', "_")
            );
            std::fs::write(&path, render_chrome_trace(&tl)).expect("write trace");
            eprintln!("  chrome trace written to {path} (open in ui.perfetto.dev)");
        }
        // The paper's headline observation, quantified.
        let reports = spread_trace::analysis::overlap_report(&tl);
        for r in &reports {
            println!(
                "  GPU{}: transfer {:.0}% of active time, compute-transfer overlap {:.1}% of compute",
                r.device,
                100.0 * r.transfer_fraction(),
                100.0 * r.overlap_fraction(),
            );
        }
    }
}
