//! Export the adaptive-scheduling benchmark as machine-readable JSON.
//!
//! Runs the heterogeneous Somier experiment (one device at reduced
//! compute speed) under the static equal split and under
//! `spread_schedule(auto)`, then writes `BENCH_adaptive.json`: the
//! virtual-time comparison plus the full per-construct, per-device
//! profile record the adaptive scheduler learned from. Everything is
//! virtual time, so the file is bit-reproducible.
//!
//! Usage: `cargo run --release -p spread-bench --bin export`

use std::fmt::Write as _;
use std::fs;

use spread_core::ResiliencePolicy;
use spread_somier::one_buffer::{run_spread_auto, run_spread_resilient};
use spread_somier::SomierConfig;
use spread_trace::ConstructProfile;

const N_GPUS: usize = 2;
const SLOW_DEVICE: usize = 0;
const SLOW_FACTOR: f64 = 3.0;
const TIMESTEPS: usize = 10;

/// The compute-bound heterogeneous calibration from
/// `crates/somier/tests/adaptive.rs`: kernel costs ×150 over the
/// transfer-dominated default, device 0 at 1/3 compute speed.
fn config() -> SomierConfig {
    let mut cfg = SomierConfig::test_small(20, TIMESTEPS);
    cfg.costs.forces *= 150.0;
    cfg.costs.accel *= 150.0;
    cfg.costs.velocity *= 150.0;
    cfg.costs.position *= 150.0;
    cfg.costs.centers *= 150.0;
    cfg.with_slow_device(SLOW_DEVICE, SLOW_FACTOR)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn profile_json(p: &ConstructProfile, indent: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{indent}{{");
    let _ = writeln!(s, "{indent}  \"key\": \"{}\",", p.key);
    let _ = writeln!(s, "{indent}  \"launch\": {},", p.launch);
    let _ = writeln!(
        s,
        "{indent}  \"elapsed_s\": {},",
        json_f64(p.elapsed().as_secs_f64())
    );
    let _ = writeln!(s, "{indent}  \"round\": {},", p.round);
    let weights: Vec<String> = p.weights.iter().map(|w| json_f64(*w)).collect();
    let _ = writeln!(s, "{indent}  \"weights\": [{}],", weights.join(", "));
    let _ = writeln!(s, "{indent}  \"devices\": [");
    for (i, d) in p.devices.iter().enumerate() {
        let comma = if i + 1 < p.devices.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "{indent}    {{\"device\": {}, \"copy_in_s\": {}, \"copy_out_s\": {}, \
             \"kernel_s\": {}, \"overlap_s\": {}, \"finish_s\": {}, \"idle_tail_s\": {}}}{comma}",
            d.device,
            json_f64(d.copy_in.as_secs_f64()),
            json_f64(d.copy_out.as_secs_f64()),
            json_f64(d.kernel.as_secs_f64()),
            json_f64(d.overlap.as_secs_f64()),
            json_f64(d.finish.as_secs_f64()),
            json_f64(d.idle_tail.as_secs_f64()),
        );
    }
    let _ = writeln!(s, "{indent}  ]");
    let _ = write!(s, "{indent}}}");
    s
}

fn main() {
    let cfg = config();

    let mut static_rt = cfg.runtime(N_GPUS);
    let static_report =
        run_spread_resilient(&mut static_rt, &cfg, N_GPUS, ResiliencePolicy::FailStop)
            .expect("static run");

    let mut auto_rt = cfg.runtime(N_GPUS);
    let auto_report = run_spread_auto(&mut auto_rt, &cfg, N_GPUS).expect("auto run");
    assert_eq!(
        auto_report.centers, static_report.centers,
        "adapted splits must not change the physics"
    );

    let static_s = static_report.elapsed.as_secs_f64();
    let auto_s = auto_report.elapsed.as_secs_f64();
    let profiles = auto_rt.profiles();

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"benchmark\": \"somier-heterogeneous-adaptive\",\n  \
         \"description\": \"Somier One Buffer on {N_GPUS} GPUs with device {SLOW_DEVICE} at \
         1/{SLOW_FACTOR} compute speed: static equal split vs spread_schedule(auto)\",\n  \
         \"n\": {},\n  \"timesteps\": {TIMESTEPS},\n  \"n_gpus\": {N_GPUS},\n  \
         \"slow_device\": {SLOW_DEVICE},\n  \"slow_factor\": {SLOW_FACTOR},",
        cfg.n
    );
    let _ = writeln!(out, "  \"static_elapsed_s\": {},", json_f64(static_s));
    let _ = writeln!(out, "  \"auto_elapsed_s\": {},", json_f64(auto_s));
    let _ = writeln!(out, "  \"speedup\": {},", json_f64(static_s / auto_s));
    let _ = writeln!(out, "  \"bit_identical_to_static\": true,");
    let _ = writeln!(out, "  \"profiles\": [");
    for (i, p) in profiles.iter().enumerate() {
        let comma = if i + 1 < profiles.len() { "," } else { "" };
        let _ = writeln!(out, "{}{comma}", profile_json(p, "    "));
    }
    out.push_str("  ]\n}\n");

    fs::write("BENCH_adaptive.json", &out).expect("write BENCH_adaptive.json");
    println!(
        "BENCH_adaptive.json: static {static_s:.4}s, auto {auto_s:.4}s, speedup {:.2}x, \
         {} profiles",
        static_s / auto_s,
        profiles.len()
    );
}
