//! Export the adaptive-scheduling benchmark as machine-readable JSON.
//!
//! Runs the heterogeneous Somier experiment (one device at reduced
//! compute speed) under the static equal split and under
//! `spread_schedule(auto)`, then writes `BENCH_adaptive.json` in the
//! shared [`spread_bench::report`] schema: the virtual-time comparison
//! plus the full per-construct, per-device profile record the adaptive
//! scheduler learned from (one `cells[]` entry per profile). Everything
//! is virtual time, so the file is bit-reproducible.
//!
//! Usage: `cargo run --release -p spread-bench --bin export`

use spread_bench::report::{centers_checksum, profile_obj, Report};
use spread_core::ResiliencePolicy;
use spread_somier::one_buffer::{run_spread_auto, run_spread_resilient};
use spread_somier::SomierConfig;

const N_GPUS: usize = 2;
const SLOW_DEVICE: usize = 0;
const SLOW_FACTOR: f64 = 3.0;
const TIMESTEPS: usize = 10;

/// The compute-bound heterogeneous calibration from
/// `crates/somier/tests/adaptive.rs`: kernel costs ×150 over the
/// transfer-dominated default, device 0 at 1/3 compute speed.
fn config() -> SomierConfig {
    let mut cfg = SomierConfig::test_small(20, TIMESTEPS);
    cfg.costs.forces *= 150.0;
    cfg.costs.accel *= 150.0;
    cfg.costs.velocity *= 150.0;
    cfg.costs.position *= 150.0;
    cfg.costs.centers *= 150.0;
    cfg.with_slow_device(SLOW_DEVICE, SLOW_FACTOR)
}

fn main() {
    let cfg = config();

    let mut static_rt = cfg.runtime(N_GPUS);
    let static_report =
        run_spread_resilient(&mut static_rt, &cfg, N_GPUS, ResiliencePolicy::FailStop)
            .expect("static run");

    let mut auto_rt = cfg.runtime(N_GPUS);
    let auto_report = run_spread_auto(&mut auto_rt, &cfg, N_GPUS).expect("auto run");
    assert_eq!(
        auto_report.centers, static_report.centers,
        "adapted splits must not change the physics"
    );

    let static_s = static_report.elapsed.as_secs_f64();
    let auto_s = auto_report.elapsed.as_secs_f64();
    let profiles = auto_rt.profiles();

    let mut report = Report::new(
        "somier-heterogeneous-adaptive",
        &format!(
            "Somier One Buffer on {N_GPUS} GPUs with device {SLOW_DEVICE} at \
             1/{SLOW_FACTOR} compute speed: static equal split vs spread_schedule(auto)"
        ),
    )
    .topology("machine", "ctepower")
    .topology("n_gpus", N_GPUS)
    .topology("n", cfg.n)
    .topology("timesteps", TIMESTEPS)
    .topology("slow_device", SLOW_DEVICE)
    .topology("slow_factor", SLOW_FACTOR)
    .field("static_elapsed_s", static_s)
    .field("auto_elapsed_s", auto_s)
    .field("speedup", static_s / auto_s)
    .field("bit_identical_to_static", true);
    for p in &profiles {
        report = report.cell(profile_obj(p));
    }
    report
        .checksum(centers_checksum(&auto_report.centers))
        .write("BENCH_adaptive.json");
    println!(
        "BENCH_adaptive.json: static {static_s:.4}s, auto {auto_s:.4}s, speedup {:.2}x, \
         {} profiles",
        static_s / auto_s,
        profiles.len()
    );
}
