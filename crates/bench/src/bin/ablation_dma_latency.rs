//! Ablation: the per-`cudaMemcpy` launch latency — §VI-B blames "12
//! sequential calls to the underlying CUDA memory copy API per mapped
//! chunk" for the buffered versions' losses. Sweeping the modeled DMA
//! launch latency shows how much of the Two Buffers penalty it explains.
//!
//! Usage: `cargo run --release -p spread-bench --bin ablation_dma_latency [--small]`

use spread_bench::markdown_table;
use spread_somier::{run_somier, SomierConfig, SomierImpl};
use spread_trace::SimDuration;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let base = if small {
        SomierConfig::test_small(100, 2)
    } else {
        SomierConfig::paper().with_timesteps(8) // 31 steps × 4 configs is slow
    };
    let mut rows = Vec::new();
    for lat_us in [0u64, 5, 10, 40] {
        let mut cfg = base.clone();
        cfg.dma_latency_us = lat_us;
        let (one, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, 2).expect("one");
        let (two, _) = run_somier(&cfg, SomierImpl::TwoBuffers, 2).expect("two");
        rows.push(vec![
            format!("{lat_us} µs"),
            one.elapsed.to_string(),
            two.elapsed.to_string(),
            format!(
                "{:+.1}%",
                100.0 * (two.elapsed.as_secs_f64() / one.elapsed.as_secs_f64() - 1.0)
            ),
        ]);
    }
    let _ = SimDuration::ZERO;
    println!("\nAblation: DMA launch latency sweep (2 GPUs, One Buffer vs Two Buffers)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "cudaMemcpy latency",
                "One Buffer",
                "Two Buffers",
                "Two-Buffers penalty"
            ],
            &rows
        )
    );
    println!("Expected: the Two Buffers penalty grows with per-operation latency (§VI-B).");
}
