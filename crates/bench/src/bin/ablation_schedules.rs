//! Ablation (§IX future work): spread schedules under load imbalance.
//!
//! The paper: "Dynamic scheduling is also an important issue that must
//! be addressed in order to mitigate the slowdown cause by load
//! imbalance" and "there is room for developing more static scheduling
//! strategies, for example, one that allows irregular chunk sizes."
//!
//! We run a skewed workload (one device is 4× slower — a throttled
//! sibling) under the paper's static round-robin, the weighted-static
//! extension, and the dynamic extension.
//!
//! Usage: `cargo run --release -p spread-bench --bin ablation_schedules`

use spread_bench::markdown_table;
use spread_core::prelude::*;
use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;

fn runtime_with_slow_device() -> Runtime {
    // Device 1 is 4× slower (time_scale 4).
    let mut fast = DeviceSpec::v100().with_mem_bytes(1 << 26);
    fast.compute.max_parallelism = 1;
    let mut slow = fast.clone();
    slow.compute.time_scale = 4.0;
    let mut topo = Topology::uniform(2, fast, 1e9, 1.6e9);
    topo.devices[1] = slow;
    Runtime::new(
        RuntimeConfig::new(topo)
            .with_team_threads(2)
            .with_trace(false),
    )
}

fn run_schedule(label: &str, schedule: SpreadSchedule) -> Vec<String> {
    let n = 1 << 20;
    let mut rt = runtime_with_slow_device();
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        TargetSpread::devices([0, 1])
            .with_schedule(schedule.clone())
            .map(spread_tofrom(a, |c| c.range()))
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("scale", 12.0, |chunk, v| {
                    for i in chunk {
                        let x = v.get(0, i);
                        v.set(0, i, 2.0 * x);
                    }
                })
                .arg(KernelArg::read_write(a, |r| r)),
            )?;
        Ok(())
    })
    .expect("run");
    // Verify correctness on every schedule.
    let out = rt.snapshot_host(a);
    assert!(out.iter().enumerate().all(|(i, &v)| v == 2.0 * i as f64));
    vec![label.to_string(), rt.elapsed().to_string()]
}

fn main() {
    let n = 1 << 20;
    let rows = vec![
        run_schedule(
            "static round-robin (paper)",
            SpreadSchedule::static_chunk(n / 16),
        ),
        run_schedule(
            "static weighted 4:1 (extension)",
            SpreadSchedule::StaticWeighted {
                round: n,
                weights: vec![4.0, 1.0],
            },
        ),
        run_schedule("dynamic (extension)", SpreadSchedule::dynamic(n / 16)),
    ];
    println!("\nAblation: spread schedules with a 4x-slower device 1\n");
    println!("{}", markdown_table(&["schedule", "time"], &rows));
    println!(
        "Expected: static round-robin is bound by the slow device; weighted and dynamic \
         rebalance (§IX)."
    );
}
