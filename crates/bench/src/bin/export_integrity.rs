//! Export the end-to-end integrity benchmark as machine-readable JSON.
//!
//! Runs the Somier `spread_integrity(…)` variant on the 4-device
//! CTE-POWER machine across a sweep of problem sizes, three ways per
//! cell: `off` (the unchecked baseline), `verify` on a clean machine
//! (pure digest overhead — source CRC32C per staged D2H payload plus
//! the boundary re-digest), and `heal` with three silent bit-flip
//! tokens armed (detection plus construct re-execution from the host
//! image), then writes `BENCH_integrity.json` in the shared
//! [`spread_bench::report`] schema: end-to-end virtual times, the
//! verify tax relative to `off`, heal accounting, and the bit-identity
//! witness, one `cells[]` entry per problem size. The headline number
//! is the verify overhead — the price of trusting every byte a device
//! commits — which must stay under 10% across the sweep. Everything is
//! virtual time, so the file is bit-reproducible.
//!
//! Usage: `cargo run --release -p spread-bench --bin export_integrity`

use spread_bench::report::{centers_checksum, Obj, Report};
use spread_core::IntegrityMode;
use spread_rt::IntegrityAction;
use spread_sim::FaultPlan;
use spread_somier::one_buffer::run_spread_integrity;
use spread_somier::reference::run_reference;
use spread_somier::SomierConfig;
use spread_trace::SimTime;

const N_GPUS: usize = 4;
const TIMESTEPS: usize = 6;
const SIZES: [usize; 4] = [20, 32, 40, 56];

/// One single-token burst on each of three devices, armed from t=0.
fn flip_plan() -> FaultPlan {
    FaultPlan::new(11)
        .silent_flips(0, SimTime::ZERO, 1)
        .silent_flips(1, SimTime::ZERO, 1)
        .silent_flips(3, SimTime::ZERO, 1)
}

fn main() {
    let mut report = Report::new(
        "somier-integrity",
        &format!(
            "Somier One Buffer on {N_GPUS}-device CTE-POWER across problem \
             sizes: spread_integrity(off) vs verify (CRC32C source digest + commit-boundary \
             re-digest, clean machine; digests are computed inline at DMA line rate, so the \
             tax is commit-path serialization only) vs heal (3 silent bit-flips injected, \
             detect + re-execute from the host image), healing keeping every cell \
             bit-identical"
        ),
    )
    .topology("machine", "ctepower")
    .topology("n_gpus", N_GPUS)
    .topology("timesteps", TIMESTEPS)
    .field("flips_injected_under_heal", 3usize)
    .field("bit_identical_all_cells", true);
    let mut worst_verify_overhead = 0.0f64;
    let mut worst_n = SIZES[0];
    let mut witness = [0.0f64; 3];
    for &n in SIZES.iter() {
        let cfg = SomierConfig::test_small(n, TIMESTEPS);
        let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
        witness = reference.centers;
        let run = |mode: IntegrityMode, plan: Option<FaultPlan>| {
            let mut rt = match plan {
                Some(p) => cfg.runtime_with_faults(N_GPUS, p),
                None => cfg.runtime(N_GPUS),
            };
            let report = run_spread_integrity(&mut rt, &cfg, N_GPUS, mode).expect("integrity run");
            assert_eq!(
                report.centers, reference.centers,
                "integrity must not change the physics ({mode:?} @ n={n})"
            );
            let healed = rt
                .integrity_events()
                .iter()
                .filter(|e| e.action == IntegrityAction::Healed)
                .count();
            (rt.elapsed().as_secs_f64(), healed)
        };
        let (off_s, _) = run(IntegrityMode::Off, None);
        let (verify_s, _) = run(IntegrityMode::Verify, None);
        let (heal_s, heals) = run(IntegrityMode::Heal, Some(flip_plan()));
        assert_eq!(heals, 3, "one healed commit per armed token (n={n})");
        let verify_overhead = verify_s / off_s - 1.0;
        let heal_overhead = heal_s / off_s - 1.0;
        if verify_overhead > worst_verify_overhead {
            worst_verify_overhead = verify_overhead;
            worst_n = n;
        }
        report = report.cell(
            Obj::new()
                .field("n", n)
                .field("grid_bytes", cfg.total_bytes())
                .field("off_s", off_s)
                .field("verify_s", verify_s)
                .field("heal_s", heal_s)
                .field("verify_overhead", verify_overhead)
                .field("heal_overhead", heal_overhead)
                .field("heals", heals),
        );
    }
    assert!(
        worst_verify_overhead <= 0.10,
        "verify must cost at most 10% end-to-end everywhere in the sweep \
         (worst {:.1}% at n={worst_n})",
        worst_verify_overhead * 100.0
    );
    report
        .field("worst_verify_overhead", worst_verify_overhead)
        .field("worst_verify_overhead_at_n", worst_n)
        .checksum(centers_checksum(&witness))
        .write("BENCH_integrity.json");
    println!(
        "BENCH_integrity.json: worst verify overhead {:.2}% at n={worst_n} \
         ({} sizes swept, 3 flips healed per heal cell)",
        worst_verify_overhead * 100.0,
        SIZES.len()
    );
}
