//! Reproduces **Table I**: execution times for the One Buffer
//! implementation — `target` baseline (1 GPU) vs `target spread` on
//! 1 / 2 / 4 GPUs.
//!
//! Paper values: 17m40.231s (B) | 17m38.932s | 13m15.486s | 8m22.019s.
//!
//! Usage: `cargo run --release -p spread-bench --bin table1 [--small]`

use spread_bench::{markdown_table, speedup};
use spread_somier::{run_somier, SomierConfig, SomierImpl};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small {
        SomierConfig::test_small(48, 4)
    } else {
        SomierConfig::paper()
    };
    eprintln!(
        "somier: n={} steps={} buffer(1 GPU)={} planes, device mem {:.1} MB, problem {:.1} MB",
        cfg.n,
        cfg.timesteps,
        cfg.buffer_planes(1),
        cfg.device_mem_bytes() as f64 / 1e6,
        cfg.total_bytes() as f64 / 1e6,
    );

    let (base, _) = run_somier(&cfg, SomierImpl::OneBufferTarget, 1).expect("baseline run");
    eprintln!("  target (B), 1 GPU done: {}", base.elapsed);
    let mut rows = vec![vec![
        "target (B)".to_string(),
        "1".to_string(),
        base.elapsed.to_string(),
        "1.00x".to_string(),
        format!("{:?}", [base.centers[0]]),
    ]];
    for gpus in [1usize, 2, 4] {
        let (r, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, gpus).expect("spread run");
        eprintln!("  target spread, {gpus} GPU(s) done: {}", r.elapsed);
        rows.push(vec![
            "target spread".to_string(),
            gpus.to_string(),
            r.elapsed.to_string(),
            speedup(base.elapsed, r.elapsed),
            format!("{:?}", [r.centers[0]]),
        ]);
    }
    println!("\nTable I: Execution times for the One Buffer implementation ((B) = baseline)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "Directive",
                "GPUs",
                "Time",
                "Speedup",
                "centers[0] (correctness witness)"
            ],
            &rows
        )
    );
    println!("Paper: 17m40.231s (B) | 17m38.932s | 13m15.486s | 8m22.019s  (1.00x / 1.00x / 1.33x / 2.11x)");
}
