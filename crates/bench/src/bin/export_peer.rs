//! Export the peer halo-exchange benchmark as machine-readable JSON.
//!
//! Runs the Somier `exchange(…)` variant on the 4-device CTE-POWER
//! machine twice — halos forced through the host (`exchange(host)`,
//! the paper's round-trip) and routed by the planner
//! (`exchange(auto)`, device-to-device where a sibling holds the
//! bytes) — then writes `BENCH_peer.json`: the halo-phase and
//! end-to-end virtual times, the peer-copy accounting, and the
//! bit-identity witness. Everything is virtual time, so the file is
//! bit-reproducible.
//!
//! Usage: `cargo run --release -p spread-bench --bin export_peer`

use std::fmt::Write as _;
use std::fs;

use spread_core::{ExchangeMode, ResiliencePolicy};
use spread_somier::one_buffer::run_spread_peer;
use spread_somier::SomierConfig;

const N_GPUS: usize = 4;
const N: usize = 40;
const TIMESTEPS: usize = 6;

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn main() {
    let cfg = SomierConfig::test_small(N, TIMESTEPS);

    let mut host_rt = cfg.runtime(N_GPUS);
    let (host_report, host_halo) = run_spread_peer(
        &mut host_rt,
        &cfg,
        N_GPUS,
        ExchangeMode::Host,
        ResiliencePolicy::FailStop,
    )
    .expect("host-routed run");

    let mut auto_rt = cfg.runtime(N_GPUS);
    let (auto_report, auto_halo) = run_spread_peer(
        &mut auto_rt,
        &cfg,
        N_GPUS,
        ExchangeMode::Auto,
        ResiliencePolicy::FailStop,
    )
    .expect("auto run");
    assert_eq!(
        auto_report.centers, host_report.centers,
        "the peer route must not change the physics"
    );

    let records = auto_rt.peer_copies();
    assert!(!records.is_empty(), "auto must route halos D2D");
    assert!(records.iter().all(|r| !r.diverted));
    let peer_bytes: u64 = records.iter().map(|r| r.bytes).sum();

    let host_halo_s = host_halo.as_secs_f64();
    let auto_halo_s = auto_halo.as_secs_f64();
    let host_s = host_report.elapsed.as_secs_f64();
    let auto_s = auto_report.elapsed.as_secs_f64();

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"benchmark\": \"somier-peer-halo-exchange\",\n  \
         \"description\": \"Somier One Buffer on {N_GPUS}-device CTE-POWER: per-timestep halo \
         refresh via the host round-trip (exchange(host)) vs device-to-device \
         (exchange(auto))\",\n  \
         \"n\": {N},\n  \"timesteps\": {TIMESTEPS},\n  \"n_gpus\": {N_GPUS},"
    );
    let _ = writeln!(out, "  \"host_halo_s\": {},", json_f64(host_halo_s));
    let _ = writeln!(out, "  \"auto_halo_s\": {},", json_f64(auto_halo_s));
    let _ = writeln!(
        out,
        "  \"halo_speedup\": {},",
        json_f64(host_halo_s / auto_halo_s)
    );
    let _ = writeln!(out, "  \"host_elapsed_s\": {},", json_f64(host_s));
    let _ = writeln!(out, "  \"auto_elapsed_s\": {},", json_f64(auto_s));
    let _ = writeln!(out, "  \"elapsed_speedup\": {},", json_f64(host_s / auto_s));
    let _ = writeln!(out, "  \"peer_copies\": {},", records.len());
    let _ = writeln!(out, "  \"peer_bytes\": {peer_bytes},");
    let _ = writeln!(out, "  \"diverted\": 0,");
    let _ = writeln!(out, "  \"bit_identical_to_host_route\": true,");
    let _ = writeln!(out, "  \"per_device\": [");
    for d in 0..N_GPUS as u32 {
        let out_bytes: u64 = records.iter().filter(|r| r.src == d).map(|r| r.bytes).sum();
        let in_bytes: u64 = records.iter().filter(|r| r.dst == d).map(|r| r.bytes).sum();
        let comma = if d + 1 < N_GPUS as u32 { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"device\": {d}, \"peer_out_bytes\": {out_bytes}, \
             \"peer_in_bytes\": {in_bytes}}}{comma}"
        );
    }
    out.push_str("  ]\n}\n");

    fs::write("BENCH_peer.json", &out).expect("write BENCH_peer.json");
    println!(
        "BENCH_peer.json: halo host {host_halo_s:.6}s vs auto {auto_halo_s:.6}s \
         (speedup {:.2}x), end-to-end {:.2}x, {} peer copies / {peer_bytes} bytes",
        host_halo_s / auto_halo_s,
        host_s / auto_s,
        records.len()
    );
}
