//! Export the peer halo-exchange benchmark as machine-readable JSON.
//!
//! Runs the Somier `exchange(…)` variant on the 4-device CTE-POWER
//! machine twice — halos forced through the host (`exchange(host)`,
//! the paper's round-trip) and routed by the planner
//! (`exchange(auto)`, device-to-device where a sibling holds the
//! bytes) — then writes `BENCH_peer.json` in the shared
//! [`spread_bench::report`] schema: the halo-phase and end-to-end
//! virtual times, the peer-copy accounting (one `cells[]` entry per
//! device), and the bit-identity witness. Everything is virtual time,
//! so the file is bit-reproducible.
//!
//! Usage: `cargo run --release -p spread-bench --bin export_peer`

use spread_bench::report::{centers_checksum, Obj, Report};
use spread_core::{ExchangeMode, ResiliencePolicy};
use spread_somier::one_buffer::run_spread_peer;
use spread_somier::SomierConfig;

const N_GPUS: usize = 4;
const N: usize = 40;
const TIMESTEPS: usize = 6;

fn main() {
    let cfg = SomierConfig::test_small(N, TIMESTEPS);

    let mut host_rt = cfg.runtime(N_GPUS);
    let (host_report, host_halo) = run_spread_peer(
        &mut host_rt,
        &cfg,
        N_GPUS,
        ExchangeMode::Host,
        ResiliencePolicy::FailStop,
    )
    .expect("host-routed run");

    let mut auto_rt = cfg.runtime(N_GPUS);
    let (auto_report, auto_halo) = run_spread_peer(
        &mut auto_rt,
        &cfg,
        N_GPUS,
        ExchangeMode::Auto,
        ResiliencePolicy::FailStop,
    )
    .expect("auto run");
    assert_eq!(
        auto_report.centers, host_report.centers,
        "the peer route must not change the physics"
    );

    let records = auto_rt.peer_copies();
    assert!(!records.is_empty(), "auto must route halos D2D");
    assert!(records.iter().all(|r| !r.diverted));
    let peer_bytes: u64 = records.iter().map(|r| r.bytes).sum();

    let host_halo_s = host_halo.as_secs_f64();
    let auto_halo_s = auto_halo.as_secs_f64();
    let host_s = host_report.elapsed.as_secs_f64();
    let auto_s = auto_report.elapsed.as_secs_f64();

    let mut report = Report::new(
        "somier-peer-halo-exchange",
        &format!(
            "Somier One Buffer on {N_GPUS}-device CTE-POWER: per-timestep halo \
             refresh via the host round-trip (exchange(host)) vs device-to-device \
             (exchange(auto))"
        ),
    )
    .topology("machine", "ctepower")
    .topology("n_gpus", N_GPUS)
    .topology("n", N)
    .topology("timesteps", TIMESTEPS)
    .field("host_halo_s", host_halo_s)
    .field("auto_halo_s", auto_halo_s)
    .field("halo_speedup", host_halo_s / auto_halo_s)
    .field("host_elapsed_s", host_s)
    .field("auto_elapsed_s", auto_s)
    .field("elapsed_speedup", host_s / auto_s)
    .field("peer_copies", records.len())
    .field("peer_bytes", peer_bytes)
    .field("diverted", 0usize)
    .field("bit_identical_to_host_route", true);
    for d in 0..N_GPUS as u32 {
        let out_bytes: u64 = records.iter().filter(|r| r.src == d).map(|r| r.bytes).sum();
        let in_bytes: u64 = records.iter().filter(|r| r.dst == d).map(|r| r.bytes).sum();
        report = report.cell(
            Obj::new()
                .field("device", d)
                .field("peer_out_bytes", out_bytes)
                .field("peer_in_bytes", in_bytes),
        );
    }
    report
        .checksum(centers_checksum(&auto_report.centers))
        .write("BENCH_peer.json");
    println!(
        "BENCH_peer.json: halo host {host_halo_s:.6}s vs auto {auto_halo_s:.6}s \
         (speedup {:.2}x), end-to-end {:.2}x, {} peer copies / {peer_bytes} bytes",
        host_halo_s / auto_halo_s,
        host_s / auto_s,
        records.len()
    );
}
