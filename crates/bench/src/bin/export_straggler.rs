//! Export the straggler-rescue benchmark as machine-readable JSON.
//!
//! Runs the Somier `spread_straggler(…)` variant on the 4-device
//! CTE-POWER machine with device 1 slowed by a sweep of compute
//! factors, once per policy — `wait` (monitor only), `steal` (cancel
//! the straggler and re-execute on the least-loaded sibling), and
//! `replicate` (race both copies) — then writes `BENCH_straggler.json`
//! in the shared [`spread_bench::report`] schema: end-to-end virtual
//! times, rescue accounting, and the bit-identity witness, one
//! `cells[]` entry per slowdown factor. The interesting shape is the
//! crossover: the rescue path pays its own enter + H2D on the sibling,
//! so `steal` loses slightly at mild slowdowns and wins decisively at
//! heavy ones. Everything is virtual time, so the file is
//! bit-reproducible.
//!
//! Usage: `cargo run --release -p spread-bench --bin export_straggler`

use spread_bench::report::{centers_checksum, Obj, Report};
use spread_core::StragglerPolicy;
use spread_sim::FaultPlan;
use spread_somier::one_buffer::run_spread_straggler;
use spread_somier::reference::run_reference;
use spread_somier::SomierConfig;
use spread_trace::SimTime;

const N_GPUS: usize = 4;
const N: usize = 40;
const TIMESTEPS: usize = 6;
const SLOW_DEVICE: u32 = 1;
const FACTORS: [f64; 4] = [4.0, 8.0, 16.0, 32.0];

fn main() {
    let cfg = SomierConfig::test_small(N, TIMESTEPS);
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));

    let run = |factor: f64, policy: StragglerPolicy| {
        let plan = FaultPlan::new(7).slow_compute(SLOW_DEVICE, SimTime::ZERO, SimTime::MAX, factor);
        let mut rt = cfg.runtime_with_faults(N_GPUS, plan);
        let report = run_spread_straggler(&mut rt, &cfg, N_GPUS, policy).expect("straggler run");
        assert_eq!(
            report.centers, reference.centers,
            "rescue must not change the physics ({policy:?} @ {factor}x)"
        );
        let rescues = rt.rescues();
        assert!(
            rescues.iter().all(|r| r.commits == 1),
            "first-commit-wins: exactly one commit per rescued piece"
        );
        (rt.elapsed().as_secs_f64(), rescues.len())
    };

    let mut report = Report::new(
        "somier-straggler-rescue",
        &format!(
            "Somier One Buffer on {N_GPUS}-device CTE-POWER with device \
             {SLOW_DEVICE} compute-slowed by a sweep of factors: spread_straggler(wait) vs \
             steal (cancel + re-execute on a sibling) vs replicate (race both copies), \
             first-commit-wins keeping every cell bit-identical"
        ),
    )
    .topology("machine", "ctepower")
    .topology("n_gpus", N_GPUS)
    .topology("n", N)
    .topology("timesteps", TIMESTEPS)
    .topology("slow_device", SLOW_DEVICE)
    .field("bit_identical_all_cells", true);
    let mut best_speedup = 0.0f64;
    let mut best_factor = FACTORS[0];
    for &factor in FACTORS.iter() {
        let (wait_s, _) = run(factor, StragglerPolicy::Wait);
        let (steal_s, steal_rescues) = run(factor, StragglerPolicy::Steal);
        let (replicate_s, replicate_rescues) = run(factor, StragglerPolicy::Replicate);
        let speedup = wait_s / steal_s;
        if speedup > best_speedup {
            best_speedup = speedup;
            best_factor = factor;
        }
        report = report.cell(
            Obj::new()
                .field("slowdown", factor)
                .field("wait_s", wait_s)
                .field("steal_s", steal_s)
                .field("replicate_s", replicate_s)
                .field("steal_speedup_vs_wait", speedup)
                .field("steal_rescues", steal_rescues)
                .field("replicate_rescues", replicate_rescues),
        );
    }
    assert!(
        best_speedup > 1.0,
        "steal must show an end-to-end improvement over wait somewhere in the sweep \
         (best {best_speedup:.3}x at {best_factor}x)"
    );
    report
        .field("best_steal_speedup_vs_wait", best_speedup)
        .field("best_steal_speedup_at_slowdown", best_factor)
        .checksum(centers_checksum(&reference.centers))
        .write("BENCH_straggler.json");
    println!(
        "BENCH_straggler.json: best steal speedup vs wait {best_speedup:.2}x at {best_factor}x \
         slowdown of device {SLOW_DEVICE} ({} factors swept)",
        FACTORS.len()
    );
}
