//! Reproduces **Figure 4**: the single-GPU zoom of the Two Buffers /
//! Double Buffering traces, quantifying the paper's three observations:
//!
//! 1. "The five kernel computations were not executed subsequently, but
//!    interleaved with data transfers from a different buffer" — the
//!    longest back-to-back kernel run is < 5 and the kind-alternation
//!    count is high.
//! 2. "Overlap of computation and transfers from different buffers
//!    happened in very rare occasions" — compute∩transfer time is a tiny
//!    fraction of compute time.
//! 3. "Transfers from different buffers did not overlap" — the
//!    per-device transfer concurrency profile has (almost) no mass at
//!    level ≥ 2.
//!
//! Usage: `cargo run --release -p spread-bench --bin figure4 [--small]`

use spread_somier::{run_somier, SomierConfig, SomierImpl};
use spread_trace::analysis::{concurrency_profile, interleave_stats, overlap_report};
use spread_trace::{render_gantt, GanttOptions, SimTime};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small {
        SomierConfig::test_small(48, 2).with_trace(true)
    } else {
        SomierConfig::paper().with_trace(true)
    };

    for (tag, which) in [
        ("Two Buffers", SomierImpl::TwoBuffers),
        ("Double Buffering", SomierImpl::DoubleBuffering),
    ] {
        let (_report, rt) = run_somier(&cfg, which, 4).expect("run");
        let tl = rt.timeline();
        println!("\nFigure 4 — {tag}, zoom on GPU0:");
        // Short window so single operations are visible.
        let mid = SimTime::from_secs_f64(tl.end().as_secs_f64() * 0.5);
        // 3 s like the paper's zoom, or 5% of the run for small configs.
        let win = (tl.end().as_secs_f64() * 0.05).min(3.0);
        let t1 = mid + spread_trace::SimDuration::from_secs_f64(win);
        let window = spread_trace::Timeline::from_spans(
            tl.window(mid, t1)
                .into_iter()
                .filter(|s| s.lane.device() == Some(0))
                .cloned()
                .collect(),
        );
        print!(
            "{}",
            render_gantt(&window, &GanttOptions::window(mid, t1).with_width(100))
        );

        let inter = interleave_stats(&tl);
        let over = overlap_report(&tl);
        for (i, o) in inter.iter().zip(&over) {
            println!(
                "  GPU{}: kernels={} transfers={} alternations={} longest-kernel-run={} \
                 | overlap {:.2}% of compute",
                i.device,
                i.kernels,
                i.transfers,
                i.alternations,
                i.longest_kernel_run,
                100.0 * o.overlap_fraction(),
            );
        }
        // Transfer concurrency per device (observation 3).
        for dev in tl.devices() {
            let prof = concurrency_profile(&tl, |s| {
                s.kind.is_transfer() && s.lane.device() == Some(dev)
            });
            let total = prof.time_at_least(1).as_secs_f64();
            let multi = prof.time_at_least(2).as_secs_f64();
            println!(
                "  GPU{dev}: transfers active {total:.1}s, ≥2 concurrent {multi:.3}s \
                 ({:.2}% — 'transfers from different buffers did not overlap')",
                if total > 0.0 {
                    100.0 * multi / total
                } else {
                    0.0
                }
            );
        }
    }
}
