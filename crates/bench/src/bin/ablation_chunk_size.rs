//! Ablation: the `spread_schedule(static, chunk)` chunk-size sweep.
//!
//! The paper's One Buffer implementation uses `chunk = buffer /
//! num_devices` (one chunk per device per buffer). Smaller chunks keep
//! round-robin balance but multiply DMA operations (12 copies per
//! mapped chunk, §VI-B), so total time grows as chunks shrink — the
//! quantitative version of the paper's granularity discussion.
//!
//! Usage: `cargo run --release -p spread-bench --bin ablation_chunk_size [--small]`

use spread_bench::markdown_table;
use spread_core::prelude::*;
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;
use spread_somier::SomierConfig;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small {
        SomierConfig::test_small(48, 2)
    } else {
        SomierConfig::paper()
    };
    // A single-array stencil pass over the whole grid, spread over 4
    // devices with varying chunk sizes (all data fits: one shot, no
    // buffering, to isolate the chunking effect).
    let n = cfg.n * cfg.plane_elems(); // elements
    let mut rows = Vec::new();
    let full_chunk = n.div_ceil(4);
    for chunk in [full_chunk, full_chunk / 2, full_chunk / 4, full_chunk / 16] {
        let mut topo = cfg.topology(4);
        for d in &mut topo.devices {
            d.mem_bytes = (n as u64 * 8) * 2; // no memory pressure here
        }
        let mut rt = Runtime::new(
            RuntimeConfig::new(topo)
                .with_team_threads(cfg.team_threads)
                .with_trace(false),
        );
        let a = rt.host_array("A", n + 2);
        rt.fill_host(a, |i| i as f64);
        rt.run(|s| {
            TargetSpread::devices([0, 1, 2, 3])
                .with_schedule(SpreadSchedule::static_chunk(chunk))
                .map(spread_to(a, |c| c.halo(1, 1)))
                .map(spread_from(a, |c| c.range()))
                .parallel_for(
                    s,
                    1..n + 1,
                    KernelSpec::new("stencil", 0.7, |chunk, v| {
                        for i in chunk {
                            let x = v.get(0, i - 1) + v.get(0, i + 1);
                            v.set(1, i, x * 0.5);
                        }
                    })
                    .arg(KernelArg::read(a, |r| r.start - 1..r.end + 1))
                    .arg(KernelArg::write(a, |r| r)),
                )?;
            Ok(())
        })
        .expect("run");
        rows.push(vec![
            chunk.to_string(),
            n.div_ceil(chunk).to_string(),
            format!("{:.6}s", rt.elapsed().as_secs_f64()),
        ]);
    }
    println!("\nAblation: chunk-size sweep (4 GPUs, one stencil pass)\n");
    println!(
        "{}",
        markdown_table(&["chunk (elems)", "chunks", "time"], &rows)
    );
    println!("Expected: time grows as chunks shrink (per-chunk DMA launch latency, §VI-B).");
}
