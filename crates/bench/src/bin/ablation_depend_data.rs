//! Ablation (§IX, Listing 13): `depend` on the data-spread directives vs
//! the `taskgroup` barrier.
//!
//! The paper: implementing `depend` on `target enter/exit data spread`
//! "will effectively eliminate the gaps in time where some of the
//! devices remain idle while waiting for the full transfer to finish."
//! We measure a transfer→kernel→transfer pipeline both ways and report
//! total time and per-device idle time.
//!
//! Usage: `cargo run --release -p spread-bench --bin ablation_depend_data`

use spread_bench::markdown_table;
use spread_core::prelude::*;
use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;
use spread_trace::analysis::device_idle;

const N: usize = 1 << 20;
// Five chunks over four devices: round-robin gives device 0 a second
// chunk, so the taskgroup barrier makes devices 1-3 idle while waiting
// for it — the idle gap Listing 13 eliminates.
const CHUNK: usize = N / 5;

fn runtime() -> Runtime {
    let mut spec = DeviceSpec::v100().with_mem_bytes(1 << 26);
    spec.compute.max_parallelism = 1;
    let topo = Topology::uniform(4, spec, 1e9, 2.2e9);
    Runtime::new(RuntimeConfig::new(topo).with_team_threads(2))
}

fn kernel(a: HostArray) -> KernelSpec {
    KernelSpec::new("triple", 6.0, |chunk, v| {
        for i in chunk {
            let x = v.get(0, i);
            v.set(0, i, 3.0 * x);
        }
    })
    .arg(KernelArg::read_write(a, |r| r))
}

/// The paper's only option today: taskgroup barriers between phases.
fn with_taskgroups() -> (Runtime, f64) {
    let mut rt = runtime();
    let a = rt.host_array("A", N);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        s.taskgroup(|s| {
            TargetEnterDataSpread::devices([0, 1, 2, 3])
                .range(0, N)
                .chunk_size(CHUNK)
                .nowait()
                .map(spread_to(a, |c| c.range()))
                .launch(s)
                .unwrap();
        })?;
        s.taskgroup(|s| {
            TargetSpread::devices([0, 1, 2, 3])
                .with_schedule(SpreadSchedule::static_chunk(CHUNK))
                .nowait()
                .map(spread_to(a, |c| c.range()))
                .parallel_for(s, 0..N, kernel(a))
                .unwrap();
        })?;
        s.taskgroup(|s| {
            TargetExitDataSpread::devices([0, 1, 2, 3])
                .range(0, N)
                .chunk_size(CHUNK)
                .nowait()
                .map(spread_from(a, |c| c.range()))
                .launch(s)
                .unwrap();
        })?;
        Ok(())
    })
    .expect("run");
    let idle = total_idle(&rt);
    (rt, idle)
}

/// Listing 13: chunk-level depends; no barriers at all.
fn with_depends() -> (Runtime, f64) {
    let mut rt = runtime();
    let a = rt.host_array("A", N);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        TargetEnterDataSpread::devices([0, 1, 2, 3])
            .range(0, N)
            .chunk_size(CHUNK)
            .nowait()
            .map(spread_to(a, |c| c.range()))
            .depend_out(a, |c| c.range())
            .launch(s)?;
        TargetSpread::devices([0, 1, 2, 3])
            .with_schedule(SpreadSchedule::static_chunk(CHUNK))
            .nowait()
            .map(spread_to(a, |c| c.range()))
            .depend_in(a, |c| c.range())
            .depend_out(a, |c| c.range())
            .parallel_for(s, 0..N, kernel(a))?;
        TargetExitDataSpread::devices([0, 1, 2, 3])
            .range(0, N)
            .chunk_size(CHUNK)
            .nowait()
            .map(spread_from(a, |c| c.range()))
            .depend_in(a, |c| c.range())
            .launch(s)?;
        Ok(())
    })
    .expect("run");
    let idle = total_idle(&rt);
    (rt, idle)
}

fn total_idle(rt: &Runtime) -> f64 {
    let tl = rt.timeline();
    tl.devices()
        .iter()
        .map(|&d| device_idle(&tl, d).total().as_secs_f64())
        .sum()
}

fn main() {
    let (rt_tg, idle_tg) = with_taskgroups();
    let (rt_dep, idle_dep) = with_depends();
    // Both must compute the same thing.
    println!("\nAblation (Listing 13): taskgroup barriers vs depend on data-spread directives\n");
    let rows = vec![
        vec![
            "taskgroup barriers (paper)".to_string(),
            rt_tg.elapsed().to_string(),
            format!("{idle_tg:.4} s"),
        ],
        vec![
            "chunk-level depend (Listing 13)".to_string(),
            rt_dep.elapsed().to_string(),
            format!("{idle_dep:.4} s"),
        ],
    ];
    println!(
        "{}",
        markdown_table(&["synchronization", "time", "device idle (summed)"], &rows)
    );
    println!(
        "Expected: depend removes the inter-phase barrier, so each chunk's kernel starts as \
         soon as its own transfer lands — less idle, shorter makespan (§IX)."
    );
}
