//! One-shot reproduction driver: runs every table/figure/ablation
//! binary at paper scale and writes the outputs under `results/`.
//!
//! Usage: `cargo run --release -p spread-bench --bin repro [--small]`
//! (expect ~15–30 minutes at paper scale; `--small` finishes in seconds).

use std::fs;
use std::path::PathBuf;
use std::process::Command;

const TARGETS: &[(&str, &[&str])] = &[
    ("table1", &[]),
    ("table2", &["--figure"]),
    ("figure3", &[]),
    ("figure4", &[]),
    ("kernel_scaling", &[]),
    ("ablation_chunk_size", &[]),
    ("ablation_dma_latency", &[]),
    ("ablation_schedules", &[]),
    ("ablation_depend_data", &[]),
    ("ablation_compute_bound", &[]),
];

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let bin_dir: PathBuf = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    fs::create_dir_all("results").expect("mkdir results");
    let mut failures = 0;
    for (name, extra) in TARGETS {
        let mut cmd = Command::new(bin_dir.join(name));
        if small {
            cmd.arg("--small");
        }
        cmd.args(*extra);
        eprintln!("==> {name} {}", if small { "(--small)" } else { "" });
        match cmd.output() {
            Ok(out) => {
                let path = format!("results/{name}.txt");
                let mut content = out.stdout;
                if !out.status.success() {
                    failures += 1;
                    content.extend_from_slice(b"\n--- STDERR ---\n");
                    content.extend_from_slice(&out.stderr);
                    eprintln!("    FAILED ({})", out.status);
                }
                fs::write(&path, content).expect("write result");
                eprintln!("    -> {path}");
            }
            Err(e) => {
                failures += 1;
                eprintln!(
                    "    could not launch {name}: {e} \
                     (build all binaries first: cargo build --release -p spread-bench)"
                );
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} target(s) failed");
        std::process::exit(1);
    }
    eprintln!("all reproduction targets written to results/");
}
