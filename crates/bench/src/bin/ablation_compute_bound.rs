//! Ablation (§IX): "research has to be done on problems where the
//! computation dominates the execution time over the data transfers, in
//! order to see if a double buffering implementation performs better."
//!
//! We run that experiment: Somier with the kernel cost constants scaled
//! up (compute-bound) and, orthogonally, with default-stream vs
//! separate-streams device semantics, on 2 GPUs.
//!
//! | regime | expected |
//! |---|---|
//! | transfer-bound + default stream (the paper's machine) | One Buffer wins |
//! | compute-bound + default stream | pipelining still can't overlap — near tie |
//! | compute-bound + separate streams | Double Buffering hides transfers behind kernels and wins |
//!
//! Usage: `cargo run --release -p spread-bench --bin ablation_compute_bound [--small]`

use spread_bench::markdown_table;
use spread_somier::{run_somier, SomierConfig, SomierImpl};

fn scaled(cfg: &SomierConfig, kernel_scale: f64, single_queue: bool) -> SomierConfig {
    let mut c = cfg.clone().with_single_queue(single_queue);
    c.costs.forces *= kernel_scale;
    c.costs.accel *= kernel_scale;
    c.costs.velocity *= kernel_scale;
    c.costs.position *= kernel_scale;
    c.costs.centers *= kernel_scale;
    c
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let base = if small {
        SomierConfig::test_small(100, 2)
    } else {
        SomierConfig::paper().with_timesteps(8)
    };
    let mut rows = Vec::new();
    for (regime, kernel_scale, single_queue) in [
        ("transfer-bound, default stream (paper)", 1.0, true),
        ("compute-bound (20x), default stream", 20.0, true),
        ("compute-bound (20x), separate streams", 20.0, false),
    ] {
        let cfg = scaled(&base, kernel_scale, single_queue);
        let (one, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, 2).expect("one");
        let (db, _) = run_somier(&cfg, SomierImpl::DoubleBuffering, 2).expect("db");
        rows.push(vec![
            regime.to_string(),
            one.elapsed.to_string(),
            db.elapsed.to_string(),
            format!(
                "{:+.1}%",
                100.0 * (db.elapsed.as_secs_f64() / one.elapsed.as_secs_f64() - 1.0)
            ),
        ]);
    }
    println!("\nAblation: when does Double Buffering pay off? (2 GPUs)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "regime",
                "One Buffer",
                "Double Buffering",
                "DB vs One Buffer"
            ],
            &rows
        )
    );
    println!(
        "Expected: DB loses on the paper's machine, and only wins when kernels dominate AND \
         the runtime can overlap streams — the §IX hypothesis, quantified."
    );
}
