//! Export the pipelined transfer/compute overlap benchmark as
//! machine-readable JSON.
//!
//! Runs the Somier One Buffer program on the 4-device CTE-POWER machine
//! twice over: the construct-scoped baseline (blocking per-construct
//! maps, the path every robustness variant shares) and the
//! `spread_overlap(depth)` variant across a sweep of pipeline depths —
//! same machine, same split, same physics; the only difference is that
//! each per-device piece is cut into `depth` sub-slices whose copy-in,
//! kernel, and staged copy-out overlap on the device's separate DMA and
//! compute queues. Writes `BENCH_overlap.json` in the shared
//! [`spread_bench::report`] schema: one `cells[]` entry per depth with
//! end-to-end virtual time, the pipeline ledger (sub-copies, staged ==
//! committed), and the per-device engine profile showing `overlap_s`
//! going from 0 (the serialized baseline) to dominant. Everything is
//! virtual time, so the file is bit-reproducible.
//!
//! Usage: `cargo run --release -p spread-bench --bin export_overlap`

use spread_bench::report::{centers_checksum, Obj, Report, Value};
use spread_core::ResiliencePolicy;
use spread_somier::one_buffer::{run_spread_overlap, run_spread_resilient};
use spread_somier::reference::run_reference;
use spread_somier::SomierConfig;
use spread_trace::{profile_window, SimTime};

const N_GPUS: usize = 4;
const N: usize = 144;
const TIMESTEPS: usize = 3;
const DEPTHS: [u32; 3] = [2, 4, 6];

/// The overlap machine: CTE-POWER with the V100's DMA and compute
/// queues modeled separately (`single_queue = false`) instead of the
/// paper's default-stream serialization. Both the baseline and the
/// pipelined runs use it, so the comparison isolates the directive,
/// not the device model: the baseline *could* overlap on this machine
/// and still doesn't, because its blocking whole-piece constructs
/// never have a copy and a kernel in flight at once.
fn config() -> SomierConfig {
    // Kernel costs ×6 over the transfer-dominated default put compute
    // and H2D streaming in the same ballpark (the balanced calibration,
    // like `export`'s compute-bound ×150): with one side negligible the
    // pipeline can only hide the small side, and no machine shows more
    // overlap than its slower engine has work.
    let mut cfg = SomierConfig::test_small(N, TIMESTEPS).with_single_queue(false);
    cfg.costs.forces *= 6.0;
    cfg.costs.accel *= 6.0;
    cfg.costs.velocity *= 6.0;
    cfg.costs.position *= 6.0;
    cfg.costs.centers *= 6.0;
    cfg
}

fn main() {
    let cfg = config();
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));
    let devices: Vec<u32> = (0..N_GPUS as u32).collect();

    let mut base_rt = cfg.runtime(N_GPUS);
    let base = run_spread_resilient(&mut base_rt, &cfg, N_GPUS, ResiliencePolicy::FailStop)
        .expect("baseline run");
    assert_eq!(
        base.centers, reference.centers,
        "the One-Buffer baseline must match the CPU reference"
    );
    assert!(
        base_rt.overlap_records().is_empty(),
        "the baseline must not engage the pipeline"
    );
    let base_s = base.elapsed.as_secs_f64();

    let mut report = Report::new(
        "somier-overlap",
        &format!(
            "Somier One Buffer on {N_GPUS}-device CTE-POWER with the V100 DMA/compute \
             queues modeled separately: blocking whole-piece constructs vs \
             spread_overlap(depth) pipelining each per-device piece as depth sub-slices \
             (copy-in ahead of compute ahead of staged copy-out), commits still \
             whole-piece and every cell bit-identical to the CPU reference"
        ),
    )
    .topology("machine", "ctepower")
    .topology("n_gpus", N_GPUS)
    .topology("n", N)
    .topology("timesteps", TIMESTEPS)
    .topology("single_queue", false)
    .field("one_buffer_elapsed_s", base_s)
    .field("bit_identical_all_cells", true);

    let mut best_speedup = 0.0f64;
    let mut best_depth = DEPTHS[0];
    let mut best_min_overlap_s = 0.0f64;
    for &depth in DEPTHS.iter() {
        let mut rt = cfg.runtime(N_GPUS);
        let rep = run_spread_overlap(&mut rt, &cfg, N_GPUS, depth).expect("pipelined run");
        assert_eq!(
            rep.centers, reference.centers,
            "pipelining must not change the physics (depth {depth})"
        );
        let recs = rt.overlap_records();
        assert!(!recs.is_empty(), "depth {depth} must engage the pipeline");
        assert!(
            recs.iter()
                .all(|r| !r.leaked && (r.bypassed || r.staged == r.committed)),
            "every staged sub-slice must commit exactly at the whole-piece boundary"
        );
        let elapsed = rep.elapsed.as_secs_f64();
        let speedup = base_s / elapsed;
        let h2d_ops: u32 = recs.iter().map(|r| r.h2d_ops).sum();
        let d2h_ops: u32 = recs.iter().map(|r| r.d2h_ops).sum();

        let tl = rt.timeline();
        let profs = profile_window(tl.spans(), &devices, SimTime::ZERO, rt.now());
        let min_overlap_s = profs
            .iter()
            .map(|d| d.overlap.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        if speedup > best_speedup {
            best_speedup = speedup;
            best_depth = depth;
            best_min_overlap_s = min_overlap_s;
        }
        let device_cells: Vec<Value> = profs
            .iter()
            .map(|d| {
                Value::from(
                    Obj::new()
                        .field("device", d.device)
                        .field("copy_in_s", d.copy_in.as_secs_f64())
                        .field("copy_out_s", d.copy_out.as_secs_f64())
                        .field("kernel_s", d.kernel.as_secs_f64())
                        .field("overlap_s", d.overlap.as_secs_f64())
                        .field("idle_tail_s", d.idle_tail.as_secs_f64()),
                )
            })
            .collect();
        report = report.cell(
            Obj::new()
                .field("depth", depth)
                .field("elapsed_s", elapsed)
                .field("speedup_vs_one_buffer", speedup)
                .field("pieces_pipelined", recs.len())
                .field("h2d_sub_copies", h2d_ops)
                .field("d2h_sub_copies", d2h_ops)
                .field("min_device_overlap_s", min_overlap_s)
                .field("devices", Value::Arr(device_cells)),
        );
    }
    report
        .field("best_speedup", best_speedup)
        .field("best_depth", best_depth)
        .checksum(centers_checksum(&reference.centers))
        .write("BENCH_overlap.json");
    assert!(
        best_speedup >= 1.15,
        "the pipeline must beat the One-Buffer path by at least 1.15x \
         (best {best_speedup:.3}x at depth {best_depth})"
    );
    assert!(
        best_min_overlap_s > 0.0,
        "every device must show nonzero transfer/compute overlap at the best depth"
    );
    println!(
        "BENCH_overlap.json: one-buffer {base_s:.4}s, best depth {best_depth} \
         ({best_speedup:.2}x, min per-device overlap {best_min_overlap_s:.4}s, \
         {} depths swept)",
        DEPTHS.len()
    );
}
