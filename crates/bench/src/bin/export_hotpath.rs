//! Export the hot-path (launch-plan cache) benchmark as
//! machine-readable JSON.
//!
//! Replays the Somier One Buffer spread program on the 4-device
//! CTE-POWER machine twice — once with the launch-plan cache disabled
//! (every construct pays cold admission planning, chunking and section
//! evaluation) and once enabled (every timestep after the first replays
//! cached plans) — and measures the *host-side* planning cost per
//! construct in both regimes from the runtime's own
//! [`spread_rt::PlanCacheStats`] accounting. The physics must be
//! bit-identical across both legs and the CPU reference; the warm
//! per-plan cost must undercut the cold cost by at least 5x. A tight
//! constructs/sec microbenchmark (one tiny keyed construct relaunched
//! thousands of times) guards the end-to-end launch overhead with a
//! floor assertion. Writes `BENCH_hotpath.json` in the shared
//! [`spread_bench::report`] schema.
//!
//! The planning-cost ratio is only asserted in release builds: under
//! `debug_assertions` every cache hit deliberately re-runs the full
//! cold planner and asserts byte-equality of the replayed plan, so the
//! warm path is intentionally as slow as the cold one there.
//!
//! Usage: `cargo run --release -p spread-bench --bin export_hotpath`

use std::time::Instant;

use spread_bench::report::{centers_checksum, Obj, Report};
use spread_core::prelude::*;
use spread_rt::kernel::{KernelArg, KernelSpec};
use spread_rt::{PlanCacheStats, Runtime, RuntimeConfig};
use spread_somier::one_buffer::run_spread;
use spread_somier::reference::run_reference;
use spread_somier::SomierConfig;

const N_GPUS: usize = 4;
const N: usize = 96;
const TIMESTEPS: usize = 8;
/// Chunk granularity in planes: 16 chunks per construct (4 per device)
/// rather than the degenerate one-chunk-per-device split — the
/// granularity the pipelined implementations run at, and the regime
/// where per-construct planning cost (chunking + per-chunk map/dep
/// section evaluation) is representative rather than minimal.
const CHUNK_PLANES: usize = 6;
/// Problem bytes / device memory. Roomier than the paper's 9.66 so the
/// per-chunk halo overhead of the finer granularity fits comfortably.
const MEM_RATIO: f64 = 2.0;
/// Required cold-vs-warm per-plan cost ratio (release builds).
const MIN_PLANNING_REDUCTION: f64 = 5.0;
/// Keyed launches in the constructs/sec microbenchmark.
const MICRO_LAUNCHES: usize = 2_000;
/// Floor for the microbenchmark's end-to-end launch rate (release
/// builds; deliberately conservative for slow CI machines).
const MIN_CONSTRUCTS_PER_SEC: f64 = 1_000.0;

fn runtime(cfg: &SomierConfig, plan_cache: bool) -> Runtime {
    Runtime::new(
        RuntimeConfig::new(cfg.topology(N_GPUS))
            .with_team_threads(cfg.team_threads)
            .with_trace(cfg.trace)
            .with_alloc_backpressure(true)
            .with_plan_cache(plan_cache),
    )
}

fn leg_cell(label: &str, elapsed_s: f64, wall_s: f64, stats: &PlanCacheStats) -> Obj {
    Obj::new()
        .field("leg", label)
        .field("elapsed_s", elapsed_s)
        .field("host_wall_s", wall_s)
        .field("cache_hits", stats.hits)
        .field("cache_misses", stats.misses)
        .field("cache_invalidations", stats.invalidations)
        .field("cold_plans", stats.cold_plans)
        .field("warm_plans", stats.warm_plans)
        .field("cold_ns_per_plan", stats.cold_ns_per_plan())
        .field("warm_ns_per_plan", stats.warm_ns_per_plan())
}

/// The microbenchmark: one keyed 2-device construct relaunched
/// `MICRO_LAUNCHES` times inside a single runtime, returning
/// (constructs/sec of host wall time, the run's cache stats).
fn micro_constructs_per_sec() -> (f64, PlanCacheStats) {
    let n = 256;
    let topo = spread_devices::Topology::uniform(
        2,
        spread_devices::DeviceSpec::v100().with_mem_bytes(1 << 22),
        1e9,
        1.5e9,
    );
    let mut rt = Runtime::new(RuntimeConfig::new(topo).with_team_threads(2));
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    let wall = Instant::now();
    rt.run(|s| {
        for _ in 0..MICRO_LAUNCHES {
            TargetSpread::devices([0, 1])
                .with_schedule(SpreadSchedule::static_chunk(64))
                .with_plan_cache("micro")
                .map(spread_tofrom(a, |c| c.range()))
                .parallel_for(
                    s,
                    0..n,
                    KernelSpec::new("bump", 1.0, |chunk, v| {
                        for i in chunk {
                            v.set(0, i, v.get(0, i) + 1.0);
                        }
                    })
                    .arg(KernelArg::read_write(a, |r| r)),
                )?;
        }
        Ok(())
    })
    .expect("micro run");
    let secs = wall.elapsed().as_secs_f64();
    let out = rt.snapshot_host(a);
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i as f64 + MICRO_LAUNCHES as f64, "micro physics");
    }
    (MICRO_LAUNCHES as f64 / secs, rt.plan_stats())
}

fn main() {
    let mut cfg = SomierConfig::test_small(N, TIMESTEPS).with_chunk_planes(CHUNK_PLANES);
    cfg.mem_ratio = MEM_RATIO;
    let reference = run_reference(&cfg, cfg.buffer_planes(N_GPUS));

    // Cold leg: the pre-cache planner on every construct.
    let mut cold_rt = runtime(&cfg, false);
    let cold_wall = Instant::now();
    let cold = run_spread(&mut cold_rt, &cfg, N_GPUS).expect("cold run");
    let cold_wall_s = cold_wall.elapsed().as_secs_f64();
    let cold_stats = cold_rt.plan_stats();
    assert_eq!(
        cold.centers, reference.centers,
        "the cold leg must match the CPU reference"
    );
    assert_eq!(
        (cold_stats.hits, cold_stats.misses),
        (0, 0),
        "a disabled cache must not count anything: {cold_stats:?}"
    );

    // Warm leg: identical program, cache on.
    let mut warm_rt = runtime(&cfg, true);
    let warm_wall = Instant::now();
    let warm = run_spread(&mut warm_rt, &cfg, N_GPUS).expect("warm run");
    let warm_wall_s = warm_wall.elapsed().as_secs_f64();
    let warm_stats = warm_rt.plan_stats();
    assert_eq!(
        warm.centers, reference.centers,
        "the warm leg must replay bit-identical physics"
    );
    assert!(
        warm_stats.hits > 0,
        "the Somier replay must serve cache hits: {warm_stats:?}"
    );
    assert_eq!(
        warm_stats.invalidations, 0,
        "nothing invalidates on a healthy machine: {warm_stats:?}"
    );
    let reduction = warm_stats.cold_ns_per_plan() / warm_stats.warm_ns_per_plan();

    let (constructs_per_sec, micro_stats) = micro_constructs_per_sec();
    assert!(
        micro_stats.hits as usize == MICRO_LAUNCHES - 1,
        "every relaunch after the first must hit: {micro_stats:?}"
    );

    let release = !cfg!(debug_assertions);
    Report::new(
        "somier-hotpath",
        &format!(
            "Somier One Buffer spread replay on {N_GPUS}-device CTE-POWER at pipelined \
             chunk granularity ({CHUNK_PLANES}-plane chunks, 4 per device), launch-plan \
             cache off vs on: per-construct planning cost (admission, chunking, section \
             evaluation) measured host-side by the runtime's plan-cache accounting, \
             physics bit-identical across both legs and the CPU reference, plus a \
             constructs/sec microbenchmark of one keyed construct relaunched \
             {MICRO_LAUNCHES} times"
        ),
    )
    .topology("machine", "ctepower")
    .topology("n_gpus", N_GPUS)
    .topology("n", N)
    .topology("timesteps", TIMESTEPS)
    .topology("chunk_planes", CHUNK_PLANES)
    .field("cold_ns_per_plan", warm_stats.cold_ns_per_plan())
    .field("warm_ns_per_plan", warm_stats.warm_ns_per_plan())
    .field("planning_overhead_reduction", reduction)
    .field("cache_hits", warm_stats.hits)
    .field("cache_misses", warm_stats.misses)
    .field("micro_constructs_per_sec", constructs_per_sec)
    .field("release_build", release)
    .field("bit_identical_all_cells", true)
    .cell(leg_cell(
        "cold",
        cold.elapsed.as_secs_f64(),
        cold_wall_s,
        &cold_stats,
    ))
    .cell(leg_cell(
        "warm",
        warm.elapsed.as_secs_f64(),
        warm_wall_s,
        &warm_stats,
    ))
    .checksum(centers_checksum(&reference.centers))
    .write("BENCH_hotpath.json");

    if release {
        assert!(
            reduction >= MIN_PLANNING_REDUCTION,
            "the warm path must cut per-construct planning cost by at least \
             {MIN_PLANNING_REDUCTION}x (got {reduction:.2}x: cold {:.0}ns, warm {:.0}ns)",
            warm_stats.cold_ns_per_plan(),
            warm_stats.warm_ns_per_plan()
        );
        assert!(
            constructs_per_sec >= MIN_CONSTRUCTS_PER_SEC,
            "keyed relaunches must sustain at least {MIN_CONSTRUCTS_PER_SEC} \
             constructs/sec (got {constructs_per_sec:.0})"
        );
    }
    println!(
        "BENCH_hotpath.json: planning {:.0}ns -> {:.0}ns per construct \
         ({reduction:.1}x reduction), {} hits / {} misses on the Somier replay, \
         micro {constructs_per_sec:.0} constructs/sec",
        warm_stats.cold_ns_per_plan(),
        warm_stats.warm_ns_per_plan(),
        warm_stats.hits,
        warm_stats.misses,
    );
}
