//! Reproduces **Table II** (and the data series of **Figure 2**):
//! execution times for One Buffer vs Two Buffers vs Double Buffering
//! with `target spread` on 2 and 4 GPUs.
//!
//! Paper values:
//! ```text
//!                      2 GPUs       4 GPUs
//! One Buffer (B)       13m15.486s   8m22.019s
//! Two Buffers          14m29.599s   8m26.674s
//! Double Buffering     14m4.230s    8m51.176s
//! ```
//!
//! Usage: `cargo run --release -p spread-bench --bin table2 [--small] [--figure]`

use spread_bench::{markdown_table, speedup};
use spread_somier::{run_somier, SomierConfig, SomierImpl};
use spread_trace::SimDuration;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let figure = std::env::args().any(|a| a == "--figure");
    let cfg = if small {
        // n >= 100 so the half-buffer chunks stay >= 2 planes (the §V-B
        // gap rule) on the 2-GPU column.
        SomierConfig::test_small(100, 2)
    } else {
        SomierConfig::paper()
    };

    let impls = [
        SomierImpl::OneBufferSpread,
        SomierImpl::TwoBuffers,
        SomierImpl::DoubleBuffering,
    ];
    let gpus = [2usize, 4];
    let mut times: Vec<Vec<SimDuration>> = Vec::new();
    for which in impls {
        let mut row = Vec::new();
        for &g in &gpus {
            let (r, _) = run_somier(&cfg, which, g).expect("run");
            eprintln!(
                "  {} on {g} GPUs: {} ({} races)",
                which.label(),
                r.elapsed,
                r.races
            );
            row.push(r.elapsed);
        }
        times.push(row);
    }

    println!(
        "\nTable II: Execution times for the different Somier implementations ((B) = baseline)\n"
    );
    let rows: Vec<Vec<String>> = impls
        .iter()
        .zip(&times)
        .map(|(which, row)| {
            let mut cells = vec![format!(
                "{}{}",
                which.label(),
                if *which == SomierImpl::OneBufferSpread {
                    " (B)"
                } else {
                    ""
                }
            )];
            for (i, t) in row.iter().enumerate() {
                cells.push(format!("{t} ({})", speedup(times[0][i], *t)));
            }
            cells
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["Implementation", "2 GPUs", "4 GPUs"], &rows)
    );
    println!(
        "Paper: One Buffer 13m15.486s | 8m22.019s; Two Buffers 14m29.599s | 8m26.674s; \
         Double Buffering 14m4.230s | 8m51.176s"
    );

    if figure {
        println!("\nFigure 2 series (seconds, for the bar chart):");
        println!("impl,gpus,seconds");
        for (which, row) in impls.iter().zip(&times) {
            for (g, t) in gpus.iter().zip(row) {
                println!("{},{},{:.3}", which.label(), g, t.as_secs_f64());
            }
        }
        // ASCII rendition of the paper's bar chart.
        println!("\nFigure 2: Time comparison of the Somier implementations\n");
        let max = times
            .iter()
            .flatten()
            .map(|t| t.as_secs_f64())
            .fold(0.0f64, f64::max);
        for (gi, g) in gpus.iter().enumerate() {
            println!("{g} GPUs:");
            for (which, row) in impls.iter().zip(&times) {
                let secs = row[gi].as_secs_f64();
                let bar = "#".repeat(((secs / max) * 50.0).round() as usize);
                println!("  {:<18} |{:<50}| {}", which.label(), bar, row[gi]);
            }
        }
    }
}
