//! # spread-bench
//!
//! The benchmark harness: one binary per table/figure of the paper's
//! evaluation (see `DESIGN.md` §5 and `EXPERIMENTS.md` for the measured
//! results), plus wall-clock micro-benchmarks of the library itself
//! (`cargo bench -p spread-bench`).
//!
//! | Target | Reproduces |
//! |---|---|
//! | `cargo run --release -p spread-bench --bin table1` | Table I |
//! | `cargo run --release -p spread-bench --bin table2` | Table II + Figure 2 |
//! | `cargo run --release -p spread-bench --bin figure3` | Figure 3 (a–c) |
//! | `cargo run --release -p spread-bench --bin figure4` | Figure 4 |
//! | `cargo run --release -p spread-bench --bin kernel_scaling` | §VI-A kernel-scaling claim |
//! | `cargo run --release -p spread-bench --bin ablation_chunk_size` | chunk-size sweep |
//! | `cargo run --release -p spread-bench --bin ablation_dma_latency` | §VI-B transfer-granularity effect |
//! | `cargo run --release -p spread-bench --bin ablation_schedules` | static vs dynamic vs weighted (§IX) |
//! | `cargo run --release -p spread-bench --bin ablation_depend_data` | Listing 13 `depend` vs `taskgroup` |
//! | `cargo run --release -p spread-bench --bin ablation_compute_bound` | §IX "does double buffering pay off when compute dominates?" |
//! | `cargo run --release -p spread-bench --bin repro` | everything above, into `results/` |

#![warn(missing_docs)]

pub mod micro;
pub mod report;
pub mod table;

pub use report::{centers_checksum, json_f64, Obj, Report, Value};
pub use table::{markdown_table, speedup};
