//! Small table-formatting helpers shared by the harness binaries.

use spread_trace::SimDuration;

/// Render a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {c:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{:-<1$}|", "", w + 2));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Speedup of `t` relative to `baseline`, formatted as `1.33x`.
pub fn speedup(baseline: SimDuration, t: SimDuration) -> String {
    format!("{:.2}x", baseline.as_secs_f64() / t.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = markdown_table(
            &["Impl", "Time"],
            &[
                vec!["One Buffer".into(), "13m15.486s".into()],
                vec!["Two".into(), "1s".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Impl"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[2].contains("One Buffer"));
    }

    #[test]
    fn speedup_format() {
        let b = SimDuration::from_secs(1060);
        let t = SimDuration::from_secs(502);
        assert_eq!(speedup(b, t), "2.11x");
    }
}
