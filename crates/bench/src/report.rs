//! Shared JSON writer for the `BENCH_*.json` machine-readable exports.
//!
//! Every export binary (`export`, `export_peer`, `export_straggler`,
//! `export_integrity`, `export_overlap`) used to hand-roll its own JSON
//! with `std::fmt::Write`; this module is the one copy of that code and
//! the one place the common schema lives:
//!
//! ```json
//! {
//!   "name": "somier-…",             // which benchmark
//!   "description": "…",             // prose: what was measured and how
//!   "topology": { … },              // the simulated machine + problem size
//!   …headline scalars…,             // benchmark-specific top-level fields
//!   "cells": [ { … }, … ],          // one object per measured configuration
//!   "checksum": "…"                 // bit-identity witness (see below)
//! }
//! ```
//!
//! The `checksum` is a 64-bit hex digest folded from the exact bit
//! patterns of the run's correctness witness (the Somier centers of
//! mass): two exports agree on the checksum iff the physics agreed to
//! the last bit, so diffing two `BENCH_*.json` files from different
//! machines answers "same results?" without shipping the arrays.
//!
//! Everything is virtual time and the writer is deterministic (fields
//! render in insertion order, floats via Rust's shortest-roundtrip
//! formatter), so the files are bit-reproducible.

use std::fmt::Write as _;
use std::fs;

use spread_trace::ConstructProfile;

/// A JSON value the report writer knows how to render.
///
/// Only the shapes the bench exports need — no parsing, no escaping of
/// exotic strings (labels here are ASCII identifiers and prose).
#[derive(Clone, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (bytes, counts).
    U64(u64),
    /// Float; non-finite values render as `null` (JSON has no NaN).
    F64(f64),
    /// String (rendered with minimal `"`/`\` escaping).
    Str(String),
    /// Array of values.
    Arr(Vec<Value>),
    /// Object with insertion-ordered fields.
    Obj(Vec<(String, Value)>),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// An insertion-ordered JSON object under construction — one `cells[]`
/// entry, the `topology`, or any nested object.
#[derive(Clone, Debug, Default)]
pub struct Obj(Vec<(String, Value)>);

impl Obj {
    /// Empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a field (builder style; fields render in insertion order).
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.0.push((key.to_string(), value.into()));
        self
    }
}

impl From<Obj> for Value {
    fn from(o: Obj) -> Self {
        Value::Obj(o.0)
    }
}

/// One benchmark report: the common schema plus benchmark-specific
/// headline fields, built top to bottom and written once.
#[derive(Clone, Debug)]
pub struct Report {
    name: String,
    description: String,
    topology: Obj,
    fields: Vec<(String, Value)>,
    cells: Vec<Obj>,
    checksum: Option<String>,
}

impl Report {
    /// Start a report. `name` identifies the benchmark
    /// (e.g. `"somier-overlap"`), `description` says in prose what was
    /// measured and how.
    pub fn new(name: &str, description: &str) -> Self {
        Report {
            name: name.to_string(),
            description: description.to_string(),
            topology: Obj::new(),
            fields: Vec::new(),
            cells: Vec::new(),
            checksum: None,
        }
    }

    /// Add a field to the `topology` object (the simulated machine and
    /// problem size: `machine`, `n_gpus`, `n`, `timesteps`, …).
    pub fn topology(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.topology = self.topology.field(key, value);
        self
    }

    /// Add a benchmark-specific top-level field (headline scalars like
    /// `speedup`, accounting totals, witnesses).
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Append one `cells[]` entry — one measured configuration (a sweep
    /// point, a device, a policy).
    pub fn cell(mut self, cell: Obj) -> Self {
        self.cells.push(cell);
        self
    }

    /// Record the bit-identity checksum from the run's correctness
    /// witness (see [`centers_checksum`]).
    pub fn checksum(mut self, checksum: String) -> Self {
        self.checksum = Some(checksum);
        self
    }

    /// Render the report as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"name\": {},", escape(&self.name));
        let _ = writeln!(out, "  \"description\": {},", escape(&self.description));
        out.push_str("  \"topology\": ");
        write_value(&mut out, &Value::Obj(self.topology.0.clone()), 1);
        out.push_str(",\n");
        for (k, v) in &self.fields {
            let _ = write!(out, "  {}: ", escape(k));
            write_value(&mut out, v, 1);
            out.push_str(",\n");
        }
        out.push_str("  \"cells\": ");
        let cells = Value::Arr(self.cells.iter().map(|c| Value::Obj(c.0.clone())).collect());
        write_value(&mut out, &cells, 1);
        match &self.checksum {
            Some(c) => {
                out.push_str(",\n");
                let _ = writeln!(out, "  \"checksum\": {}", escape(c));
            }
            None => out.push('\n'),
        }
        out.push_str("}\n");
        out
    }

    /// Render and write the report to `path`, then return the rendered
    /// JSON (for the caller's summary line or further asserts).
    pub fn write(&self, path: &str) -> String {
        let out = self.render();
        fs::write(path, &out).unwrap_or_else(|e| panic!("write {path}: {e}"));
        out
    }
}

/// Fold the exact bit patterns of a correctness witness (e.g. the Somier
/// centers of mass) into a 64-bit hex digest. Position-dependent (a
/// rotate-xor fold), so reordered values change the digest; two runs
/// share a digest iff their witnesses are bit-identical.
pub fn centers_checksum(centers: &[f64]) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for c in centers {
        h = h.rotate_left(17) ^ c.to_bits();
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Serialize one learned [`ConstructProfile`] — the per-construct,
/// per-device record `spread_schedule(auto)` adapts from — as a
/// `cells[]`-ready object, including the per-device phase split
/// (`copy_in_s`/`copy_out_s`/`kernel_s`/`overlap_s`/`finish_s`/
/// `idle_tail_s`).
pub fn profile_obj(p: &ConstructProfile) -> Obj {
    let devices: Vec<Value> = p
        .devices
        .iter()
        .map(|d| {
            Value::from(
                Obj::new()
                    .field("device", d.device)
                    .field("copy_in_s", d.copy_in.as_secs_f64())
                    .field("copy_out_s", d.copy_out.as_secs_f64())
                    .field("kernel_s", d.kernel.as_secs_f64())
                    .field("overlap_s", d.overlap.as_secs_f64())
                    .field("finish_s", d.finish.as_secs_f64())
                    .field("idle_tail_s", d.idle_tail.as_secs_f64()),
            )
        })
        .collect();
    Obj::new()
        .field("key", p.key.as_str())
        .field("launch", p.launch)
        .field("elapsed_s", p.elapsed().as_secs_f64())
        .field("round", p.round)
        .field("weights", p.weights.clone())
        .field("devices", Value::Arr(devices))
}

/// Render a float the way every export always has: shortest roundtrip
/// for finite values, `null` for NaN/inf (JSON has no non-finite
/// numbers).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::F64(f) => out.push_str(&json_f64(*f)),
        Value::Str(s) => out.push_str(&escape(s)),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner);
                write_value(out, item, indent + 1);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&inner);
                let _ = write!(out, "{}: ", escape(k));
                write_value(out, val, indent + 1);
                out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_the_common_schema_in_order() {
        let r = Report::new("demo", "a demo")
            .topology("machine", "ctepower")
            .topology("n_gpus", 4usize)
            .field("speedup", 1.5f64)
            .cell(Obj::new().field("device", 0usize).field("time_s", 0.25f64))
            .cell(Obj::new().field("device", 1usize).field("time_s", f64::NAN))
            .checksum(centers_checksum(&[1.0, 2.0, 3.0]));
        let out = r.render();
        let name_at = out.find("\"name\"").unwrap();
        let topo_at = out.find("\"topology\"").unwrap();
        let cells_at = out.find("\"cells\"").unwrap();
        let sum_at = out.find("\"checksum\"").unwrap();
        assert!(name_at < topo_at && topo_at < cells_at && cells_at < sum_at);
        assert!(out.contains("\"machine\": \"ctepower\""));
        assert!(out.contains("\"speedup\": 1.5"));
        // NaN must degrade to null, never to a non-JSON token.
        assert!(out.contains("\"time_s\": null"));
        assert!(!out.contains("NaN"));
    }

    #[test]
    fn checksum_is_bit_and_order_sensitive() {
        let a = centers_checksum(&[1.0, 2.0, 3.0]);
        assert_eq!(a, centers_checksum(&[1.0, 2.0, 3.0]));
        assert_ne!(a, centers_checksum(&[2.0, 1.0, 3.0]));
        // One ULP on the first element (3.0 + EPSILON would round back).
        assert_ne!(a, centers_checksum(&[1.0 + f64::EPSILON, 2.0, 3.0]));
    }

    #[test]
    fn strings_are_escaped() {
        let out = Report::new("q\"x", "line\nbreak \\ slash").render();
        assert!(out.contains("\"q\\\"x\""));
        assert!(out.contains("line\\nbreak \\\\ slash"));
    }
}
