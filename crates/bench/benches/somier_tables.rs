//! Wall-clock micro-benchmarks of the Somier reproduction at a reduced
//! size — one group per paper table, measuring how fast the *library*
//! (simulator + runtime + kernels) executes each configuration. The
//! virtual-time results themselves are produced by the
//! `table1`/`table2` binaries.

use spread_bench::micro::{bench, black_box};
use spread_somier::{run_somier, SomierConfig, SomierImpl};

fn cfg() -> SomierConfig {
    SomierConfig::test_small(32, 2).with_trace(false)
}

fn main() {
    bench("table1_one_buffer/target_1gpu", 1, 10, || {
        black_box(
            run_somier(&cfg(), SomierImpl::OneBufferTarget, 1)
                .unwrap()
                .0
                .elapsed,
        );
    });
    for gpus in [1usize, 2, 4] {
        bench(
            &format!("table1_one_buffer/spread_{gpus}gpu"),
            1,
            10,
            || {
                black_box(
                    run_somier(&cfg(), SomierImpl::OneBufferSpread, gpus)
                        .unwrap()
                        .0
                        .elapsed,
                );
            },
        );
    }

    // Two Buffers / Double Buffering need half-chunks of >= 2 planes.
    let cfg2 = SomierConfig::test_small(100, 1).with_trace(false);
    for (name, which) in [
        ("one_buffer", SomierImpl::OneBufferSpread),
        ("two_buffers", SomierImpl::TwoBuffers),
        ("double_buffering", SomierImpl::DoubleBuffering),
    ] {
        bench(&format!("table2_buffering/{name}"), 1, 10, || {
            black_box(run_somier(&cfg2, which, 2).unwrap().0.elapsed);
        });
    }
}
