//! Criterion wall-clock benchmarks of the Somier reproduction at a
//! reduced size — one benchmark group per paper table, measuring how
//! fast the *library* (simulator + runtime + kernels) executes each
//! configuration. The virtual-time results themselves are produced by
//! the `table1`/`table2` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use spread_somier::{run_somier, SomierConfig, SomierImpl};

fn cfg() -> SomierConfig {
    SomierConfig::test_small(32, 2).with_trace(false)
}

fn table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_one_buffer");
    g.sample_size(10);
    g.bench_function("target_1gpu", |b| {
        b.iter(|| {
            run_somier(&cfg(), SomierImpl::OneBufferTarget, 1)
                .unwrap()
                .0
                .elapsed
        })
    });
    for gpus in [1usize, 2, 4] {
        g.bench_function(format!("spread_{gpus}gpu"), |b| {
            b.iter(|| {
                run_somier(&cfg(), SomierImpl::OneBufferSpread, gpus)
                    .unwrap()
                    .0
                    .elapsed
            })
        });
    }
    g.finish();
}

fn table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_buffering");
    g.sample_size(10);
    // Two Buffers / Double Buffering need half-chunks of >= 2 planes.
    let cfg = SomierConfig::test_small(100, 1).with_trace(false);
    for (name, which) in [
        ("one_buffer", SomierImpl::OneBufferSpread),
        ("two_buffers", SomierImpl::TwoBuffers),
        ("double_buffering", SomierImpl::DoubleBuffering),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| run_somier(&cfg, which, 2).unwrap().0.elapsed)
        });
    }
    g.finish();
}

criterion_group!(benches, table1, table2);
criterion_main!(benches);
