//! Criterion benchmarks of directive-layer overhead: what one `target
//! spread` construct costs the host (chunking, task-graph bookkeeping,
//! mapping tables) — the reproduction's version of the paper's
//! "negligible overhead" claim for the new directives (Table I, 1 GPU).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spread_core::prelude::*;
use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;

fn runtime(n_dev: usize) -> Runtime {
    let topo = Topology::uniform(
        n_dev,
        DeviceSpec::v100().with_mem_bytes(1 << 24),
        1e12,
        1.6e12,
    );
    Runtime::new(
        RuntimeConfig::new(topo)
            .with_team_threads(2)
            .with_trace(false),
    )
}

const N: usize = 1 << 14;

fn kernel(a: HostArray) -> KernelSpec {
    KernelSpec::new("inc", 1.0, |chunk, v| {
        for i in chunk {
            let x = v.get(0, i);
            v.set(0, i, x + 1.0);
        }
    })
    .arg(KernelArg::read_write(a, |r| r))
}

fn directive_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("construct_cost");
    g.sample_size(20);
    g.bench_function("target_single_device", |b| {
        b.iter_batched(
            || {
                let mut rt = runtime(1);
                let a = rt.host_array("A", N);
                (rt, a)
            },
            |(mut rt, a)| {
                rt.run(|s| {
                    Target::device(0)
                        .map(tofrom(a, 0..N))
                        .parallel_for(s, 0..N, kernel(a))?;
                    Ok(())
                })
                .unwrap();
                rt.elapsed()
            },
            BatchSize::SmallInput,
        )
    });
    for n_dev in [1usize, 4] {
        g.bench_function(format!("target_spread_{n_dev}dev_16chunks"), |b| {
            b.iter_batched(
                || {
                    let mut rt = runtime(n_dev);
                    let a = rt.host_array("A", N);
                    (rt, a)
                },
                |(mut rt, a)| {
                    let devices: Vec<u32> = (0..n_dev as u32).collect();
                    rt.run(|s| {
                        TargetSpread::devices(devices.clone())
                            .spread_schedule(SpreadSchedule::static_chunk(N / 16))
                            .map(spread_tofrom(a, |c| c.range()))
                            .parallel_for(s, 0..N, kernel(a))?;
                        Ok(())
                    })
                    .unwrap();
                    rt.elapsed()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, directive_overhead);
criterion_main!(benches);
