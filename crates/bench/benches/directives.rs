//! Micro-benchmarks of directive-layer overhead: what one `target
//! spread` construct costs the host (chunking, task-graph bookkeeping,
//! mapping tables) — the reproduction's version of the paper's
//! "negligible overhead" claim for the new directives (Table I, 1 GPU).

use spread_bench::micro::{bench, black_box};
use spread_core::prelude::*;
use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::prelude::*;

fn runtime(n_dev: usize) -> Runtime {
    let topo = Topology::uniform(
        n_dev,
        DeviceSpec::v100().with_mem_bytes(1 << 24),
        1e12,
        1.6e12,
    );
    Runtime::new(
        RuntimeConfig::new(topo)
            .with_team_threads(2)
            .with_trace(false),
    )
}

const N: usize = 1 << 14;

fn kernel(a: HostArray) -> KernelSpec {
    KernelSpec::new("inc", 1.0, |chunk, v| {
        for i in chunk {
            let x = v.get(0, i);
            v.set(0, i, x + 1.0);
        }
    })
    .arg(KernelArg::read_write(a, |r| r))
}

fn main() {
    bench("construct_cost/target_single_device", 2, 20, || {
        let mut rt = runtime(1);
        let a = rt.host_array("A", N);
        rt.run(|s| {
            Target::device(0)
                .map(tofrom(a, 0..N))
                .parallel_for(s, 0..N, kernel(a))?;
            Ok(())
        })
        .unwrap();
        black_box(rt.elapsed());
    });
    for n_dev in [1usize, 4] {
        bench(
            &format!("construct_cost/target_spread_{n_dev}dev_16chunks"),
            2,
            20,
            || {
                let mut rt = runtime(n_dev);
                let a = rt.host_array("A", N);
                let devices: Vec<u32> = (0..n_dev as u32).collect();
                rt.run(|s| {
                    TargetSpread::devices(devices.clone())
                        .with_schedule(SpreadSchedule::static_chunk(N / 16))
                        .map(spread_tofrom(a, |c| c.range()))
                        .parallel_for(s, 0..N, kernel(a))?;
                    Ok(())
                })
                .unwrap();
                black_box(rt.elapsed());
            },
        );
    }
}
