//! Micro-benchmarks of the max–min fair flow network — the hot path of
//! the interconnect model (every transfer arrival/departure re-allocates
//! all rates).

use spread_bench::micro::{bench, black_box};
use spread_sim::flow::maxmin_rates;
use spread_sim::{SharedFlowNet, Simulator};

fn main() {
    for n_flows in [4usize, 16, 64] {
        // CTE-POWER-shaped constraint sets: bus + switch + per-flow link.
        let caps: Vec<f64> = std::iter::once(21e9)
            .chain((0..2).map(|_| 14e9))
            .chain((0..n_flows).map(|_| 12e9))
            .collect();
        let flow_caps: Vec<Vec<usize>> =
            (0..n_flows).map(|f| vec![0, 1 + (f % 2), 3 + f]).collect();
        let refs: Vec<&[usize]> = flow_caps.iter().map(|v| v.as_slice()).collect();
        bench(&format!("maxmin_rates/{n_flows}_flows"), 10, 100, || {
            black_box(maxmin_rates(black_box(&caps), black_box(&refs)));
        });
    }

    bench("flownet_100_flows_end_to_end", 2, 20, || {
        let mut sim = Simulator::without_trace();
        let net = SharedFlowNet::new();
        let bus = net.add_capacity("bus", 21e9);
        let links: Vec<_> = (0..4)
            .map(|i| net.add_capacity(format!("l{i}"), 12e9))
            .collect();
        for i in 0..100u64 {
            let link = links[(i % 4) as usize];
            net.start_flow(&mut sim, 1_000_000 + i, vec![link, bus], Box::new(|_| {}));
        }
        sim.run_until_idle();
        black_box(sim.now());
    });
}
