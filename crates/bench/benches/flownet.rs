//! Criterion benchmarks of the max–min fair flow network — the hot path
//! of the interconnect model (every transfer arrival/departure
//! re-allocates all rates).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spread_sim::flow::maxmin_rates;
use spread_sim::{SharedFlowNet, Simulator};

fn maxmin(c: &mut Criterion) {
    let mut g = c.benchmark_group("maxmin_rates");
    for n_flows in [4usize, 16, 64] {
        // CTE-POWER-shaped constraint sets: bus + switch + per-flow link.
        let caps: Vec<f64> = std::iter::once(21e9)
            .chain((0..2).map(|_| 14e9))
            .chain((0..n_flows).map(|_| 12e9))
            .collect();
        let flow_caps: Vec<Vec<usize>> =
            (0..n_flows).map(|f| vec![0, 1 + (f % 2), 3 + f]).collect();
        g.bench_function(format!("{n_flows}_flows"), |b| {
            let refs: Vec<&[usize]> = flow_caps.iter().map(|v| v.as_slice()).collect();
            b.iter(|| maxmin_rates(std::hint::black_box(&caps), std::hint::black_box(&refs)))
        });
    }
    g.finish();
}

fn flow_lifecycle(c: &mut Criterion) {
    c.bench_function("flownet_100_flows_end_to_end", |b| {
        b.iter_batched(
            || {
                let sim = Simulator::without_trace();
                let net = SharedFlowNet::new();
                let bus = net.add_capacity("bus", 21e9);
                let links: Vec<_> = (0..4)
                    .map(|i| net.add_capacity(format!("l{i}"), 12e9))
                    .collect();
                (sim, net, bus, links)
            },
            |(mut sim, net, bus, links)| {
                for i in 0..100u64 {
                    let link = links[(i % 4) as usize];
                    net.start_flow(&mut sim, 1_000_000 + i, vec![link, bus], Box::new(|_| {}));
                }
                sim.run_until_idle();
                sim.now()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, maxmin, flow_lifecycle);
criterion_main!(benches);
