//! Micro-benchmarks of the team executor: broadcast overhead and
//! work-shared loop throughput per schedule.

use spread_bench::micro::{bench, black_box};
use spread_teams::{LoopSchedule, TeamPool};
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    let pool = TeamPool::new(4);
    bench("broadcast_noop_4_threads", 100, 1000, || {
        pool.broadcast(&|_tid| {});
    });

    const N: usize = 1 << 20;
    let data: Vec<f64> = (0..N).map(|i| i as f64).collect();
    for (name, sched) in [
        ("static_blocked", LoopSchedule::StaticBlocked),
        (
            "static_chunked_4k",
            LoopSchedule::StaticChunked { chunk: 4096 },
        ),
        ("dynamic_4k", LoopSchedule::Dynamic { chunk: 4096 }),
        ("guided", LoopSchedule::Guided { min_chunk: 1024 }),
    ] {
        bench(&format!("parallel_for_sum/{name}"), 3, 30, || {
            let acc = AtomicU64::new(0);
            pool.parallel_for(0..N, sched, |chunk, _| {
                let s: f64 = data[chunk].iter().sum();
                acc.fetch_add(s as u64, Ordering::Relaxed);
            });
            black_box(acc.into_inner());
        });
    }
}
