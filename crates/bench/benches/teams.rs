//! Criterion benchmarks of the team executor: broadcast overhead and
//! work-shared loop throughput per schedule.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spread_teams::{LoopSchedule, TeamPool};
use std::sync::atomic::{AtomicU64, Ordering};

fn broadcast_overhead(c: &mut Criterion) {
    let pool = TeamPool::new(4);
    c.bench_function("broadcast_noop_4_threads", |b| {
        b.iter(|| pool.broadcast(&|_tid| {}))
    });
}

fn parallel_for_throughput(c: &mut Criterion) {
    let pool = TeamPool::new(4);
    const N: usize = 1 << 20;
    let data: Vec<f64> = (0..N).map(|i| i as f64).collect();
    let mut g = c.benchmark_group("parallel_for_sum");
    g.throughput(Throughput::Elements(N as u64));
    for (name, sched) in [
        ("static_blocked", LoopSchedule::StaticBlocked),
        (
            "static_chunked_4k",
            LoopSchedule::StaticChunked { chunk: 4096 },
        ),
        ("dynamic_4k", LoopSchedule::Dynamic { chunk: 4096 }),
        ("guided", LoopSchedule::Guided { min_chunk: 1024 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let acc = AtomicU64::new(0);
                pool.parallel_for(0..N, sched, |chunk, _| {
                    let s: f64 = data[chunk].iter().sum();
                    acc.fetch_add(s as u64, Ordering::Relaxed);
                });
                acc.into_inner()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, broadcast_overhead, parallel_for_throughput);
criterion_main!(benches);
