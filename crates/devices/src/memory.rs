//! Device global memory: a first-fit free-list allocator plus real
//! backing stores.
//!
//! The allocator manages the device's *virtual* address range so capacity
//! pressure behaves like real hardware — the Somier experiment depends on
//! the problem being ~10× larger than one device's memory, and the
//! One-Buffer implementation sizes its buffers to "fully occupy the
//! device memory" (§V-A). Each allocation is also backed by an actual
//! `Vec<f64>` holding device-resident data, so every transfer and kernel
//! manipulates real values that the test suite checks against a CPU
//! reference.

use std::collections::BTreeMap;
use std::fmt;

/// Bytes per array element (everything in the reproduction is `f64`,
/// matching the paper's double-precision grids).
pub const ELEM_BYTES: u64 = 8;

/// Handle to one device allocation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AllocId(u64);

/// Allocation failure: the device is out of (contiguous) memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently free (possibly fragmented).
    pub free: u64,
    /// Largest contiguous free block.
    pub largest_block: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device out of memory: requested {} B, {} B free (largest contiguous block {} B)",
            self.requested, self.free, self.largest_block
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Best-fit free-list allocator with address-ordered coalescing.
/// (Best fit keeps large holes intact under the mixed chunk/halo/partial
/// allocation sizes of buffered workloads, where first fit fragments.)
pub struct MemoryPool {
    capacity: u64,
    /// offset → length of free blocks, address-ordered.
    free: BTreeMap<u64, u64>,
    /// live allocations: id → (offset, length).
    allocs: BTreeMap<u64, (u64, u64)>,
    next_id: u64,
    used: u64,
    high_watermark: u64,
}

impl MemoryPool {
    /// A pool over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        MemoryPool {
            capacity,
            free,
            allocs: BTreeMap::new(),
            next_id: 0,
            used: 0,
            high_watermark: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Peak bytes ever allocated simultaneously.
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark
    }

    /// Reset the peak-usage statistic to the *current* usage. A fresh
    /// `Runtime` calls this on every device so peak numbers describe one
    /// runtime instance, not the whole life of a shared node spec.
    pub fn reset_high_watermark(&mut self) {
        self.high_watermark = self.used;
    }

    /// Number of live allocations.
    pub fn live_allocs(&self) -> usize {
        self.allocs.len()
    }

    /// Largest contiguous free block.
    pub fn largest_free_block(&self) -> u64 {
        self.free.values().copied().max().unwrap_or(0)
    }

    /// Allocate `bytes` (best fit: the smallest block that satisfies the
    /// request, lowest address on ties). Zero-byte allocations are legal
    /// and occupy no space.
    pub fn alloc(&mut self, bytes: u64) -> Result<AllocId, OutOfMemory> {
        let id = AllocId(self.next_id);
        if bytes == 0 {
            self.next_id += 1;
            self.allocs.insert(id.0, (u64::MAX, 0));
            return Ok(id);
        }
        let fit = self
            .free
            .iter()
            .filter(|&(_, &len)| len >= bytes)
            .min_by_key(|&(&off, &len)| (len, off))
            .map(|(&off, &len)| (off, len));
        let Some((off, len)) = fit else {
            return Err(OutOfMemory {
                requested: bytes,
                free: self.free_bytes(),
                largest_block: self.largest_free_block(),
            });
        };
        self.free.remove(&off);
        if len > bytes {
            self.free.insert(off + bytes, len - bytes);
        }
        self.next_id += 1;
        self.allocs.insert(id.0, (off, bytes));
        self.used += bytes;
        self.high_watermark = self.high_watermark.max(self.used);
        Ok(id)
    }

    /// Release an allocation. Returns `false` on double free / unknown
    /// id instead of panicking: after a device-loss wipe, in-flight
    /// constructs legitimately release ids the replacement pool never
    /// issued.
    pub fn dealloc(&mut self, id: AllocId) -> bool {
        let Some((off, len)) = self.allocs.remove(&id.0) else {
            return false;
        };
        if len == 0 {
            return true;
        }
        self.used -= len;
        // Coalesce with the predecessor and successor blocks.
        let mut off = off;
        let mut len = len;
        if let Some((&prev_off, &prev_len)) = self.free.range(..off).next_back() {
            if prev_off + prev_len == off {
                self.free.remove(&prev_off);
                off = prev_off;
                len += prev_len;
            }
        }
        if let Some((&next_off, &next_len)) = self.free.range(off + len..).next() {
            if off + len == next_off {
                self.free.remove(&next_off);
                len += next_len;
            }
        }
        let clobbered = self.free.insert(off, len);
        debug_assert!(clobbered.is_none(), "free-list corruption");
        true
    }

    /// Size in bytes of a live allocation.
    pub fn size_of(&self, id: AllocId) -> Option<u64> {
        self.allocs.get(&id.0).map(|&(_, len)| len)
    }
}

/// Device memory: the pool plus real `f64` backing stores, in *element*
/// units (8 bytes each).
pub struct DeviceMemory {
    pool: MemoryPool,
    buffers: BTreeMap<AllocId, Vec<f64>>,
}

impl DeviceMemory {
    /// Memory of `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> Self {
        DeviceMemory {
            pool: MemoryPool::new(capacity_bytes),
            buffers: BTreeMap::new(),
        }
    }

    /// The underlying pool (capacity/usage queries).
    pub fn pool(&self) -> &MemoryPool {
        &self.pool
    }

    /// The underlying pool, mutably (statistics resets).
    pub fn pool_mut(&mut self) -> &mut MemoryPool {
        &mut self.pool
    }

    /// Allocate a buffer of `elems` f64 elements, zero-initialized.
    pub fn alloc_elems(&mut self, elems: usize) -> Result<AllocId, OutOfMemory> {
        let id = self.pool.alloc(elems as u64 * ELEM_BYTES)?;
        self.buffers.insert(id, vec![0.0; elems]);
        Ok(id)
    }

    /// Free a buffer. Returns `false` if the id is unknown (double free,
    /// or an id issued before a device-loss wipe).
    pub fn dealloc(&mut self, id: AllocId) -> bool {
        let known = self.pool.dealloc(id);
        self.buffers.remove(&id);
        known
    }

    /// Immutable view of a buffer.
    pub fn buffer(&self, id: AllocId) -> &[f64] {
        self.buffers
            .get(&id)
            .unwrap_or_else(|| panic!("access to unknown device buffer {id:?}"))
    }

    /// Mutable view of a buffer.
    pub fn buffer_mut(&mut self, id: AllocId) -> &mut [f64] {
        self.buffers
            .get_mut(&id)
            .unwrap_or_else(|| panic!("access to unknown device buffer {id:?}"))
    }

    /// Mutable views of several *distinct* buffers at once (the kernel
    /// launcher binds every mapped array of a kernel simultaneously).
    /// Panics if `ids` contains duplicates or unknown ids.
    pub fn buffers_mut(&mut self, ids: &[AllocId]) -> Vec<&mut [f64]> {
        for (i, a) in ids.iter().enumerate() {
            assert!(
                !ids[..i].contains(a),
                "duplicate buffer {a:?} in simultaneous bind"
            );
        }
        let mut out: Vec<Option<&mut [f64]>> = ids.iter().map(|_| None).collect();
        for (id, buf) in self.buffers.iter_mut() {
            if let Some(pos) = ids.iter().position(|x| x == id) {
                out[pos] = Some(buf.as_mut_slice());
            }
        }
        out.into_iter()
            .enumerate()
            .map(|(i, o)| o.unwrap_or_else(|| panic!("unknown device buffer {:?}", ids[i])))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut p = MemoryPool::new(1000);
        let a = p.alloc(400).unwrap();
        let b = p.alloc(600).unwrap();
        assert_eq!(p.used(), 1000);
        assert_eq!(p.free_bytes(), 0);
        assert!(p.alloc(1).is_err());
        p.dealloc(a);
        assert_eq!(p.free_bytes(), 400);
        let c = p.alloc(400).unwrap();
        assert_eq!(p.used(), 1000);
        p.dealloc(b);
        p.dealloc(c);
        assert_eq!(p.used(), 0);
        assert_eq!(p.largest_free_block(), 1000, "coalesced back to one block");
        assert_eq!(p.high_watermark(), 1000);
    }

    #[test]
    fn oom_reports_fragmentation() {
        let mut p = MemoryPool::new(300);
        let a = p.alloc(100).unwrap();
        let _b = p.alloc(100).unwrap();
        let _c = p.alloc(100).unwrap();
        p.dealloc(a);
        // 100 free at offset 0, but a request of 150 cannot fit.
        let err = p.alloc(150).unwrap_err();
        assert_eq!(err.requested, 150);
        assert_eq!(err.free, 100);
        assert_eq!(err.largest_block, 100);
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn coalescing_middle_block() {
        let mut p = MemoryPool::new(300);
        let a = p.alloc(100).unwrap();
        let b = p.alloc(100).unwrap();
        let c = p.alloc(100).unwrap();
        p.dealloc(a);
        p.dealloc(c);
        assert_eq!(p.largest_free_block(), 100);
        p.dealloc(b); // merges with both neighbours
        assert_eq!(p.largest_free_block(), 300);
        assert_eq!(p.live_allocs(), 0);
    }

    #[test]
    fn watermark_reset_drops_to_current_usage() {
        let mut p = MemoryPool::new(1000);
        let a = p.alloc(700).unwrap();
        let _b = p.alloc(100).unwrap();
        p.dealloc(a);
        assert_eq!(p.high_watermark(), 800, "peak of a previous run");
        // A new runtime instance resets the statistic: the peak now
        // describes only what is still resident, not history.
        p.reset_high_watermark();
        assert_eq!(p.high_watermark(), 100);
        let _c = p.alloc(300).unwrap();
        assert_eq!(p.high_watermark(), 400, "peak grows from the reset");
    }

    #[test]
    fn fragmentation_free_bytes_vs_largest_hole() {
        // Interleaved alloc/dealloc forcing best-fit splitting: admission
        // control must be able to trust both accountings.
        let mut p = MemoryPool::new(1024);
        let ids: Vec<AllocId> = (0..8).map(|_| p.alloc(128).unwrap()).collect();
        assert_eq!(p.free_bytes(), 0);
        // Free every other block: 512 B free, but no hole above 128 B.
        for &id in ids.iter().step_by(2) {
            assert!(p.dealloc(id));
        }
        assert_eq!(p.free_bytes(), 512);
        assert_eq!(p.largest_free_block(), 128);
        assert_eq!(p.live_allocs(), 4);
        // A 256 B request fails despite 512 B free — and the error
        // carries both numbers so callers can tell scarcity from
        // fragmentation.
        let err = p.alloc(256).unwrap_err();
        assert_eq!(err.free, 512);
        assert_eq!(err.largest_block, 128);
        // Best fit packs exact-size requests into the holes.
        for _ in 0..4 {
            p.alloc(128).unwrap();
        }
        assert_eq!(p.free_bytes(), 0);
    }

    #[test]
    fn best_fit_splits_smallest_sufficient_hole() {
        let mut p = MemoryPool::new(1000);
        let a = p.alloc(100).unwrap(); // [0, 100)
        let _b = p.alloc(200).unwrap(); // [100, 300)
        let c = p.alloc(300).unwrap(); // [300, 600)
        let _d = p.alloc(400).unwrap(); // [600, 1000)
        p.dealloc(a); // hole 100 at offset 0
        p.dealloc(c); // hole 300 at offset 300
                      // 80 B goes into the 100-B hole (best fit), not the 300-B one.
        let _e = p.alloc(80).unwrap();
        assert_eq!(p.largest_free_block(), 300, "large hole left intact");
        assert_eq!(p.free_bytes(), 320);
        // 280 B splits the 300-B hole, leaving a 20-B sliver.
        let _f = p.alloc(280).unwrap();
        assert_eq!(p.free_bytes(), 40);
        assert_eq!(p.largest_free_block(), 20);
        // free_bytes is the sum of the surviving slivers.
        let holes: u64 = p.free.values().sum();
        assert_eq!(holes, p.free_bytes());
    }

    #[test]
    fn zero_byte_alloc() {
        let mut p = MemoryPool::new(10);
        let z = p.alloc(0).unwrap();
        assert_eq!(p.used(), 0);
        assert_eq!(p.size_of(z), Some(0));
        p.dealloc(z);
    }

    #[test]
    fn double_free_is_reported_not_fatal() {
        let mut p = MemoryPool::new(10);
        let a = p.alloc(4).unwrap();
        assert!(p.dealloc(a));
        assert!(!p.dealloc(a), "second free reports the unknown id");
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn zero_capacity_pool() {
        let mut p = MemoryPool::new(0);
        assert!(p.alloc(1).is_err());
        assert!(p.alloc(0).is_ok());
    }

    #[test]
    fn device_memory_buffers() {
        let mut m = DeviceMemory::new(1024);
        let a = m.alloc_elems(10).unwrap();
        let b = m.alloc_elems(20).unwrap();
        assert_eq!(m.pool().used(), 30 * 8);
        m.buffer_mut(a)[3] = 42.0;
        assert_eq!(m.buffer(a)[3], 42.0);
        assert!(m.buffer(b).iter().all(|&x| x == 0.0));
        m.dealloc(a);
        assert_eq!(m.pool().used(), 160);
    }

    #[test]
    fn device_memory_oom_in_elements() {
        let mut m = DeviceMemory::new(100); // room for 12 elements
        assert!(m.alloc_elems(12).is_ok());
        assert!(m.alloc_elems(1).is_err());
    }

    #[test]
    fn simultaneous_buffer_bind() {
        let mut m = DeviceMemory::new(1024);
        let a = m.alloc_elems(4).unwrap();
        let b = m.alloc_elems(4).unwrap();
        let c = m.alloc_elems(4).unwrap();
        let views = m.buffers_mut(&[c, a, b]);
        assert_eq!(views.len(), 3);
        // Order matches the request order.
        views.into_iter().enumerate().for_each(|(i, v)| {
            v[0] = i as f64 + 1.0;
        });
        assert_eq!(m.buffer(c)[0], 1.0);
        assert_eq!(m.buffer(a)[0], 2.0);
        assert_eq!(m.buffer(b)[0], 3.0);
    }

    #[test]
    #[should_panic(expected = "duplicate buffer")]
    fn duplicate_bind_panics() {
        let mut m = DeviceMemory::new(1024);
        let a = m.alloc_elems(4).unwrap();
        let _ = m.buffers_mut(&[a, a]);
    }

    #[test]
    #[should_panic(expected = "unknown device buffer")]
    fn unknown_buffer_access_panics() {
        let mut m = DeviceMemory::new(1024);
        let a = m.alloc_elems(4).unwrap();
        m.dealloc(a);
        let _ = m.buffer(a);
    }
}
