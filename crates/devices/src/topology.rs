//! Node topologies.
//!
//! A [`Topology`] describes the machine: the device list, which PCIe/X-bus
//! switch each device hangs off, and the three tiers of interconnect
//! bandwidth (per-device link, per-switch aggregate, host-bus aggregate).
//! The [`Topology::ctepower`] preset is calibrated so the Somier
//! experiment reproduces the paper's Table I shape; `DESIGN.md` §2
//! derives the numbers.

use spread_trace::SimDuration;

use crate::spec::DeviceSpec;

/// Gigabytes per second, in bytes per second.
pub const GBS: f64 = 1e9;

/// A machine description: devices plus interconnect.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Per-device specifications.
    pub devices: Vec<DeviceSpec>,
    /// Switch index for each device (same length as `devices`).
    pub switch_of: Vec<usize>,
    /// Number of switches.
    pub n_switches: usize,
    /// Per-device, per-direction link bandwidth (bytes/s).
    pub link_bw: f64,
    /// Per-switch, per-direction aggregate bandwidth (bytes/s).
    pub switch_bw: f64,
    /// Host-bus aggregate bandwidth shared by *all* transfers in both
    /// directions (bytes/s).
    pub host_bus_bw: f64,
    /// Per-device peer-link bandwidth for device-to-device copies whose
    /// endpoints share a switch (bytes/s). Peer transfers never touch
    /// the host bus.
    pub peer_bw_same_switch: f64,
    /// Aggregate bandwidth of the inter-switch hop, shared by every
    /// device-to-device copy whose endpoints sit on different switches
    /// (bytes/s).
    pub peer_bw_cross_switch: f64,
}

impl Topology {
    /// A uniform node: `n` identical devices, all on one switch.
    pub fn uniform(n: usize, spec: DeviceSpec, link_bw: f64, host_bus_bw: f64) -> Self {
        Topology {
            devices: vec![spec; n],
            switch_of: vec![0; n],
            n_switches: 1,
            link_bw,
            switch_bw: host_bus_bw,
            host_bus_bw,
            peer_bw_same_switch: 2.0 * link_bw,
            peer_bw_cross_switch: 1.5 * link_bw,
        }
    }

    /// The CTE-POWER-like node of the paper's evaluation: up to four
    /// V100-class GPUs, two per switch.
    ///
    /// Calibration (see DESIGN.md §2): per-device link 12 GB/s, per-switch
    /// cap 14 GB/s, host bus 21 GB/s. Aggregate transfer bandwidth then
    /// scales 1× / ~1.17× / ~1.75× for 1/2/4 GPUs — the sub-linear
    /// transfer speedup that limits Table I's overall speedup to ~2.1× at
    /// 4 GPUs while kernels scale near-linearly.
    pub fn ctepower(n_gpus: usize) -> Self {
        assert!(
            (1..=4).contains(&n_gpus),
            "the CTE-POWER node has 1..=4 GPUs"
        );
        Topology {
            devices: vec![DeviceSpec::v100(); n_gpus],
            // GPUs 0,1 on switch 0; GPUs 2,3 on switch 1.
            switch_of: (0..n_gpus).map(|d| d / 2).collect(),
            n_switches: n_gpus.div_ceil(2),
            link_bw: 12.0 * GBS,
            switch_bw: 14.0 * GBS,
            host_bus_bw: 21.0 * GBS,
            // NVLink-style peer fabric: a same-switch pair copies at 2×
            // the host link and bypasses both the switch cap and the
            // host bus; the inter-switch hop is narrower but still
            // beats the host round-trip.
            peer_bw_same_switch: 24.0 * GBS,
            peer_bw_cross_switch: 16.0 * GBS,
        }
    }

    /// Check internal consistency: per-device switch assignments exist
    /// and are in range, and every bandwidth tier is finite and
    /// positive. `Runtime::new` rejects invalid topologies up front.
    pub fn validate(&self) -> Result<(), String> {
        if self.switch_of.len() != self.devices.len() {
            return Err(format!(
                "switch_of has {} entries for {} devices",
                self.switch_of.len(),
                self.devices.len()
            ));
        }
        if let Some(&s) = self.switch_of.iter().find(|&&s| s >= self.n_switches) {
            return Err(format!(
                "switch index {s} out of range (n_switches = {})",
                self.n_switches
            ));
        }
        for (name, bw) in [
            ("link_bw", self.link_bw),
            ("switch_bw", self.switch_bw),
            ("host_bus_bw", self.host_bus_bw),
            ("peer_bw_same_switch", self.peer_bw_same_switch),
            ("peer_bw_cross_switch", self.peer_bw_cross_switch),
        ] {
            if !bw.is_finite() || bw <= 0.0 {
                return Err(format!("{name} must be finite and positive, got {bw}"));
            }
        }
        Ok(())
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Rescale the machine so a problem `scale`× smaller than the paper's
    /// produces virtual times of the paper's magnitude: divides every
    /// bandwidth by `scale` and multiplies per-iteration kernel cost and
    /// DMA latency by `scale`.
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite());
        self.link_bw /= scale;
        self.switch_bw /= scale;
        self.host_bus_bw /= scale;
        self.peer_bw_same_switch /= scale;
        self.peer_bw_cross_switch /= scale;
        for d in &mut self.devices {
            d.compute.time_scale *= scale;
            d.dma_latency = SimDuration::from_secs_f64(d.dma_latency.as_secs_f64() * scale);
        }
        self
    }

    /// Replace every device's memory capacity (bytes).
    pub fn with_device_mem(mut self, bytes: u64) -> Self {
        for d in &mut self.devices {
            d.mem_bytes = bytes;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctepower_switch_assignment() {
        let t = Topology::ctepower(4);
        assert_eq!(t.switch_of, vec![0, 0, 1, 1]);
        assert_eq!(t.n_switches, 2);
        let t2 = Topology::ctepower(2);
        assert_eq!(t2.switch_of, vec![0, 0]);
        assert_eq!(t2.n_switches, 1);
        let t1 = Topology::ctepower(1);
        assert_eq!(t1.n_switches, 1);
    }

    #[test]
    fn ctepower_calibration_shape() {
        // Aggregate transfer speedups from the calibration: 1 GPU limited
        // by its link; 2 GPUs (same switch) by the switch; 4 by the bus.
        let t = Topology::ctepower(4);
        let s1 = t.link_bw;
        let s2 = t.switch_bw;
        let s4 = t.host_bus_bw;
        assert!((s2 / s1 - 1.1667).abs() < 0.01);
        assert!((s4 / s1 - 1.75).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn ctepower_bounds() {
        Topology::ctepower(5);
    }

    #[test]
    fn ctepower_peer_tiers_beat_the_host_path() {
        let t = Topology::ctepower(4);
        assert!(t.peer_bw_same_switch > t.host_bus_bw);
        assert!(t.peer_bw_cross_switch > t.switch_bw);
        assert!(t.peer_bw_same_switch > t.peer_bw_cross_switch);
    }

    #[test]
    fn validate_accepts_presets() {
        assert_eq!(Topology::ctepower(4).validate(), Ok(()));
        assert_eq!(
            Topology::uniform(3, DeviceSpec::v100(), 10.0, 25.0).validate(),
            Ok(())
        );
    }

    #[test]
    fn validate_rejects_length_mismatch() {
        let mut t = Topology::ctepower(4);
        t.switch_of.pop();
        let err = t.validate().unwrap_err();
        assert!(err.contains("3 entries for 4 devices"), "{err}");
    }

    #[test]
    fn validate_rejects_switch_out_of_range() {
        let mut t = Topology::ctepower(4);
        t.switch_of[2] = 7;
        let err = t.validate().unwrap_err();
        assert!(err.contains("switch index 7 out of range"), "{err}");
    }

    #[test]
    fn validate_rejects_bad_bandwidths() {
        for field in [
            "link_bw",
            "switch_bw",
            "host_bus_bw",
            "peer_bw_same_switch",
            "peer_bw_cross_switch",
        ] {
            for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
                let mut t = Topology::ctepower(2);
                match field {
                    "link_bw" => t.link_bw = bad,
                    "switch_bw" => t.switch_bw = bad,
                    "host_bus_bw" => t.host_bus_bw = bad,
                    "peer_bw_same_switch" => t.peer_bw_same_switch = bad,
                    _ => t.peer_bw_cross_switch = bad,
                }
                let err = t.validate().unwrap_err();
                assert!(err.contains(field), "{field} {bad}: {err}");
            }
        }
    }

    #[test]
    fn time_scale_rescales_consistently() {
        let t = Topology::ctepower(2).with_time_scale(1000.0);
        assert!((t.link_bw - 12.0 * GBS / 1000.0).abs() < 1.0);
        assert!((t.peer_bw_same_switch - 24.0 * GBS / 1000.0).abs() < 1.0);
        assert!((t.peer_bw_cross_switch - 16.0 * GBS / 1000.0).abs() < 1.0);
        assert!((t.devices[0].compute.time_scale - 1000.0).abs() < 1e-9);
        assert_eq!(
            t.devices[0].dma_latency,
            SimDuration::from_millis(10) // 10 us * 1000
        );
    }

    #[test]
    fn uniform_node() {
        let t = Topology::uniform(3, DeviceSpec::v100(), 10.0, 25.0);
        assert_eq!(t.n_devices(), 3);
        assert_eq!(t.switch_of, vec![0, 0, 0]);
        assert_eq!(t.switch_bw, 25.0);
    }

    #[test]
    fn with_device_mem() {
        let t = Topology::ctepower(2).with_device_mem(4096);
        assert!(t.devices.iter().all(|d| d.mem_bytes == 4096));
    }
}
