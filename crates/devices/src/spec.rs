//! Device parameter sets.

use spread_trace::SimDuration;

/// The kernel cost model of one device.
///
/// A kernel over `iters` iterations, each costing `work_per_iter_ns` of
/// single-lane device time, launched with `teams × threads` requested
/// parallelism, takes
///
/// ```text
/// launch_latency + iters * work_per_iter_ns * time_scale / min(teams*threads, max_parallelism)
/// ```
///
/// `max_parallelism` is the device's saturation point (≈ its core count):
/// requesting more parallelism than the hardware has doesn't help, which
/// is why the paper's per-device kernels scale with the *number of
/// devices* (more aggregate cores) but not with `num_teams` alone.
#[derive(Clone, Debug)]
pub struct ComputeModel {
    /// Fixed cost of launching any kernel.
    pub launch_latency: SimDuration,
    /// Parallel lanes the hardware can actually run.
    pub max_parallelism: u32,
    /// Global multiplier on per-iteration work (used to scale the
    /// simulation to paper-magnitude times; see `Topology::ctepower`).
    pub time_scale: f64,
}

impl ComputeModel {
    /// Duration of a kernel under this model.
    pub fn kernel_duration(
        &self,
        iters: u64,
        work_per_iter_ns: f64,
        teams: u32,
        threads_per_team: u32,
    ) -> SimDuration {
        let requested = (teams as u64).saturating_mul(threads_per_team as u64);
        let p = requested.clamp(1, self.max_parallelism as u64) as f64;
        let work_ns = iters as f64 * work_per_iter_ns * self.time_scale / p;
        self.launch_latency + SimDuration::from_secs_f64(work_ns / 1e9)
    }
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel {
            launch_latency: SimDuration::from_micros(8),
            max_parallelism: 5120,
            time_scale: 1.0,
        }
    }
}

/// Static description of one accelerator.
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Human-readable name ("V100-sim").
    pub name: String,
    /// Global memory capacity in bytes.
    pub mem_bytes: u64,
    /// Per-DMA-operation launch latency (the cost of one `cudaMemcpy`
    /// call, independent of size).
    pub dma_latency: SimDuration,
    /// Kernel cost model.
    pub compute: ComputeModel,
    /// Default-stream semantics: when true, the device's H2D copies,
    /// D2H copies and kernels all serialize on one queue — the behaviour
    /// of the paper's runtime (its Figure 4 shows kernels *interleaved*
    /// with transfers, never overlapped). When false the device has
    /// independent copy engines and a compute queue ("separate streams",
    /// the ablation model).
    pub single_queue: bool,
}

impl DeviceSpec {
    /// A V100-like device with 16 GB of memory and default cost model.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100-sim".to_string(),
            mem_bytes: 16 * (1 << 30),
            dma_latency: SimDuration::from_micros(10),
            compute: ComputeModel::default(),
            single_queue: true,
        }
    }

    /// Override the memory capacity.
    pub fn with_mem_bytes(mut self, bytes: u64) -> Self {
        self.mem_bytes = bytes;
        self
    }

    /// Override the DMA launch latency.
    pub fn with_dma_latency(mut self, latency: SimDuration) -> Self {
        self.dma_latency = latency;
        self
    }

    /// Override the compute model.
    pub fn with_compute(mut self, compute: ComputeModel) -> Self {
        self.compute = compute;
        self
    }

    /// Select default-stream (`true`) or separate-streams (`false`)
    /// engine semantics.
    pub fn with_single_queue(mut self, single_queue: bool) -> Self {
        self.single_queue = single_queue;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_duration_scales_with_parallelism() {
        let m = ComputeModel {
            launch_latency: SimDuration::ZERO,
            max_parallelism: 64,
            time_scale: 1.0,
        };
        let one = m.kernel_duration(1000, 100.0, 1, 1);
        let four = m.kernel_duration(1000, 100.0, 1, 4);
        assert_eq!(one.as_nanos(), 100_000);
        assert_eq!(four.as_nanos(), 25_000);
    }

    #[test]
    fn kernel_duration_saturates() {
        let m = ComputeModel {
            launch_latency: SimDuration::ZERO,
            max_parallelism: 8,
            time_scale: 1.0,
        };
        let at_sat = m.kernel_duration(800, 10.0, 1, 8);
        let over_sat = m.kernel_duration(800, 10.0, 4, 128);
        assert_eq!(at_sat, over_sat, "beyond-saturation parallelism is free");
        assert_eq!(at_sat.as_nanos(), 1000);
    }

    #[test]
    fn launch_latency_always_paid() {
        let m = ComputeModel {
            launch_latency: SimDuration::from_micros(5),
            max_parallelism: 8,
            time_scale: 1.0,
        };
        assert_eq!(
            m.kernel_duration(0, 100.0, 1, 1),
            SimDuration::from_micros(5)
        );
    }

    #[test]
    fn time_scale_multiplies_work_not_latency() {
        let m = ComputeModel {
            launch_latency: SimDuration::from_nanos(7),
            max_parallelism: 1,
            time_scale: 10.0,
        };
        let d = m.kernel_duration(10, 1.0, 1, 1);
        assert_eq!(d.as_nanos(), 7 + 100);
    }

    #[test]
    fn zero_parallelism_clamped() {
        let m = ComputeModel::default();
        // teams=0 would divide by zero without the clamp.
        let d = m.kernel_duration(10, 1.0, 0, 0);
        assert!(d >= m.launch_latency);
    }

    #[test]
    fn v100_preset() {
        let s = DeviceSpec::v100();
        assert_eq!(s.mem_bytes, 16 * 1024 * 1024 * 1024);
        let s2 = s.clone().with_mem_bytes(1024);
        assert_eq!(s2.mem_bytes, 1024);
        assert_eq!(s.mem_bytes, 16 * 1024 * 1024 * 1024);
    }
}
