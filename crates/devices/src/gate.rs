//! The per-device serialization gate.
//!
//! The paper's compiler drives each GPU through the CUDA *default
//! stream*: host→device copies, device→host copies and kernel launches
//! on one device all serialize, whatever the task graph would allow.
//! This is precisely what its Figure 4 shows — "the five kernel
//! computations were not executed subsequently, but interleaved with
//! data transfers from a different buffer" and "overlap of computation
//! and transfers happened in very rare occasions".
//!
//! A [`SerialGate`] models that: the device's three engines (H2D, D2H,
//! compute) must acquire the gate before starting an operation and
//! release it when the operation completes; waiters are served FIFO.
//! Devices configured with dual copy engines (the
//! [`crate::spec::DeviceSpec::single_queue`] flag off) skip the gate —
//! the "separate streams" ablation.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use spread_sim::Simulator;

/// Callback invoked when the gate is acquired.
pub type GateAction = Box<dyn FnOnce(&mut Simulator)>;

struct Inner {
    busy: bool,
    waiters: VecDeque<GateAction>,
}

/// A FIFO mutual-exclusion gate over the simulator's virtual time.
#[derive(Clone)]
pub struct SerialGate {
    inner: Rc<RefCell<Inner>>,
}

impl Default for SerialGate {
    fn default() -> Self {
        Self::new()
    }
}

impl SerialGate {
    /// A free gate.
    pub fn new() -> Self {
        SerialGate {
            inner: Rc::new(RefCell::new(Inner {
                busy: false,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Run `action` once the gate is free (immediately if it is);
    /// the holder must call [`SerialGate::release`] when done.
    pub fn acquire(&self, sim: &mut Simulator, action: GateAction) {
        let run_now = {
            let mut inner = self.inner.borrow_mut();
            if inner.busy {
                inner.waiters.push_back(action);
                None
            } else {
                inner.busy = true;
                Some(action)
            }
        };
        if let Some(action) = run_now {
            action(sim);
        }
    }

    /// Release the gate; the next waiter (if any) acquires it.
    pub fn release(&self, sim: &mut Simulator) {
        let next = {
            let mut inner = self.inner.borrow_mut();
            debug_assert!(inner.busy, "release of a free gate");
            match inner.waiters.pop_front() {
                Some(w) => Some(w), // stays busy, hand over
                None => {
                    inner.busy = false;
                    None
                }
            }
        };
        if let Some(action) = next {
            action(sim);
        }
    }

    /// Operations queued behind the current holder.
    pub fn queued(&self) -> usize {
        self.inner.borrow().waiters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spread_trace::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn serializes_in_fifo_order() {
        let mut sim = Simulator::without_trace();
        let gate = SerialGate::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let gate2 = gate.clone();
            let log2 = log.clone();
            gate.acquire(
                &mut sim,
                Box::new(move |sim| {
                    log2.borrow_mut().push(i * 10);
                    let gate3 = gate2.clone();
                    let log3 = log2.clone();
                    // Hold the gate for 5 ns of virtual time.
                    sim.schedule_after(
                        SimDuration::from_nanos(5),
                        Box::new(move |sim| {
                            log3.borrow_mut().push(i * 10 + 1);
                            gate3.release(sim);
                        }),
                    );
                }),
            );
        }
        assert_eq!(gate.queued(), 2);
        sim.run_until_idle();
        assert_eq!(*log.borrow(), vec![0, 1, 10, 11, 20, 21]);
        // Time: three serialized 5 ns holds.
        assert_eq!(sim.now().as_nanos(), 15);
    }

    #[test]
    fn free_gate_runs_immediately() {
        let mut sim = Simulator::without_trace();
        let gate = SerialGate::new();
        let hit = Rc::new(RefCell::new(false));
        let h = hit.clone();
        gate.acquire(&mut sim, Box::new(move |_| *h.borrow_mut() = true));
        assert!(*hit.borrow(), "no event round-trip needed");
        gate.release(&mut sim);
        assert_eq!(gate.queued(), 0);
    }
}
