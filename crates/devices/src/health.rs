//! Per-device health tracking and fault arbitration.
//!
//! A [`FaultCtx`] is the single shared authority on *what fails when*:
//! engines consult it before starting every operation, it owns the one
//! run-scoped PRNG that feeds backoff jitter, and it runs the
//! circuit-breaker that converts a streak of transient faults into a
//! permanent device loss. One `FaultCtx` is built per runtime from the
//! run's [`FaultPlan`] and attached to every engine — sharing the same
//! context (and therefore the same PRNG) is what keeps faulted runs
//! byte-identical across replays; [`FaultCtx::ptr_id`] lets the runtime
//! `debug_assert` that no engine was wired to a stray context.

use std::cell::RefCell;
use std::rc::Rc;

use spread_prng::Prng;
use spread_sim::fault::{FaultPlan, PlannedFault, RetryPolicy};
use spread_sim::{SimDuration, SimTime, Simulator};
use spread_trace::{Lane, SpanKind, TraceRecorder};

/// Outcome of asking the context whether an attempt may proceed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Attempt {
    /// No fault: run the operation.
    Ok,
    /// A transient fault token fired; the engine may back off and retry.
    Transient,
    /// The device is (or just became, via the breaker) permanently lost.
    Lost,
}

/// Callback fired when a device is marked lost.
pub type LostHook = Rc<dyn Fn(&mut Simulator, u32)>;

/// Fatal-fault callback carried by DMA and kernel operations: fires
/// instead of `on_complete` with the surfaced fault.
pub type OnFault = Box<dyn FnOnce(&mut Simulator, spread_sim::fault::FaultEvent)>;

struct DeviceState {
    /// Armed transient-fault windows: `(armed_from, remaining_tokens)`.
    transients: Vec<(SimTime, u32)>,
    /// Link-degradation windows: `(from, until, factor)`.
    degrades: Vec<(SimTime, SimTime, f64)>,
    /// Compute-slowdown windows: `(from, until, factor)`.
    slowdowns: Vec<(SimTime, SimTime, f64)>,
    /// Memory-pressure windows: `(from, until, bytes)`, `until = None`
    /// for sustained pressure (never released).
    pressure: Vec<(SimTime, Option<SimTime>, u64)>,
    /// Armed silent-flip windows: `(armed_from, remaining_tokens)`.
    flips: Vec<(SimTime, u32)>,
    lost: bool,
    /// Streak of transient faults with no intervening success.
    consecutive: u32,
    /// Streak of integrity mismatches with no intervening clean verify.
    mismatches: u32,
}

struct Inner {
    devices: Vec<DeviceState>,
    retry: RetryPolicy,
    /// Consecutive transient faults on one device that trip the breaker.
    breaker: u32,
    /// The run-scoped PRNG — the only legal source of fault randomness.
    prng: Prng,
    on_lost: Vec<LostHook>,
    trace: TraceRecorder,
}

/// Shared fault-arbitration context (cheap to clone).
#[derive(Clone)]
pub struct FaultCtx {
    inner: Rc<RefCell<Inner>>,
}

impl FaultCtx {
    /// Build the context for an `n_devices` machine from a plan.
    /// Permanent losses in the plan are *not* applied here — the runtime
    /// schedules them at their virtual instants via
    /// [`FaultCtx::mark_lost`].
    pub fn new(
        plan: &FaultPlan,
        n_devices: usize,
        retry: RetryPolicy,
        breaker: u32,
        trace: TraceRecorder,
    ) -> Self {
        let mut devices: Vec<DeviceState> = (0..n_devices)
            .map(|_| DeviceState {
                transients: Vec::new(),
                degrades: Vec::new(),
                slowdowns: Vec::new(),
                pressure: Vec::new(),
                flips: Vec::new(),
                lost: false,
                consecutive: 0,
                mismatches: 0,
            })
            .collect();
        for f in &plan.faults {
            match *f {
                PlannedFault::TransientCopies {
                    device,
                    after,
                    count,
                } => {
                    if let Some(d) = devices.get_mut(device as usize) {
                        d.transients.push((after, count));
                    }
                }
                PlannedFault::LinkDegrade {
                    device,
                    from,
                    until,
                    factor,
                } => {
                    if let Some(d) = devices.get_mut(device as usize) {
                        d.degrades.push((from, until, factor));
                    }
                }
                // The injector allocations are scheduled by the runtime
                // at their virtual instants; the windows are recorded
                // here as the forecast admission control consults.
                PlannedFault::OomSpike {
                    device,
                    at,
                    bytes,
                    duration,
                } => {
                    if let Some(d) = devices.get_mut(device as usize) {
                        d.pressure.push((at, Some(at + duration), bytes));
                    }
                }
                PlannedFault::OomSustained { device, at, bytes } => {
                    if let Some(d) = devices.get_mut(device as usize) {
                        d.pressure.push((at, None, bytes));
                    }
                }
                PlannedFault::ComputeSlowdown {
                    device,
                    from,
                    until,
                    factor,
                } => {
                    if let Some(d) = devices.get_mut(device as usize) {
                        d.slowdowns.push((from, until, factor));
                    }
                }
                PlannedFault::SilentFlip {
                    device,
                    after,
                    count,
                } => {
                    if let Some(d) = devices.get_mut(device as usize) {
                        d.flips.push((after, count));
                    }
                }
                // Scheduled by the runtime at their virtual instants.
                PlannedFault::DeviceLoss { .. } | PlannedFault::MemoryScribble { .. } => {}
            }
        }
        FaultCtx {
            inner: Rc::new(RefCell::new(Inner {
                devices,
                retry,
                breaker: breaker.max(1),
                prng: Prng::new(plan.seed),
                on_lost: Vec::new(),
                trace,
            })),
        }
    }

    /// A context with no planned faults (engines run clean).
    pub fn clean(n_devices: usize, trace: TraceRecorder) -> Self {
        Self::new(
            &FaultPlan::default(),
            n_devices,
            RetryPolicy::default(),
            u32::MAX,
            trace,
        )
    }

    /// Identity of the underlying shared state — used by the runtime to
    /// assert (debug builds) that every engine draws fault decisions and
    /// jitter from the *same* run-scoped context/PRNG.
    pub fn ptr_id(&self) -> usize {
        Rc::as_ptr(&self.inner) as usize
    }

    /// The retry policy in force.
    pub fn retry(&self) -> RetryPolicy {
        self.inner.borrow().retry
    }

    /// Register a hook fired (once) when a device is marked lost.
    pub fn on_device_lost(&self, hook: LostHook) {
        self.inner.borrow_mut().on_lost.push(hook);
    }

    /// True if `device` is permanently lost.
    pub fn is_lost(&self, device: u32) -> bool {
        self.inner
            .borrow()
            .devices
            .get(device as usize)
            .is_some_and(|d| d.lost)
    }

    /// All currently-lost devices.
    pub fn lost_devices(&self) -> Vec<u32> {
        self.inner
            .borrow()
            .devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.lost)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Arbitrate one copy/kernel attempt on `device` at `now`: consume a
    /// transient token if one is armed, run the circuit-breaker, reset
    /// the streak on success.
    pub fn attempt(&self, device: u32, now: SimTime) -> Attempt {
        let mut inner = self.inner.borrow_mut();
        let breaker = inner.breaker;
        let Some(d) = inner.devices.get_mut(device as usize) else {
            return Attempt::Ok;
        };
        if d.lost {
            return Attempt::Lost;
        }
        let armed = d
            .transients
            .iter_mut()
            .find(|(after, remaining)| *after <= now && *remaining > 0);
        if let Some((_, remaining)) = armed {
            *remaining -= 1;
            d.consecutive += 1;
            if d.consecutive >= breaker {
                drop(inner);
                return Attempt::Lost; // caller must mark_lost
            }
            return Attempt::Transient;
        }
        d.consecutive = 0;
        Attempt::Ok
    }

    /// Consume one silent-flip token armed on `device` at `now`, if any:
    /// the caller (a transfer effect reading the device's bytes) must
    /// then flip one bit of its payload *after* digesting the pristine
    /// bytes — the corruption happens downstream of the DMA engine's
    /// checksum, which is what makes it catchable. Never touches the
    /// transient streak and never raises an error: the whole point is
    /// that the operation reports success.
    pub fn take_flip(&self, device: u32, now: SimTime) -> bool {
        let mut inner = self.inner.borrow_mut();
        let Some(d) = inner.devices.get_mut(device as usize) else {
            return false;
        };
        let armed = d
            .flips
            .iter_mut()
            .find(|(after, remaining)| *after <= now && *remaining > 0);
        if let Some((_, remaining)) = armed {
            *remaining -= 1;
            return true;
        }
        false
    }

    /// Record a digest mismatch attributed to `device` and run the
    /// integrity circuit-breaker: returns `true` when the mismatch
    /// streak reaches the breaker threshold — the device's data path can
    /// no longer be trusted and the caller must quarantine it via
    /// [`FaultCtx::mark_lost`] (after which redistribution composes
    /// exactly as for any other loss). The integrity streak is tracked
    /// separately from the transient streak: a device can corrupt
    /// silently while never failing a copy.
    pub fn record_integrity_mismatch(&self, device: u32) -> bool {
        let mut inner = self.inner.borrow_mut();
        let breaker = inner.breaker;
        let Some(d) = inner.devices.get_mut(device as usize) else {
            return false;
        };
        if d.lost {
            return false;
        }
        d.mismatches += 1;
        d.mismatches >= breaker
    }

    /// Record a clean digest verification on `device`: resets the
    /// integrity-mismatch streak (the breaker demands *consecutive*
    /// mismatches, mirroring the transient streak).
    pub fn record_integrity_ok(&self, device: u32) {
        if let Some(d) = self.inner.borrow_mut().devices.get_mut(device as usize) {
            d.mismatches = 0;
        }
    }

    /// The current integrity-mismatch streak on `device`.
    pub fn integrity_streak(&self, device: u32) -> u32 {
        self.inner
            .borrow()
            .devices
            .get(device as usize)
            .map_or(0, |d| d.mismatches)
    }

    /// True if the transient streak on `device` has reached the breaker
    /// threshold (the device should be marked lost).
    pub fn breaker_tripped(&self, device: u32) -> bool {
        let inner = self.inner.borrow();
        inner
            .devices
            .get(device as usize)
            .is_some_and(|d| !d.lost && d.consecutive >= inner.breaker)
    }

    /// The backoff before retry `attempt`, jittered from the run-scoped
    /// PRNG (the only randomness source the fault machinery may use).
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let mut inner = self.inner.borrow_mut();
        let retry = inner.retry;
        retry.backoff(attempt, &mut inner.prng)
    }

    /// Injector-reserved memory still outstanding on `device` at `now`:
    /// the sum of every pressure window that has not yet ended
    /// (sustained windows never end). Windows that have not *started*
    /// are included — this is a forecast for admission control, which
    /// must assume planned pressure will materialize mid-construct.
    /// Bytes of windows already active are counted here *and* appear in
    /// the pool's `used`; callers subtract the injector-live figure the
    /// runtime tracks to avoid double counting.
    pub fn oom_outstanding(&self, device: u32, now: SimTime) -> u64 {
        self.inner
            .borrow()
            .devices
            .get(device as usize)
            .map(|d| {
                d.pressure
                    .iter()
                    .filter(|(_, until, _)| until.is_none_or(|u| u > now))
                    .map(|(_, _, b)| *b)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// The link slowdown factor for `device` at `now` (product of all
    /// active degradation windows; 1.0 when healthy).
    pub fn link_factor(&self, device: u32, now: SimTime) -> f64 {
        self.inner
            .borrow()
            .devices
            .get(device as usize)
            .map(|d| {
                d.degrades
                    .iter()
                    .filter(|(from, until, _)| *from <= now && now < *until)
                    .map(|(_, _, f)| *f)
                    .product()
            })
            .unwrap_or(1.0)
    }

    /// The compute slowdown factor for `device` at `now` (product of all
    /// active slowdown windows; 1.0 when healthy). The compute-side twin
    /// of [`FaultCtx::link_factor`] — it scales modeled kernel duration
    /// only, never results.
    pub fn compute_factor(&self, device: u32, now: SimTime) -> f64 {
        self.inner
            .borrow()
            .devices
            .get(device as usize)
            .map(|d| {
                d.slowdowns
                    .iter()
                    .filter(|(from, until, _)| *from <= now && now < *until)
                    .map(|(_, _, f)| *f)
                    .product()
            })
            .unwrap_or(1.0)
    }

    /// Mark `device` permanently lost: record a fault span, then fire
    /// the registered hooks (runtime-side cleanup: presence-table wipe,
    /// waiter fail-over, construct recovery). Idempotent.
    pub fn mark_lost(&self, sim: &mut Simulator, device: u32) {
        let hooks: Vec<LostHook> = {
            let mut inner = self.inner.borrow_mut();
            let Some(d) = inner.devices.get_mut(device as usize) else {
                return;
            };
            if d.lost {
                return;
            }
            d.lost = true;
            let now = sim.now();
            inner.trace.record(
                Lane::compute(device),
                SpanKind::Fault,
                format!("GPU{device} lost"),
                now,
                now,
                0,
            );
            inner.on_lost.clone()
        };
        for hook in hooks {
            hook(sim, device);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    fn ctx(plan: &FaultPlan, breaker: u32) -> FaultCtx {
        FaultCtx::new(
            plan,
            4,
            RetryPolicy::default(),
            breaker,
            TraceRecorder::disabled(),
        )
    }

    #[test]
    fn tokens_consume_in_window_only() {
        let c = ctx(&FaultPlan::new(0).transient_copies(1, t(10), 2), 100);
        // Before the window: clean.
        assert_eq!(c.attempt(1, t(5)), Attempt::Ok);
        // Inside: two tokens, then clean again.
        assert_eq!(c.attempt(1, t(10)), Attempt::Transient);
        assert_eq!(c.attempt(1, t(11)), Attempt::Transient);
        assert_eq!(c.attempt(1, t(12)), Attempt::Ok);
        // Other devices unaffected.
        assert_eq!(c.attempt(0, t(11)), Attempt::Ok);
    }

    #[test]
    fn breaker_trips_after_streak() {
        let c = ctx(&FaultPlan::new(0).transient_copies(2, t(0), 10), 3);
        assert_eq!(c.attempt(2, t(0)), Attempt::Transient);
        assert_eq!(c.attempt(2, t(1)), Attempt::Transient);
        assert_eq!(c.attempt(2, t(2)), Attempt::Lost);
        assert!(c.breaker_tripped(2));
        let mut sim = Simulator::without_trace();
        c.mark_lost(&mut sim, 2);
        assert!(c.is_lost(2));
        assert_eq!(c.lost_devices(), vec![2]);
        assert_eq!(c.attempt(2, t(3)), Attempt::Lost);
    }

    #[test]
    fn success_resets_the_streak() {
        let c = ctx(&FaultPlan::new(0).transient_copies(0, t(0), 2), 3);
        assert_eq!(c.attempt(0, t(0)), Attempt::Transient);
        assert_eq!(c.attempt(0, t(1)), Attempt::Transient);
        // Tokens spent: this succeeds and resets the streak.
        assert_eq!(c.attempt(0, t(2)), Attempt::Ok);
        assert!(!c.breaker_tripped(0));
    }

    #[test]
    fn streak_reset_prevents_breaker_trip_across_bursts() {
        // Two separate two-token bursts with a success in between must
        // never trip a breaker of 3: the reset applies mid-streak, not
        // just after all tokens are spent.
        let plan = FaultPlan::new(0)
            .transient_copies(1, t(0), 2)
            .transient_copies(1, t(100), 2);
        let c = ctx(&plan, 3);
        assert_eq!(c.attempt(1, t(0)), Attempt::Transient);
        assert_eq!(c.attempt(1, t(1)), Attempt::Transient);
        assert_eq!(c.attempt(1, t(2)), Attempt::Ok); // streak → 0
        assert_eq!(c.attempt(1, t(100)), Attempt::Transient);
        assert_eq!(c.attempt(1, t(101)), Attempt::Transient);
        assert!(!c.breaker_tripped(1), "reset streak must not accumulate");
        assert_eq!(c.attempt(1, t(102)), Attempt::Ok);
    }

    #[test]
    fn flip_tokens_consume_in_window_only() {
        let c = ctx(&FaultPlan::new(0).silent_flips(2, t(10), 2), 100);
        // Before the window: no flip.
        assert!(!c.take_flip(2, t(5)));
        // Inside: two tokens, then clean again.
        assert!(c.take_flip(2, t(10)));
        assert!(c.take_flip(2, t(11)));
        assert!(!c.take_flip(2, t(12)));
        // Other devices (and out-of-range ids) unaffected.
        assert!(!c.take_flip(0, t(11)));
        assert!(!c.take_flip(99, t(11)));
    }

    #[test]
    fn flips_never_touch_the_transient_streak() {
        let c = ctx(&FaultPlan::new(0).silent_flips(0, t(0), 10), 2);
        assert!(c.take_flip(0, t(0)));
        assert!(c.take_flip(0, t(1)));
        assert!(!c.breaker_tripped(0));
        assert_eq!(c.attempt(0, t(2)), Attempt::Ok);
    }

    #[test]
    fn integrity_streak_trips_the_breaker_into_quarantine() {
        let c = ctx(&FaultPlan::new(0), 3);
        assert!(!c.record_integrity_mismatch(1));
        assert!(!c.record_integrity_mismatch(1));
        assert_eq!(c.integrity_streak(1), 2);
        assert!(c.record_integrity_mismatch(1), "third strike quarantines");
        // Other devices keep their own streaks.
        assert_eq!(c.integrity_streak(0), 0);
        let mut sim = Simulator::without_trace();
        c.mark_lost(&mut sim, 1);
        assert!(c.is_lost(1));
        // A lost device no longer accumulates (or re-trips).
        assert!(!c.record_integrity_mismatch(1));
    }

    #[test]
    fn clean_verify_resets_the_integrity_streak() {
        let c = ctx(&FaultPlan::new(0), 3);
        assert!(!c.record_integrity_mismatch(2));
        assert!(!c.record_integrity_mismatch(2));
        c.record_integrity_ok(2);
        assert_eq!(c.integrity_streak(2), 0);
        assert!(!c.record_integrity_mismatch(2));
        assert!(!c.record_integrity_mismatch(2));
        assert!(!c.is_lost(2));
    }

    #[test]
    fn degradation_windows_multiply() {
        let plan = FaultPlan::new(0)
            .degrade_link(0, t(10), t(20), 2.0)
            .degrade_link(0, t(15), t(30), 3.0);
        let c = ctx(&plan, 100);
        assert_eq!(c.link_factor(0, t(5)), 1.0);
        assert_eq!(c.link_factor(0, t(12)), 2.0);
        assert_eq!(c.link_factor(0, t(17)), 6.0);
        assert_eq!(c.link_factor(0, t(25)), 3.0);
        assert_eq!(c.link_factor(1, t(17)), 1.0);
    }

    #[test]
    fn slowdown_windows_multiply_and_stay_per_device() {
        let plan = FaultPlan::new(0)
            .slow_compute(1, t(10), t(20), 8.0)
            .slow_compute(1, t(15), t(30), 2.0)
            .degrade_link(1, t(0), t(100), 4.0);
        let c = ctx(&plan, 100);
        assert_eq!(c.compute_factor(1, t(5)), 1.0);
        assert_eq!(c.compute_factor(1, t(12)), 8.0);
        assert_eq!(c.compute_factor(1, t(17)), 16.0);
        assert_eq!(c.compute_factor(1, t(25)), 2.0);
        assert_eq!(c.compute_factor(1, t(30)), 1.0);
        // Compute slowdowns are independent of link degradation and of
        // other devices.
        assert_eq!(c.link_factor(1, t(12)), 4.0);
        assert_eq!(c.compute_factor(0, t(12)), 1.0);
        assert_eq!(c.compute_factor(99, t(12)), 1.0);
    }

    #[test]
    fn oom_outstanding_forecasts_windows() {
        use spread_sim::SimDuration;
        let plan = FaultPlan::new(0)
            .oom_spike(1, t(10), 100, SimDuration::from_micros(20))
            .sustain_pressure(1, t(50), 40)
            .sustain_pressure(2, t(0), 7);
        let c = ctx(&plan, 100);
        // Before the spike starts it is still forecast.
        assert_eq!(c.oom_outstanding(1, t(0)), 140);
        // Inside the spike window both count.
        assert_eq!(c.oom_outstanding(1, t(15)), 140);
        // After the spike ends only the sustained pressure remains —
        // even though it has not started yet (forecast), and forever
        // after it does.
        assert_eq!(c.oom_outstanding(1, t(30)), 40);
        assert_eq!(c.oom_outstanding(1, t(1_000_000)), 40);
        assert_eq!(c.oom_outstanding(2, t(0)), 7);
        assert_eq!(c.oom_outstanding(0, t(0)), 0);
        assert_eq!(c.oom_outstanding(99, t(0)), 0);
    }

    #[test]
    fn lost_hooks_fire_once() {
        let c = ctx(&FaultPlan::new(0), 100);
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        c.on_device_lost(Rc::new(move |_, d| h.borrow_mut().push(d)));
        let mut sim = Simulator::without_trace();
        c.mark_lost(&mut sim, 3);
        c.mark_lost(&mut sim, 3);
        assert_eq!(*hits.borrow(), vec![3]);
    }

    #[test]
    fn loss_records_a_fault_span() {
        let trace = TraceRecorder::new();
        let c = FaultCtx::new(
            &FaultPlan::new(0),
            2,
            RetryPolicy::default(),
            8,
            trace.clone(),
        );
        let mut sim = Simulator::new(trace.clone());
        c.mark_lost(&mut sim, 1);
        let spans = trace.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, SpanKind::Fault);
        assert_eq!(spans[0].lane, Lane::compute(1));
    }

    #[test]
    fn backoff_draws_from_the_shared_prng() {
        // Two contexts with the same seed produce the same jitter
        // stream; interleaving draws from one context does not disturb
        // determinism of the pair.
        let a = ctx(&FaultPlan::new(9), 8);
        let b = ctx(&FaultPlan::new(9), 8);
        let da: Vec<_> = (0..8).map(|i| a.backoff(i)).collect();
        let db: Vec<_> = (0..8).map(|i| b.backoff(i)).collect();
        assert_eq!(da, db);
        assert_eq!(a.ptr_id(), a.clone().ptr_id());
        assert_ne!(a.ptr_id(), b.ptr_id());
    }
}
