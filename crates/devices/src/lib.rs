//! # spread-devices
//!
//! Simulated accelerator devices for the `target-spread` reproduction.
//!
//! The paper evaluates on a CTE-POWER node with four NVIDIA V100 GPUs;
//! this crate provides the synthetic equivalent: devices with finite
//! global memory (a real allocator that can genuinely run out — the
//! paper's problem is sized at ~10× one device's memory), DMA engines
//! with per-operation launch latency (the "12 sequential calls to the
//! underlying CUDA memory copy API per mapped chunk" of §VI-B), and a
//! kernel cost model with saturating intra-device parallelism (kernels
//! scale near-linearly across devices, as §VI-A observes).
//!
//! * [`spec`] — [`DeviceSpec`] and [`ComputeModel`]: per-device
//!   parameters.
//! * [`memory`] — [`MemoryPool`]: a first-fit, coalescing free-list
//!   allocator over the device's global memory, plus real `Vec<f64>`
//!   backing stores so mapping bugs corrupt data rather than hide.
//! * [`dma`] — [`DmaEngine`]: one FIFO copy engine per direction per
//!   device; each operation pays a launch latency, then streams through
//!   the flow network (link → switch → host bus).
//! * [`compute`] — [`ComputeEngine`]: a FIFO kernel queue; kernel bodies
//!   *really execute* at launch (on the host, optionally via a
//!   [`spread_teams::TeamPool`] upstream) while the modeled duration
//!   determines virtual time.
//! * [`health`] — [`FaultCtx`]: the shared fault-arbitration context
//!   built from a `FaultPlan`; engines consult it before every operation
//!   and it runs the transient-streak circuit-breaker that converts
//!   repeated faults into a permanent device loss.
//! * [`topology`] — [`Topology`]: node descriptions, including the
//!   calibrated [`Topology::ctepower`] preset that reproduces the
//!   paper's transfer-bound contention shape.
//! * [`node`] — [`Node`]: an instantiated machine: devices + flow
//!   network wired to a simulator.

#![warn(missing_docs)]

pub mod compute;
pub mod dma;
pub mod gate;
pub mod health;
pub mod integrity;
pub mod memory;
pub mod node;
pub mod spec;
pub mod topology;

pub use compute::ComputeEngine;
pub use dma::{Direction, DmaEngine};
pub use gate::SerialGate;
pub use health::{Attempt, FaultCtx, OnFault};
pub use integrity::{crc32c, digest_f64};
pub use memory::{AllocId, DeviceMemory, MemoryPool, OutOfMemory};
pub use node::{DeviceHandle, Node};
pub use spec::{ComputeModel, DeviceSpec};
pub use topology::Topology;
