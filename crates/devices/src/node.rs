//! An instantiated machine: devices wired to a flow network.

use std::cell::RefCell;
use std::rc::Rc;

use spread_sim::{CapacityId, SharedFlowNet};
use spread_trace::TraceRecorder;

use crate::compute::ComputeEngine;
use crate::dma::{Direction, DmaEngine};
use crate::gate::SerialGate;
use crate::memory::DeviceMemory;
use crate::spec::DeviceSpec;
use crate::topology::Topology;

/// A live simulated device: memory, two copy engines, one compute queue.
/// Cheap to clone (all engines are shared handles).
#[derive(Clone)]
pub struct DeviceHandle {
    /// Physical device id (index in the topology).
    pub id: u32,
    /// Static parameters.
    pub spec: DeviceSpec,
    /// Global memory (allocator + real buffers).
    pub mem: Rc<RefCell<DeviceMemory>>,
    /// Host→device copy engine.
    pub dma_in: DmaEngine,
    /// Device→host copy engine.
    pub dma_out: DmaEngine,
    /// Peer copy engine: pulls data from sibling devices over the peer
    /// fabric. A separate NVLink-style engine, so it is never gated
    /// behind the default-stream serialization of the host-side
    /// engines.
    pub dma_peer: DmaEngine,
    /// Kernel queue.
    pub compute: ComputeEngine,
    /// Switch this device hangs off (from the topology).
    pub switch_id: usize,
    /// This device's peer-fabric egress capacity; a sibling pulling
    /// from us streams through it.
    pub peer_out_cap: CapacityId,
    /// The shared inter-switch hop every cross-switch peer copy
    /// streams through.
    pub peer_xswitch_cap: CapacityId,
}

impl DeviceHandle {
    /// The per-operation capacities a peer pull from `src` must stream
    /// through, in addition to our peer engine's fixed ingress cap:
    /// the source's egress link, plus the inter-switch hop when the
    /// endpoints sit on different switches.
    pub fn peer_route_caps(&self, src: &DeviceHandle) -> Vec<CapacityId> {
        let mut caps = vec![src.peer_out_cap];
        if src.switch_id != self.switch_id {
            caps.push(self.peer_xswitch_cap);
        }
        caps
    }
}

/// The machine: every device plus the shared interconnect model.
pub struct Node {
    devices: Vec<DeviceHandle>,
    flownet: SharedFlowNet,
}

impl Node {
    /// Instantiate a topology. Spans are recorded into `trace`.
    pub fn new(topo: &Topology, trace: &TraceRecorder) -> Self {
        assert_eq!(
            topo.devices.len(),
            topo.switch_of.len(),
            "topology: switch_of must cover every device"
        );
        let flownet = SharedFlowNet::new();
        let bus = flownet.add_capacity("host-bus", topo.host_bus_bw);
        // One capacity per switch, shared by BOTH directions: on the
        // paper's machine, mixing H2D and D2H traffic bought no extra
        // aggregate bandwidth ("transfers from different buffers did
        // not overlap", Figure 4) — the buffered Somier versions would
        // otherwise win by direction-mixing.
        let switch_caps: Vec<CapacityId> = (0..topo.n_switches)
            .map(|s| flownet.add_capacity(format!("switch{s}"), topo.switch_bw))
            .collect();
        // The peer fabric: per-device ingress/egress links plus one
        // shared inter-switch hop. Peer copies never touch the host
        // bus or the host-side switch caps.
        let peer_xswitch = flownet.add_capacity("peer-xswitch", topo.peer_bw_cross_switch);
        let devices = topo
            .devices
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let sw = topo.switch_of[i];
                assert!(sw < topo.n_switches, "device {i} on unknown switch {sw}");
                let link_in = flownet.add_capacity(format!("gpu{i}-link-in"), topo.link_bw);
                let link_out = flownet.add_capacity(format!("gpu{i}-link-out"), topo.link_bw);
                let peer_in =
                    flownet.add_capacity(format!("gpu{i}-peer-in"), topo.peer_bw_same_switch);
                let peer_out =
                    flownet.add_capacity(format!("gpu{i}-peer-out"), topo.peer_bw_same_switch);
                let id = i as u32;
                let gate = spec.single_queue.then(SerialGate::new);
                let with_gate_dma = |e: DmaEngine| match &gate {
                    Some(g) => e.with_gate(g.clone()),
                    None => e,
                };
                let compute = ComputeEngine::new(id, spec.compute.clone(), trace.clone());
                let compute = match &gate {
                    Some(g) => compute.with_gate(g.clone()),
                    None => compute,
                };
                DeviceHandle {
                    id,
                    spec: spec.clone(),
                    mem: Rc::new(RefCell::new(DeviceMemory::new(spec.mem_bytes))),
                    dma_in: with_gate_dma(DmaEngine::new(
                        id,
                        Direction::In,
                        spec.dma_latency,
                        vec![link_in, switch_caps[sw], bus],
                        flownet.clone(),
                        trace.clone(),
                    )),
                    dma_out: with_gate_dma(DmaEngine::new(
                        id,
                        Direction::Out,
                        spec.dma_latency,
                        vec![link_out, switch_caps[sw], bus],
                        flownet.clone(),
                        trace.clone(),
                    )),
                    dma_peer: DmaEngine::new(
                        id,
                        Direction::Peer,
                        spec.dma_latency,
                        vec![peer_in],
                        flownet.clone(),
                        trace.clone(),
                    ),
                    compute,
                    switch_id: sw,
                    peer_out_cap: peer_out,
                    peer_xswitch_cap: peer_xswitch,
                }
            })
            .collect();
        Node { devices, flownet }
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// All devices.
    pub fn devices(&self) -> &[DeviceHandle] {
        &self.devices
    }

    /// One device by physical id. Panics on unknown ids (the OpenMP
    /// runtime would fail a `device()` clause the same way).
    pub fn device(&self, id: u32) -> &DeviceHandle {
        self.devices
            .get(id as usize)
            .unwrap_or_else(|| panic!("unknown device id {id} (node has {})", self.devices.len()))
    }

    /// The shared interconnect (for instrumentation and ablations).
    pub fn flownet(&self) -> &SharedFlowNet {
        &self.flownet
    }

    /// Attach one shared fault context to every engine of every device.
    /// All engines must consult the same context so fault decisions and
    /// backoff jitter draw from a single run-scoped PRNG.
    pub fn attach_fault_ctx(&self, ctx: &crate::health::FaultCtx) {
        for d in &self.devices {
            d.dma_in.set_fault_ctx(ctx.clone());
            d.dma_out.set_fault_ctx(ctx.clone());
            d.dma_peer.set_fault_ctx(ctx.clone());
            d.compute.set_fault_ctx(ctx.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spread_sim::Simulator;
    use spread_trace::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn node_instantiates_ctepower() {
        let trace = TraceRecorder::disabled();
        let node = Node::new(&Topology::ctepower(4), &trace);
        assert_eq!(node.n_devices(), 4);
        assert_eq!(node.device(2).id, 2);
        assert_eq!(
            node.device(0).mem.borrow().pool().capacity(),
            16 * (1 << 30)
        );
    }

    #[test]
    #[should_panic(expected = "unknown device id")]
    fn unknown_device_panics() {
        let trace = TraceRecorder::disabled();
        let node = Node::new(&Topology::ctepower(2), &trace);
        node.device(2);
    }

    /// End-to-end through a Node: four concurrent H2D transfers on the
    /// CTE-POWER topology aggregate to the host-bus cap, not 4 links.
    #[test]
    fn four_transfers_bottleneck_on_bus() {
        let trace = TraceRecorder::disabled();
        let mut sim = Simulator::new(trace.clone());
        // Unscaled: link 12, switch 14, bus 21 GB/s. 1 GB per device.
        let topo = Topology::ctepower(4);
        let node = Node::new(&topo, &trace);
        let done = Rc::new(RefCell::new(Vec::new()));
        for d in node.devices() {
            let done = done.clone();
            let id = d.id;
            d.dma_in.enqueue(
                &mut sim,
                crate::dma::DmaOp {
                    bytes: 1_000_000_000,
                    label: "test".into(),
                    effect: None,
                    on_complete: Box::new(move |s| {
                        done.borrow_mut().push((id, s.now().as_secs_f64()));
                    }),
                    on_fault: None,
                    extra_caps: Vec::new(),
                    streamed: false,
                },
            );
        }
        sim.run_until_idle();
        // 4 GB total over a 21 GB/s bus (each flow gets 5.25 GB/s,
        // under both the 12 link and 14/2=7 switch share):
        // 1e9 / 5.25e9 ≈ 0.1905 s (+10 us DMA latency).
        for &(id, t) in done.borrow().iter() {
            assert!(
                (t - (1.0 / 5.25 + 10e-6)).abs() < 1e-4,
                "device {id} finished at {t}"
            );
        }
    }

    /// A single transfer is limited by its own link (12 GB/s), and two
    /// same-switch transfers by the switch (14 GB/s aggregate).
    #[test]
    fn contention_tiers() {
        let trace = TraceRecorder::disabled();
        // One device alone.
        let mut sim = Simulator::new(trace.clone());
        let node = Node::new(&Topology::ctepower(1), &trace);
        let t_solo = Rc::new(RefCell::new(0.0));
        let t2 = t_solo.clone();
        node.device(0).dma_in.enqueue(
            &mut sim,
            crate::dma::DmaOp {
                bytes: 12_000_000_000,
                label: String::new(),
                effect: None,
                on_complete: Box::new(move |s| *t2.borrow_mut() = s.now().as_secs_f64()),
                on_fault: None,
                extra_caps: Vec::new(),
                streamed: false,
            },
        );
        sim.run_until_idle();
        assert!(
            (*t_solo.borrow() - 1.0).abs() < 1e-3,
            "solo: {}",
            t_solo.borrow()
        );

        // Two devices on the same switch.
        let mut sim = Simulator::new(trace.clone());
        let node = Node::new(&Topology::ctepower(2), &trace);
        let times = Rc::new(RefCell::new(Vec::new()));
        for d in node.devices() {
            let times = times.clone();
            d.dma_in.enqueue(
                &mut sim,
                crate::dma::DmaOp {
                    bytes: 7_000_000_000,
                    label: String::new(),
                    effect: None,
                    on_complete: Box::new(move |s| times.borrow_mut().push(s.now().as_secs_f64())),
                    on_fault: None,
                    extra_caps: Vec::new(),
                    streamed: false,
                },
            );
        }
        sim.run_until_idle();
        // Each gets 14/2 = 7 GB/s → 1 s for 7 GB.
        for &t in times.borrow().iter() {
            assert!((t - 1.0).abs() < 1e-3, "same-switch pair: {t}");
        }
    }

    fn timed_op(bytes: u64, times: &Rc<RefCell<Vec<f64>>>) -> crate::dma::DmaOp {
        let times = times.clone();
        crate::dma::DmaOp {
            bytes,
            label: String::new(),
            effect: None,
            on_complete: Box::new(move |s| times.borrow_mut().push(s.now().as_secs_f64())),
            on_fault: None,
            extra_caps: Vec::new(),
            streamed: false,
        }
    }

    /// Same-switch peer pulls run at the 24 GB/s peer tier; cross-switch
    /// pulls are bound by the 16 GB/s inter-switch hop.
    #[test]
    fn peer_tiers_same_vs_cross_switch() {
        let trace = TraceRecorder::disabled();

        let mut sim = Simulator::new(trace.clone());
        let node = Node::new(&Topology::ctepower(4), &trace);
        let times = Rc::new(RefCell::new(Vec::new()));
        let dst = node.device(1);
        let caps = dst.peer_route_caps(node.device(0));
        assert_eq!(caps.len(), 1, "same switch: egress cap only");
        let mut op = timed_op(24_000_000_000, &times);
        op.extra_caps = caps;
        dst.dma_peer.enqueue(&mut sim, op);
        sim.run_until_idle();
        assert!(
            (times.borrow()[0] - 1.0).abs() < 1e-3,
            "same-switch pull: {}",
            times.borrow()[0]
        );

        let mut sim = Simulator::new(trace.clone());
        let node = Node::new(&Topology::ctepower(4), &trace);
        let times = Rc::new(RefCell::new(Vec::new()));
        let dst = node.device(2);
        let caps = dst.peer_route_caps(node.device(0));
        assert_eq!(caps.len(), 2, "cross switch: egress + xswitch hop");
        let mut op = timed_op(16_000_000_000, &times);
        op.extra_caps = caps;
        dst.dma_peer.enqueue(&mut sim, op);
        sim.run_until_idle();
        assert!(
            (times.borrow()[0] - 1.0).abs() < 1e-3,
            "cross-switch pull: {}",
            times.borrow()[0]
        );
    }

    /// The peer engine is a separate NVLink-style engine: it neither
    /// shares the host bus nor the default-stream gate, so a peer pull
    /// overlaps fully with a host-routed H2D on the same device.
    #[test]
    fn peer_engine_overlaps_host_traffic_and_skips_the_gate() {
        let trace = TraceRecorder::disabled();
        let mut sim = Simulator::new(trace.clone());
        let node = Node::new(&Topology::ctepower(2), &trace);
        assert!(node.device(1).spec.single_queue);
        let times = Rc::new(RefCell::new(Vec::new()));
        let dst = node.device(1);
        dst.dma_in
            .enqueue(&mut sim, timed_op(12_000_000_000, &times));
        let mut peer = timed_op(24_000_000_000, &times);
        peer.extra_caps = dst.peer_route_caps(node.device(0));
        dst.dma_peer.enqueue(&mut sim, peer);
        sim.run_until_idle();
        // Both take ~1 s alone; serialization would push one to ~2 s.
        for &t in times.borrow().iter() {
            assert!((t - 1.0).abs() < 1e-3, "overlapped transfer took {t}");
        }
    }

    /// With separate streams (dual copy engines), in/out directions have
    /// separate link and switch capacity but share the host bus.
    #[test]
    fn directions_share_only_the_bus() {
        let trace = TraceRecorder::disabled();
        let mut sim = Simulator::new(trace.clone());
        // Custom: link 10, switch 10, bus 12 → an H2D + D2H pair on one
        // device is bus-bound at 6 each.
        let mut topo = Topology::ctepower(1);
        topo.link_bw = 10.0;
        topo.switch_bw = 12.0; // shared by both directions
        topo.host_bus_bw = 12.0;
        for d in &mut topo.devices {
            d.dma_latency = SimDuration::ZERO;
            d.single_queue = false; // separate streams for this test
        }
        let node = Node::new(&topo, &trace);
        let times = Rc::new(RefCell::new(Vec::new()));
        let dev = node.device(0);
        for eng in [&dev.dma_in, &dev.dma_out] {
            let times = times.clone();
            eng.enqueue(
                &mut sim,
                crate::dma::DmaOp {
                    bytes: 60,
                    label: String::new(),
                    effect: None,
                    on_complete: Box::new(move |s| times.borrow_mut().push(s.now().as_secs_f64())),
                    on_fault: None,
                    extra_caps: Vec::new(),
                    streamed: false,
                },
            );
        }
        sim.run_until_idle();
        for &t in times.borrow().iter() {
            assert!((t - 10.0).abs() < 1e-6, "bus-bound pair: {t}");
        }
    }

    /// With default-stream semantics (single_queue, the ctepower
    /// default), an H2D + D2H pair on one device serializes completely —
    /// the paper's Figure 4 behaviour.
    #[test]
    fn single_queue_serializes_directions() {
        let trace = TraceRecorder::disabled();
        let mut sim = Simulator::new(trace.clone());
        let mut topo = Topology::ctepower(1);
        topo.link_bw = 10.0;
        topo.switch_bw = 12.0;
        topo.host_bus_bw = 12.0;
        for d in &mut topo.devices {
            d.dma_latency = SimDuration::ZERO;
            assert!(d.single_queue, "ctepower defaults to default-stream");
        }
        let node = Node::new(&topo, &trace);
        let times = Rc::new(RefCell::new(Vec::new()));
        let dev = node.device(0);
        for eng in [&dev.dma_in, &dev.dma_out] {
            let times = times.clone();
            eng.enqueue(
                &mut sim,
                crate::dma::DmaOp {
                    bytes: 60,
                    label: String::new(),
                    effect: None,
                    on_complete: Box::new(move |s| times.borrow_mut().push(s.now().as_secs_f64())),
                    on_fault: None,
                    extra_caps: Vec::new(),
                    streamed: false,
                },
            );
        }
        sim.run_until_idle();
        // Each op alone runs at the 10 B/s link: 6 s, then 6 s more.
        let t = times.borrow();
        assert!((t[0] - 6.0).abs() < 1e-6, "first: {}", t[0]);
        assert!((t[1] - 12.0).abs() < 1e-6, "second serialized: {}", t[1]);
    }

    /// Streamed operations (runtime-allocated streams) bypass the
    /// default-stream gate even on a single_queue device: an H2D + D2H
    /// pair overlaps instead of serializing — the mechanism behind the
    /// `spread_overlap(depth)` pipelined engine.
    #[test]
    fn streamed_ops_bypass_the_default_stream_gate() {
        let trace = TraceRecorder::disabled();
        let mut sim = Simulator::new(trace.clone());
        let mut topo = Topology::ctepower(1);
        topo.link_bw = 10.0;
        topo.switch_bw = 12.0;
        topo.host_bus_bw = 12.0;
        for d in &mut topo.devices {
            d.dma_latency = SimDuration::ZERO;
            assert!(d.single_queue, "ctepower defaults to default-stream");
        }
        let node = Node::new(&topo, &trace);
        let times = Rc::new(RefCell::new(Vec::new()));
        let dev = node.device(0);
        for eng in [&dev.dma_in, &dev.dma_out] {
            let mut op = timed_op(60, &times);
            op.streamed = true;
            eng.enqueue(&mut sim, op);
        }
        sim.run_until_idle();
        // Bus-bound at 6 B/s each → both land at 10 s; the gate would
        // have pushed the second to 12 s.
        for &t in times.borrow().iter() {
            assert!((t - 10.0).abs() < 1e-6, "streamed pair overlapped: {t}");
        }
    }
}
