//! DMA copy engines.
//!
//! Each device has one engine per direction (host→device and
//! device→host), matching real GPUs' dedicated copy engines. An engine is
//! a FIFO: operations on the same engine **serialize** — this is the
//! mechanism behind the paper's Figure 4 finding that "transfers from
//! different buffers did not overlap" on one GPU. Every operation pays a
//! fixed launch latency (one `cudaMemcpy` call) before its bytes stream
//! through the flow network, so mapping a chunk of 12 grids costs 12
//! launch latencies (§VI-B's granularity observation).
//!
//! The *data effect* of an operation (the actual memcpy between host and
//! device `Vec<f64>`s) runs eagerly when the operation starts; the
//! completion callback fires when the modeled transfer finishes. Task
//! ordering upstream guarantees observational equivalence (see
//! `spread-rt`'s race detector).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use spread_sim::fault::{FaultEvent, FaultEventKind};
use spread_sim::{CapacityId, SharedFlowNet, Simulator};
use spread_trace::{Lane, SimDuration, SpanKind, TraceRecorder};

use crate::gate::SerialGate;
use crate::health::{Attempt, FaultCtx};

/// Transfer direction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Host to device.
    In,
    /// Device to host.
    Out,
    /// Device to device, pulled by the destination's peer engine.
    Peer,
}

impl Direction {
    fn lane(self, device: u32) -> Lane {
        match self {
            Direction::In => Lane::copy_in(device),
            Direction::Out => Lane::copy_out(device),
            Direction::Peer => Lane::peer(device),
        }
    }

    fn span_kind(self) -> SpanKind {
        match self {
            Direction::In => SpanKind::TransferIn,
            Direction::Out => SpanKind::TransferOut,
            Direction::Peer => SpanKind::PeerCopy,
        }
    }
}

/// One queued copy operation.
pub struct DmaOp {
    /// Bytes to move.
    pub bytes: u64,
    /// Label recorded in the trace.
    pub label: String,
    /// The data effect (the real memcpy); runs when the op starts.
    pub effect: Option<Box<dyn FnOnce()>>,
    /// Fires when the modeled transfer completes.
    pub on_complete: Box<dyn FnOnce(&mut Simulator)>,
    /// Fires instead of `on_complete` when the operation fails fatally
    /// (retries exhausted or the device is lost). Required whenever a
    /// fault context is attached to the engine; without one a surfaced
    /// fault panics rather than being silently dropped.
    pub on_fault: Option<crate::health::OnFault>,
    /// Capacities this particular operation streams through in addition
    /// to the engine's fixed set. A peer engine's fixed caps cover the
    /// destination side; the source device's peer-out link (and the
    /// inter-switch hop, when the endpoints straddle switches) vary per
    /// operation and ride here.
    pub extra_caps: Vec<CapacityId>,
    /// Run this operation on a runtime-allocated stream: skip the
    /// device's default-stream [`SerialGate`] so the copy can proceed
    /// concurrently with the device's other engines. Engine-level FIFO
    /// order within one direction still holds (one stream per engine).
    pub streamed: bool,
}

struct Inner {
    device: u32,
    dir: Direction,
    latency: SimDuration,
    caps: Vec<CapacityId>,
    flownet: SharedFlowNet,
    trace: TraceRecorder,
    /// Default-stream serialization with the device's other engines.
    gate: Option<SerialGate>,
    /// Shared fault arbitration; `None` means the engine never faults.
    fault: Option<FaultCtx>,
    busy: bool,
    queue: VecDeque<DmaOp>,
    completed_ops: u64,
    total_bytes: u64,
}

/// A FIFO DMA engine for one direction of one device. Clone freely.
#[derive(Clone)]
pub struct DmaEngine {
    inner: Rc<RefCell<Inner>>,
}

impl DmaEngine {
    /// Create an engine streaming through `caps` (device link, switch,
    /// host bus) with the given per-operation launch latency.
    pub fn new(
        device: u32,
        dir: Direction,
        latency: SimDuration,
        caps: Vec<CapacityId>,
        flownet: SharedFlowNet,
        trace: TraceRecorder,
    ) -> Self {
        DmaEngine {
            inner: Rc::new(RefCell::new(Inner {
                device,
                dir,
                latency,
                caps,
                flownet,
                trace,
                gate: None,
                fault: None,
                busy: false,
                queue: VecDeque::new(),
                completed_ops: 0,
                total_bytes: 0,
            })),
        }
    }

    /// Attach the run's shared fault context. Every engine of a runtime
    /// must receive a clone of the *same* context so fault decisions and
    /// backoff jitter draw from one run-scoped PRNG.
    pub fn set_fault_ctx(&self, ctx: FaultCtx) {
        self.inner.borrow_mut().fault = Some(ctx);
    }

    /// Identity of the attached fault context, if any. Debug builds
    /// assert every engine of a runtime shares one context (a second
    /// context would mean a second PRNG stream and broken determinism).
    pub fn fault_ctx_ptr(&self) -> Option<usize> {
        self.inner.borrow().fault.as_ref().map(|c| c.ptr_id())
    }

    /// Serialize this engine with the device's other engines through a
    /// shared gate (default-stream semantics).
    pub fn with_gate(self, gate: SerialGate) -> Self {
        self.inner.borrow_mut().gate = Some(gate);
        self
    }

    /// Number of completed operations (for tests/statistics).
    pub fn completed_ops(&self) -> u64 {
        self.inner.borrow().completed_ops
    }

    /// Total bytes moved so far.
    pub fn total_bytes(&self) -> u64 {
        self.inner.borrow().total_bytes
    }

    /// Operations waiting or in flight.
    pub fn backlog(&self) -> usize {
        let inner = self.inner.borrow();
        inner.queue.len() + usize::from(inner.busy)
    }

    /// Enqueue an operation; it starts as soon as the engine frees up.
    pub fn enqueue(&self, sim: &mut Simulator, op: DmaOp) {
        self.inner.borrow_mut().queue.push_back(op);
        self.maybe_start(sim);
    }

    fn maybe_start(&self, sim: &mut Simulator) {
        let (op, gate) = {
            let mut inner = self.inner.borrow_mut();
            if inner.busy {
                return;
            }
            let Some(op) = inner.queue.pop_front() else {
                return;
            };
            inner.busy = true;
            (op, inner.gate.clone())
        };
        let this = self.clone();
        match gate {
            // Streamed ops bypass default-stream serialization: the
            // pipelined overlap engine issues its sub-slice copies on
            // runtime-allocated streams, so they never contend with the
            // device's compute engine for the gate.
            Some(g) if !op.streamed => {
                let g2 = g.clone();
                g.acquire(
                    sim,
                    Box::new(move |sim| this.start_op(sim, op, Some(g2), 0)),
                );
            }
            _ => this.start_op(sim, op, None, 0),
        }
    }

    fn start_op(
        &self,
        sim: &mut Simulator,
        mut op: DmaOp,
        held_gate: Option<SerialGate>,
        attempt: u32,
    ) {
        // Consult the fault context BEFORE the data effect: a faulted
        // attempt must not move any data, or retries/recovery would
        // observe a half-applied copy.
        let fault = self.inner.borrow().fault.clone();
        if let Some(ctx) = fault.as_ref() {
            let (device, dir) = {
                let inner = self.inner.borrow();
                (inner.device, inner.dir)
            };
            let now = sim.now();
            match ctx.attempt(device, now) {
                Attempt::Ok => {}
                Attempt::Transient => {
                    let lane = dir.lane(device);
                    self.inner.borrow().trace.record(
                        lane,
                        SpanKind::Fault,
                        format!("{}: transient", op.label),
                        now,
                        now,
                        0,
                    );
                    if attempt < ctx.retry().max_retries {
                        let delay = ctx.backoff(attempt);
                        self.inner.borrow().trace.record(
                            lane,
                            SpanKind::Retry,
                            format!("{}: retry {}", op.label, attempt + 1),
                            now,
                            now + delay,
                            0,
                        );
                        let this = self.clone();
                        sim.schedule_after(
                            delay,
                            Box::new(move |sim| this.start_op(sim, op, held_gate, attempt + 1)),
                        );
                        return;
                    }
                    self.fail_op(
                        sim,
                        op,
                        held_gate,
                        FaultEvent {
                            device,
                            at: now,
                            kind: FaultEventKind::TransientExhausted {
                                attempts: attempt + 1,
                            },
                        },
                    );
                    return;
                }
                Attempt::Lost => {
                    // Either the device was already lost or the breaker
                    // just tripped; mark_lost is idempotent.
                    ctx.mark_lost(sim, device);
                    let at = sim.now();
                    self.fail_op(
                        sim,
                        op,
                        held_gate,
                        FaultEvent {
                            device,
                            at,
                            kind: FaultEventKind::DeviceLost,
                        },
                    );
                    return;
                }
            }
        }
        // The data effect happens at operation start (eager-effects
        // discipline; dependents only run after on_complete).
        if let Some(effect) = op.effect.take() {
            effect();
        }
        let start_t = sim.now();
        let this = self.clone();
        let latency = self.inner.borrow().latency;
        sim.schedule_after(
            latency,
            Box::new(move |sim| {
                let (flownet, mut caps, device, fault) = {
                    let inner = this.inner.borrow();
                    (
                        inner.flownet.clone(),
                        inner.caps.clone(),
                        inner.device,
                        inner.fault.clone(),
                    )
                };
                caps.extend(std::mem::take(&mut op.extra_caps));
                let this2 = this.clone();
                let bytes = op.bytes;
                // Link degradation inflates the *modeled* bytes (a pure
                // slowdown); the trace keeps the real payload size.
                let factor = fault
                    .map(|c| c.link_factor(device, sim.now()))
                    .unwrap_or(1.0);
                let modeled = if factor > 1.0 {
                    (bytes as f64 * factor).ceil() as u64
                } else {
                    bytes
                };
                let label = std::mem::take(&mut op.label);
                let on_complete = op.on_complete;
                flownet.start_flow(
                    sim,
                    modeled,
                    caps,
                    Box::new(move |sim| {
                        {
                            let mut inner = this2.inner.borrow_mut();
                            let lane = inner.dir.lane(inner.device);
                            let kind = inner.dir.span_kind();
                            inner
                                .trace
                                .record(lane, kind, label, start_t, sim.now(), bytes);
                            inner.busy = false;
                            inner.completed_ops += 1;
                            inner.total_bytes += bytes;
                        }
                        if let Some(g) = held_gate {
                            g.release(sim);
                        }
                        on_complete(sim);
                        this2.maybe_start(sim);
                    }),
                );
            }),
        );
    }

    /// Surface a fatal fault on `op`: free the engine, release the gate,
    /// hand the event to the op's fault handler, and let the queue drain
    /// (queued ops behind a lost device fail through their own handlers).
    fn fail_op(
        &self,
        sim: &mut Simulator,
        mut op: DmaOp,
        held_gate: Option<SerialGate>,
        ev: FaultEvent,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            let lane = inner.dir.lane(inner.device);
            inner.trace.record(
                lane,
                SpanKind::Fault,
                format!("{}: failed", op.label),
                ev.at,
                ev.at,
                0,
            );
            inner.busy = false;
        }
        if let Some(g) = held_gate {
            g.release(sim);
        }
        let on_fault = op
            .on_fault
            .take()
            .unwrap_or_else(|| panic!("fault on '{}' with no fault handler installed", op.label));
        on_fault(sim, ev);
        self.maybe_start(sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spread_trace::Timeline;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn setup(latency_us: u64, bw: f64) -> (Simulator, DmaEngine, TraceRecorder) {
        let trace = TraceRecorder::new();
        let sim = Simulator::new(trace.clone());
        let net = SharedFlowNet::new();
        let link = net.add_capacity("link", bw);
        let eng = DmaEngine::new(
            0,
            Direction::In,
            SimDuration::from_micros(latency_us),
            vec![link],
            net,
            trace.clone(),
        );
        (sim, eng, trace)
    }

    fn op(bytes: u64, done: Rc<RefCell<Vec<f64>>>) -> DmaOp {
        DmaOp {
            bytes,
            label: format!("{bytes}B"),
            effect: None,
            on_complete: Box::new(move |s| done.borrow_mut().push(s.now().as_secs_f64())),
            on_fault: None,
            extra_caps: Vec::new(),
            streamed: false,
        }
    }

    #[test]
    fn single_op_latency_plus_transfer() {
        let (mut sim, eng, _) = setup(10, 1000.0); // 10 us latency, 1000 B/s
        let done = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, op(500, done.clone()));
        sim.run_until_idle();
        let t = done.borrow()[0];
        assert!((t - (10e-6 + 0.5)).abs() < 1e-6, "took {t}");
        assert_eq!(eng.completed_ops(), 1);
        assert_eq!(eng.total_bytes(), 500);
    }

    #[test]
    fn ops_serialize_fifo() {
        let (mut sim, eng, _) = setup(0, 100.0);
        let done = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, op(100, done.clone())); // 1 s
        eng.enqueue(&mut sim, op(200, done.clone())); // 2 s, starts at 1 s
        sim.run_until_idle();
        let d = done.borrow();
        assert!((d[0] - 1.0).abs() < 1e-6);
        assert!((d[1] - 3.0).abs() < 1e-6, "second op waited: {}", d[1]);
    }

    #[test]
    fn per_op_latency_accumulates() {
        // N small ops pay N latencies — the granularity effect the paper
        // blames for the Two Buffers slowdown.
        let (mut sim, eng, _) = setup(100, 1e9);
        let done = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..10 {
            eng.enqueue(&mut sim, op(1, done.clone()));
        }
        sim.run_until_idle();
        let last = *done.borrow().last().unwrap();
        assert!(last >= 10.0 * 100e-6, "ten latencies: {last}");
    }

    #[test]
    fn effects_run_at_start_in_fifo_order() {
        let (mut sim, eng, _) = setup(10, 10.0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let order2 = order.clone();
            eng.enqueue(
                &mut sim,
                DmaOp {
                    bytes: 10,
                    label: String::new(),
                    effect: Some(Box::new(move || order2.borrow_mut().push(i))),
                    on_complete: Box::new(|_| {}),
                    on_fault: None,
                    extra_caps: Vec::new(),
                    streamed: false,
                },
            );
        }
        sim.run_until_idle();
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn trace_spans_recorded() {
        let (mut sim, eng, trace) = setup(0, 100.0);
        let done = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, op(100, done.clone()));
        sim.run_until_idle();
        let tl = Timeline::from_recorder(&trace);
        assert_eq!(tl.len(), 1);
        let s = &tl.spans()[0];
        assert_eq!(s.kind, SpanKind::TransferIn);
        assert_eq!(s.bytes, 100);
        assert_eq!(s.lane, Lane::copy_in(0));
        assert!((s.duration().as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_op_completes() {
        let (mut sim, eng, _) = setup(5, 100.0);
        let done = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, op(0, done.clone()));
        sim.run_until_idle();
        assert_eq!(done.borrow().len(), 1);
        assert_eq!(eng.backlog(), 0);
    }

    fn fault_op(
        bytes: u64,
        done: Rc<RefCell<Vec<f64>>>,
        faults: Rc<RefCell<Vec<FaultEvent>>>,
    ) -> DmaOp {
        let mut op = op(bytes, done);
        op.on_fault = Some(Box::new(move |_, ev| faults.borrow_mut().push(ev)));
        op
    }

    fn ctx_for(
        plan: spread_sim::FaultPlan,
        retry: spread_sim::RetryPolicy,
        breaker: u32,
        trace: &TraceRecorder,
    ) -> FaultCtx {
        FaultCtx::new(&plan, 1, retry, breaker, trace.clone())
    }

    #[test]
    fn transients_are_absorbed_by_retry() {
        let (mut sim, eng, trace) = setup(10, 1000.0);
        let plan =
            spread_sim::FaultPlan::new(3).transient_copies(0, spread_trace::SimTime::ZERO, 2);
        eng.set_fault_ctx(ctx_for(
            plan,
            spread_sim::RetryPolicy::default(),
            100,
            &trace,
        ));
        let done = Rc::new(RefCell::new(Vec::new()));
        let faults = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, fault_op(500, done.clone(), faults.clone()));
        sim.run_until_idle();
        assert_eq!(done.borrow().len(), 1, "op completed after retries");
        assert!(faults.borrow().is_empty());
        assert_eq!(eng.completed_ops(), 1);
        let spans = trace.snapshot();
        let n_fault = spans.iter().filter(|s| s.kind == SpanKind::Fault).count();
        let n_retry = spans.iter().filter(|s| s.kind == SpanKind::Retry).count();
        assert_eq!(n_fault, 2);
        assert_eq!(n_retry, 2);
        // The completion is delayed past the fault-free case by backoff.
        assert!(done.borrow()[0] > 10e-6 + 0.5);
    }

    #[test]
    fn exhausted_retries_surface_the_fault() {
        let (mut sim, eng, trace) = setup(10, 1000.0);
        let plan =
            spread_sim::FaultPlan::new(3).transient_copies(0, spread_trace::SimTime::ZERO, 5);
        eng.set_fault_ctx(ctx_for(plan, spread_sim::RetryPolicy::none(), 100, &trace));
        let done = Rc::new(RefCell::new(Vec::new()));
        let faults = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, fault_op(500, done.clone(), faults.clone()));
        sim.run_until_idle();
        assert!(done.borrow().is_empty());
        let f = faults.borrow();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].device, 0);
        assert_eq!(
            f[0].kind,
            spread_sim::FaultEventKind::TransientExhausted { attempts: 1 }
        );
        assert_eq!(eng.backlog(), 0, "engine freed after the fault");
    }

    #[test]
    fn lost_device_fails_queued_ops_and_frees_the_engine() {
        let (mut sim, eng, trace) = setup(10, 1000.0);
        let ctx = ctx_for(
            spread_sim::FaultPlan::new(0),
            spread_sim::RetryPolicy::default(),
            8,
            &trace,
        );
        eng.set_fault_ctx(ctx.clone());
        ctx.mark_lost(&mut sim, 0);
        let done = Rc::new(RefCell::new(Vec::new()));
        let faults = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, fault_op(100, done.clone(), faults.clone()));
        eng.enqueue(&mut sim, fault_op(200, done.clone(), faults.clone()));
        sim.run_until_idle();
        assert!(done.borrow().is_empty());
        assert_eq!(faults.borrow().len(), 2, "both queued ops failed");
        for ev in faults.borrow().iter() {
            assert_eq!(ev.kind, spread_sim::FaultEventKind::DeviceLost);
        }
        assert_eq!(eng.backlog(), 0);
    }

    #[test]
    fn degraded_link_slows_the_transfer_but_moves_real_bytes() {
        let (mut sim, eng, trace) = setup(0, 100.0);
        let plan = spread_sim::FaultPlan::new(0).degrade_link(
            0,
            spread_trace::SimTime::ZERO,
            spread_trace::SimTime::from_secs_f64(100.0),
            2.0,
        );
        eng.set_fault_ctx(ctx_for(plan, spread_sim::RetryPolicy::default(), 8, &trace));
        let done = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, op(100, done.clone()));
        sim.run_until_idle();
        // 100 B at 100 B/s degraded 2× → 2 s instead of 1 s.
        assert!((done.borrow()[0] - 2.0).abs() < 1e-6);
        assert_eq!(eng.total_bytes(), 100, "accounting keeps real bytes");
        assert_eq!(trace.snapshot()[0].bytes, 100);
    }

    #[test]
    #[should_panic(expected = "no fault handler installed")]
    fn fault_without_handler_panics() {
        let (mut sim, eng, trace) = setup(0, 100.0);
        let ctx = ctx_for(
            spread_sim::FaultPlan::new(0),
            spread_sim::RetryPolicy::default(),
            8,
            &trace,
        );
        eng.set_fault_ctx(ctx.clone());
        ctx.mark_lost(&mut sim, 0);
        let done = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, op(1, done));
        sim.run_until_idle();
    }

    #[test]
    fn peer_direction_records_on_the_peer_lane_and_extra_caps_bind() {
        let trace = TraceRecorder::new();
        let mut sim = Simulator::new(trace.clone());
        let net = SharedFlowNet::new();
        let wide = net.add_capacity("peer-in", 1000.0);
        let narrow = net.add_capacity("peer-out", 100.0);
        let eng = DmaEngine::new(
            0,
            Direction::Peer,
            SimDuration::ZERO,
            vec![wide],
            net,
            trace.clone(),
        );
        let done = Rc::new(RefCell::new(Vec::new()));
        let mut o = op(100, done.clone());
        o.extra_caps = vec![narrow];
        eng.enqueue(&mut sim, o);
        sim.run_until_idle();
        // The per-op extra capacity (100 B/s) is the bottleneck: 1 s,
        // not the engine's fixed 1000 B/s.
        assert!((done.borrow()[0] - 1.0).abs() < 1e-6, "{:?}", done.borrow());
        let s = &trace.snapshot()[0];
        assert_eq!(s.kind, SpanKind::PeerCopy);
        assert_eq!(s.lane, Lane::peer(0));
    }

    #[test]
    fn two_engines_share_a_bus() {
        let trace = TraceRecorder::disabled();
        let mut sim = Simulator::new(trace.clone());
        let net = SharedFlowNet::new();
        let bus = net.add_capacity("bus", 100.0);
        let mk = |dev: u32| {
            let link = net.add_capacity(format!("link{dev}"), 100.0);
            DmaEngine::new(
                dev,
                Direction::In,
                SimDuration::ZERO,
                vec![link, bus],
                net.clone(),
                trace.clone(),
            )
        };
        let (e0, e1) = (mk(0), mk(1));
        let done = Rc::new(RefCell::new(Vec::new()));
        e0.enqueue(&mut sim, op(100, done.clone()));
        e1.enqueue(&mut sim, op(100, done.clone()));
        sim.run_until_idle();
        // Both share the 100 B/s bus → 2 s each instead of 1 s.
        for &t in done.borrow().iter() {
            assert!((t - 2.0).abs() < 1e-6, "contended transfer took {t}");
        }
    }
}
