//! DMA copy engines.
//!
//! Each device has one engine per direction (host→device and
//! device→host), matching real GPUs' dedicated copy engines. An engine is
//! a FIFO: operations on the same engine **serialize** — this is the
//! mechanism behind the paper's Figure 4 finding that "transfers from
//! different buffers did not overlap" on one GPU. Every operation pays a
//! fixed launch latency (one `cudaMemcpy` call) before its bytes stream
//! through the flow network, so mapping a chunk of 12 grids costs 12
//! launch latencies (§VI-B's granularity observation).
//!
//! The *data effect* of an operation (the actual memcpy between host and
//! device `Vec<f64>`s) runs eagerly when the operation starts; the
//! completion callback fires when the modeled transfer finishes. Task
//! ordering upstream guarantees observational equivalence (see
//! `spread-rt`'s race detector).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use spread_sim::{CapacityId, SharedFlowNet, Simulator};
use spread_trace::{Lane, SimDuration, SpanKind, TraceRecorder};

use crate::gate::SerialGate;

/// Transfer direction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Host to device.
    In,
    /// Device to host.
    Out,
}

impl Direction {
    fn lane(self, device: u32) -> Lane {
        match self {
            Direction::In => Lane::copy_in(device),
            Direction::Out => Lane::copy_out(device),
        }
    }

    fn span_kind(self) -> SpanKind {
        match self {
            Direction::In => SpanKind::TransferIn,
            Direction::Out => SpanKind::TransferOut,
        }
    }
}

/// One queued copy operation.
pub struct DmaOp {
    /// Bytes to move.
    pub bytes: u64,
    /// Label recorded in the trace.
    pub label: String,
    /// The data effect (the real memcpy); runs when the op starts.
    pub effect: Option<Box<dyn FnOnce()>>,
    /// Fires when the modeled transfer completes.
    pub on_complete: Box<dyn FnOnce(&mut Simulator)>,
}

struct Inner {
    device: u32,
    dir: Direction,
    latency: SimDuration,
    caps: Vec<CapacityId>,
    flownet: SharedFlowNet,
    trace: TraceRecorder,
    /// Default-stream serialization with the device's other engines.
    gate: Option<SerialGate>,
    busy: bool,
    queue: VecDeque<DmaOp>,
    completed_ops: u64,
    total_bytes: u64,
}

/// A FIFO DMA engine for one direction of one device. Clone freely.
#[derive(Clone)]
pub struct DmaEngine {
    inner: Rc<RefCell<Inner>>,
}

impl DmaEngine {
    /// Create an engine streaming through `caps` (device link, switch,
    /// host bus) with the given per-operation launch latency.
    pub fn new(
        device: u32,
        dir: Direction,
        latency: SimDuration,
        caps: Vec<CapacityId>,
        flownet: SharedFlowNet,
        trace: TraceRecorder,
    ) -> Self {
        DmaEngine {
            inner: Rc::new(RefCell::new(Inner {
                device,
                dir,
                latency,
                caps,
                flownet,
                trace,
                gate: None,
                busy: false,
                queue: VecDeque::new(),
                completed_ops: 0,
                total_bytes: 0,
            })),
        }
    }

    /// Serialize this engine with the device's other engines through a
    /// shared gate (default-stream semantics).
    pub fn with_gate(self, gate: SerialGate) -> Self {
        self.inner.borrow_mut().gate = Some(gate);
        self
    }

    /// Number of completed operations (for tests/statistics).
    pub fn completed_ops(&self) -> u64 {
        self.inner.borrow().completed_ops
    }

    /// Total bytes moved so far.
    pub fn total_bytes(&self) -> u64 {
        self.inner.borrow().total_bytes
    }

    /// Operations waiting or in flight.
    pub fn backlog(&self) -> usize {
        let inner = self.inner.borrow();
        inner.queue.len() + usize::from(inner.busy)
    }

    /// Enqueue an operation; it starts as soon as the engine frees up.
    pub fn enqueue(&self, sim: &mut Simulator, op: DmaOp) {
        self.inner.borrow_mut().queue.push_back(op);
        self.maybe_start(sim);
    }

    fn maybe_start(&self, sim: &mut Simulator) {
        let (op, gate) = {
            let mut inner = self.inner.borrow_mut();
            if inner.busy {
                return;
            }
            let Some(op) = inner.queue.pop_front() else {
                return;
            };
            inner.busy = true;
            (op, inner.gate.clone())
        };
        let this = self.clone();
        match gate {
            None => this.start_op(sim, op, None),
            Some(g) => {
                let g2 = g.clone();
                g.acquire(sim, Box::new(move |sim| this.start_op(sim, op, Some(g2))));
            }
        }
    }

    fn start_op(&self, sim: &mut Simulator, mut op: DmaOp, held_gate: Option<SerialGate>) {
        // The data effect happens at operation start (eager-effects
        // discipline; dependents only run after on_complete).
        if let Some(effect) = op.effect.take() {
            effect();
        }
        let start_t = sim.now();
        let this = self.clone();
        let latency = self.inner.borrow().latency;
        sim.schedule_after(
            latency,
            Box::new(move |sim| {
                let (flownet, caps) = {
                    let inner = this.inner.borrow();
                    (inner.flownet.clone(), inner.caps.clone())
                };
                let this2 = this.clone();
                let bytes = op.bytes;
                let label = std::mem::take(&mut op.label);
                let on_complete = op.on_complete;
                flownet.start_flow(
                    sim,
                    bytes,
                    caps,
                    Box::new(move |sim| {
                        {
                            let mut inner = this2.inner.borrow_mut();
                            let lane = inner.dir.lane(inner.device);
                            let kind = inner.dir.span_kind();
                            inner
                                .trace
                                .record(lane, kind, label, start_t, sim.now(), bytes);
                            inner.busy = false;
                            inner.completed_ops += 1;
                            inner.total_bytes += bytes;
                        }
                        if let Some(g) = held_gate {
                            g.release(sim);
                        }
                        on_complete(sim);
                        this2.maybe_start(sim);
                    }),
                );
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spread_trace::Timeline;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn setup(latency_us: u64, bw: f64) -> (Simulator, DmaEngine, TraceRecorder) {
        let trace = TraceRecorder::new();
        let sim = Simulator::new(trace.clone());
        let net = SharedFlowNet::new();
        let link = net.add_capacity("link", bw);
        let eng = DmaEngine::new(
            0,
            Direction::In,
            SimDuration::from_micros(latency_us),
            vec![link],
            net,
            trace.clone(),
        );
        (sim, eng, trace)
    }

    fn op(bytes: u64, done: Rc<RefCell<Vec<f64>>>) -> DmaOp {
        DmaOp {
            bytes,
            label: format!("{bytes}B"),
            effect: None,
            on_complete: Box::new(move |s| done.borrow_mut().push(s.now().as_secs_f64())),
        }
    }

    #[test]
    fn single_op_latency_plus_transfer() {
        let (mut sim, eng, _) = setup(10, 1000.0); // 10 us latency, 1000 B/s
        let done = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, op(500, done.clone()));
        sim.run_until_idle();
        let t = done.borrow()[0];
        assert!((t - (10e-6 + 0.5)).abs() < 1e-6, "took {t}");
        assert_eq!(eng.completed_ops(), 1);
        assert_eq!(eng.total_bytes(), 500);
    }

    #[test]
    fn ops_serialize_fifo() {
        let (mut sim, eng, _) = setup(0, 100.0);
        let done = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, op(100, done.clone())); // 1 s
        eng.enqueue(&mut sim, op(200, done.clone())); // 2 s, starts at 1 s
        sim.run_until_idle();
        let d = done.borrow();
        assert!((d[0] - 1.0).abs() < 1e-6);
        assert!((d[1] - 3.0).abs() < 1e-6, "second op waited: {}", d[1]);
    }

    #[test]
    fn per_op_latency_accumulates() {
        // N small ops pay N latencies — the granularity effect the paper
        // blames for the Two Buffers slowdown.
        let (mut sim, eng, _) = setup(100, 1e9);
        let done = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..10 {
            eng.enqueue(&mut sim, op(1, done.clone()));
        }
        sim.run_until_idle();
        let last = *done.borrow().last().unwrap();
        assert!(last >= 10.0 * 100e-6, "ten latencies: {last}");
    }

    #[test]
    fn effects_run_at_start_in_fifo_order() {
        let (mut sim, eng, _) = setup(10, 10.0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let order2 = order.clone();
            eng.enqueue(
                &mut sim,
                DmaOp {
                    bytes: 10,
                    label: String::new(),
                    effect: Some(Box::new(move || order2.borrow_mut().push(i))),
                    on_complete: Box::new(|_| {}),
                },
            );
        }
        sim.run_until_idle();
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn trace_spans_recorded() {
        let (mut sim, eng, trace) = setup(0, 100.0);
        let done = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, op(100, done.clone()));
        sim.run_until_idle();
        let tl = Timeline::from_recorder(&trace);
        assert_eq!(tl.len(), 1);
        let s = &tl.spans()[0];
        assert_eq!(s.kind, SpanKind::TransferIn);
        assert_eq!(s.bytes, 100);
        assert_eq!(s.lane, Lane::copy_in(0));
        assert!((s.duration().as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_op_completes() {
        let (mut sim, eng, _) = setup(5, 100.0);
        let done = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, op(0, done.clone()));
        sim.run_until_idle();
        assert_eq!(done.borrow().len(), 1);
        assert_eq!(eng.backlog(), 0);
    }

    #[test]
    fn two_engines_share_a_bus() {
        let trace = TraceRecorder::disabled();
        let mut sim = Simulator::new(trace.clone());
        let net = SharedFlowNet::new();
        let bus = net.add_capacity("bus", 100.0);
        let mk = |dev: u32| {
            let link = net.add_capacity(format!("link{dev}"), 100.0);
            DmaEngine::new(
                dev,
                Direction::In,
                SimDuration::ZERO,
                vec![link, bus],
                net.clone(),
                trace.clone(),
            )
        };
        let (e0, e1) = (mk(0), mk(1));
        let done = Rc::new(RefCell::new(Vec::new()));
        e0.enqueue(&mut sim, op(100, done.clone()));
        e1.enqueue(&mut sim, op(100, done.clone()));
        sim.run_until_idle();
        // Both share the 100 B/s bus → 2 s each instead of 1 s.
        for &t in done.borrow().iter() {
            assert!((t - 2.0).abs() < 1e-6, "contended transfer took {t}");
        }
    }
}
