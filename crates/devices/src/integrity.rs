//! In-repo CRC32C (Castagnoli) digest engine for end-to-end transfer
//! integrity.
//!
//! Every outbound payload (a staged D2H snapshot, a peer-copy read) is
//! digested at its *source* — the bytes the device's DMA engine actually
//! streamed — and the digest travels with the payload. The runtime
//! re-digests at the two trust boundaries (staged-commit drain, peer
//! receive): a mismatch means the bytes rotted somewhere in between, in
//! flight ([`SilentFlip`](spread_sim::PlannedFault::SilentFlip)) or at
//! rest ([`MemoryScribble`](spread_sim::PlannedFault::MemoryScribble)).
//!
//! CRC32C is the checksum real interconnects and NVMe/Ethernet stacks
//! use for exactly this job: cheap, table-driven, and guaranteed to
//! catch any single bit flip (its whole design point). Implemented
//! in-repo — software, byte-at-a-time, one 256-entry table — because the
//! simulator needs determinism and zero dependencies, not throughput.

/// The CRC32C (Castagnoli) generator polynomial, reflected.
const POLY: u32 = 0x82F6_3B78;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32C of a byte slice (initial value all-ones, final xor all-ones —
/// the standard iSCSI/RFC 3720 convention).
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// CRC32C of an `f64` payload, digesting the IEEE-754 bit patterns in
/// little-endian byte order. Bit-exact: two payloads digest equal iff
/// their `to_bits()` images are identical (`0.0` vs `-0.0` differ; two
/// NaNs with the same bits agree).
pub fn digest_f64(payload: &[f64]) -> u32 {
    let mut crc = u32::MAX;
    for v in payload {
        for b in v.to_bits().to_le_bytes() {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_test_vectors() {
        // RFC 3720 / iSCSI check values.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn digest_f64_matches_byte_digest() {
        let payload = [1.0, -2.5, 0.0, f64::MAX, 1e-300];
        let mut bytes = Vec::new();
        for v in &payload {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        assert_eq!(digest_f64(&payload), crc32c(&bytes));
    }

    #[test]
    fn any_single_bit_flip_changes_the_digest() {
        let payload: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        let clean = digest_f64(&payload);
        for i in 0..payload.len() {
            for bit in [0, 1, 31, 52, 63] {
                let mut flipped = payload.clone();
                flipped[i] = f64::from_bits(flipped[i].to_bits() ^ (1u64 << bit));
                assert_ne!(digest_f64(&flipped), clean, "flip at [{i}] bit {bit}");
            }
        }
    }

    #[test]
    fn digest_is_bit_exact_not_value_based() {
        assert_ne!(digest_f64(&[0.0]), digest_f64(&[-0.0]));
        let nan = f64::from_bits(0x7FF8_0000_0000_0001);
        assert_eq!(digest_f64(&[nan]), digest_f64(&[nan]));
        assert_eq!(digest_f64(&[]), 0);
    }
}
