//! The kernel execution engine.
//!
//! One FIFO compute queue per device (the common single-stream model:
//! kernels on the same device serialize; kernels on different devices run
//! concurrently in virtual time — which is exactly how the paper gets its
//! near-linear kernel scaling across GPUs).
//!
//! A queued kernel carries its *body* — a closure that really executes
//! the computation over the device's buffers — and the parameters of the
//! cost model that determine its virtual duration. The body runs eagerly
//! at kernel start (see the eager-effects discipline in `spread-rt`).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use spread_sim::fault::{FaultEvent, FaultEventKind};
use spread_sim::Simulator;
use spread_trace::{Lane, SpanKind, TraceRecorder};

use crate::gate::SerialGate;
use crate::health::FaultCtx;
use crate::spec::ComputeModel;

/// One queued kernel launch.
pub struct KernelOp {
    /// Caller-chosen identity for cancellation (the runtime uses the
    /// kernel task id; 0 = anonymous, never cancellable).
    pub tag: u64,
    /// Kernel name (trace label).
    pub name: String,
    /// Number of loop iterations in this launch.
    pub iters: u64,
    /// Modeled single-lane cost of one iteration, in nanoseconds.
    pub work_per_iter_ns: f64,
    /// Requested `num_teams`.
    pub teams: u32,
    /// Requested threads per team.
    pub threads_per_team: u32,
    /// The real computation; runs when the kernel starts.
    pub body: Option<Box<dyn FnOnce()>>,
    /// Fires when the modeled execution completes.
    pub on_complete: Box<dyn FnOnce(&mut Simulator)>,
    /// Fires instead of `on_complete` when the kernel cannot run because
    /// its device is lost. Required whenever a fault context is attached
    /// to the engine; without one a surfaced fault panics.
    pub on_fault: Option<crate::health::OnFault>,
    /// Launch on a runtime-allocated stream: skip the device's
    /// default-stream [`SerialGate`] so the kernel can run concurrently
    /// with the device's copy engines. Kernels on the compute queue
    /// still serialize among themselves (one queue per device).
    pub streamed: bool,
}

struct Inner {
    device: u32,
    model: ComputeModel,
    trace: TraceRecorder,
    /// Default-stream serialization with the device's copy engines.
    gate: Option<SerialGate>,
    /// Shared fault arbitration; `None` means the engine never faults.
    fault: Option<FaultCtx>,
    busy: bool,
    queue: VecDeque<KernelOp>,
    completed: u64,
    /// The running kernel, for cancellation:
    /// `(tag, label, start, held gate)`.
    running: Option<(u64, String, spread_sim::SimTime, Option<SerialGate>)>,
    /// Bumped by every cancel; a completion closure whose captured epoch
    /// is stale belongs to a cancelled kernel and must do nothing.
    epoch: u64,
}

/// FIFO kernel queue for one device. Clone freely.
#[derive(Clone)]
pub struct ComputeEngine {
    inner: Rc<RefCell<Inner>>,
}

impl ComputeEngine {
    /// An engine for `device` with the given cost model.
    pub fn new(device: u32, model: ComputeModel, trace: TraceRecorder) -> Self {
        ComputeEngine {
            inner: Rc::new(RefCell::new(Inner {
                device,
                model,
                trace,
                gate: None,
                fault: None,
                busy: false,
                queue: VecDeque::new(),
                completed: 0,
                running: None,
                epoch: 0,
            })),
        }
    }

    /// Attach the run's shared fault context (the same clone every other
    /// engine of the runtime holds).
    pub fn set_fault_ctx(&self, ctx: FaultCtx) {
        self.inner.borrow_mut().fault = Some(ctx);
    }

    /// Identity of the attached fault context, if any. Debug builds
    /// assert every engine of a runtime shares one context (a second
    /// context would mean a second PRNG stream and broken determinism).
    pub fn fault_ctx_ptr(&self) -> Option<usize> {
        self.inner.borrow().fault.as_ref().map(|c| c.ptr_id())
    }

    /// Serialize this engine with the device's copy engines through a
    /// shared gate (default-stream semantics).
    pub fn with_gate(self, gate: SerialGate) -> Self {
        self.inner.borrow_mut().gate = Some(gate);
        self
    }

    /// Kernels completed so far.
    pub fn completed(&self) -> u64 {
        self.inner.borrow().completed
    }

    /// Kernels waiting or running.
    pub fn backlog(&self) -> usize {
        let inner = self.inner.borrow();
        inner.queue.len() + usize::from(inner.busy)
    }

    /// Enqueue a kernel; it launches when the engine frees up.
    pub fn enqueue(&self, sim: &mut Simulator, op: KernelOp) {
        self.inner.borrow_mut().queue.push_back(op);
        self.maybe_start(sim);
    }

    fn maybe_start(&self, sim: &mut Simulator) {
        let (op, gate) = {
            let mut inner = self.inner.borrow_mut();
            if inner.busy {
                return;
            }
            let Some(op) = inner.queue.pop_front() else {
                return;
            };
            inner.busy = true;
            (op, inner.gate.clone())
        };
        let this = self.clone();
        match gate {
            // Streamed kernels bypass default-stream serialization so
            // the overlap engine can run copy-in/kernel/copy-out of
            // different pipeline stages concurrently on one device.
            Some(g) if !op.streamed => {
                let g2 = g.clone();
                g.acquire(sim, Box::new(move |sim| this.start_op(sim, op, Some(g2))));
            }
            _ => this.start_op(sim, op, None),
        }
    }

    /// Cancel the *running* kernel if its tag matches: the modeled
    /// remainder of its duration is abandoned (the body already ran at
    /// start, so the device bytes are complete and correct), a truncated
    /// span marks the cancellation, and the kernel's `on_complete` never
    /// fires — the caller owns completing whatever task was waiting on
    /// it. Queued, not-yet-started kernels are deliberately left alone
    /// (their bodies have not run; cancelling them would lose work).
    /// Returns whether a running kernel was cancelled.
    pub fn cancel_running(&self, sim: &mut Simulator, tag: u64) -> bool {
        let gate = {
            let mut inner = self.inner.borrow_mut();
            match &inner.running {
                Some((t, ..)) if *t == tag && tag != 0 => {}
                _ => return false,
            }
            let (_, label, start, gate) = inner.running.take().unwrap();
            inner.epoch += 1;
            inner.busy = false;
            let now = sim.now();
            let lane = Lane::compute(inner.device);
            inner.trace.record(
                lane,
                SpanKind::Kernel,
                format!("{label}: cancelled"),
                start,
                now,
                0,
            );
            gate
        };
        if let Some(g) = gate {
            g.release(sim);
        }
        self.maybe_start(sim);
        true
    }

    fn start_op(&self, sim: &mut Simulator, mut op: KernelOp, held_gate: Option<SerialGate>) {
        // A kernel on a lost device never launches; check BEFORE the body
        // so no computation happens on a dead device.
        let fault = self.inner.borrow().fault.clone();
        let device = self.inner.borrow().device;
        if let Some(ctx) = &fault {
            if ctx.is_lost(device) {
                let at = sim.now();
                {
                    let mut inner = self.inner.borrow_mut();
                    let lane = Lane::compute(inner.device);
                    inner.trace.record(
                        lane,
                        SpanKind::Fault,
                        format!("{}: failed", op.name),
                        at,
                        at,
                        0,
                    );
                    inner.busy = false;
                }
                if let Some(g) = held_gate {
                    g.release(sim);
                }
                let on_fault = op.on_fault.take().unwrap_or_else(|| {
                    panic!(
                        "fault on kernel '{}' with no fault handler installed",
                        op.name
                    )
                });
                on_fault(
                    sim,
                    FaultEvent {
                        device,
                        at,
                        kind: FaultEventKind::DeviceLost,
                    },
                );
                self.maybe_start(sim);
                return;
            }
        }
        if let Some(body) = op.body.take() {
            body();
        }
        let start_t = sim.now();
        // A compute-slowdown window stretches the modeled duration only;
        // the body above already ran, so results are unaffected — exactly
        // the LinkDegrade discipline, on the compute side.
        let factor = fault
            .as_ref()
            .map(|c| c.compute_factor(device, start_t))
            .unwrap_or(1.0);
        let duration = {
            let inner = self.inner.borrow();
            inner.model.kernel_duration(
                op.iters,
                op.work_per_iter_ns,
                op.teams,
                op.threads_per_team,
            )
        } * factor;
        let this = self.clone();
        let name = std::mem::take(&mut op.name);
        let on_complete = op.on_complete;
        let epoch = {
            let mut inner = self.inner.borrow_mut();
            inner.running = Some((op.tag, name.clone(), start_t, held_gate.clone()));
            inner.epoch
        };
        sim.schedule_after(
            duration,
            Box::new(move |sim| {
                {
                    let mut inner = this.inner.borrow_mut();
                    if inner.epoch != epoch {
                        // Cancelled while in flight: the canceller
                        // already released the gate, freed the engine
                        // and restarted the queue.
                        return;
                    }
                    inner.running = None;
                    let lane = Lane::compute(inner.device);
                    inner
                        .trace
                        .record(lane, SpanKind::Kernel, name, start_t, sim.now(), 0);
                    inner.busy = false;
                    inner.completed += 1;
                }
                if let Some(g) = held_gate {
                    g.release(sim);
                }
                on_complete(sim);
                this.maybe_start(sim);
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spread_trace::{SimDuration, Timeline};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn engine(max_par: u32) -> (Simulator, ComputeEngine, TraceRecorder) {
        let trace = TraceRecorder::new();
        let sim = Simulator::new(trace.clone());
        let model = ComputeModel {
            launch_latency: SimDuration::from_nanos(100),
            max_parallelism: max_par,
            time_scale: 1.0,
        };
        let eng = ComputeEngine::new(3, model, trace.clone());
        (sim, eng, trace)
    }

    fn kernel(name: &str, iters: u64, done: Rc<RefCell<Vec<(String, u64)>>>) -> KernelOp {
        let n = name.to_string();
        KernelOp {
            tag: 0,
            name: name.to_string(),
            iters,
            work_per_iter_ns: 10.0,
            teams: 1,
            threads_per_team: 1,
            body: None,
            on_complete: Box::new(move |s| {
                done.borrow_mut().push((n, s.now().as_nanos()));
            }),
            on_fault: None,
            streamed: false,
        }
    }

    #[test]
    fn duration_from_model() {
        let (mut sim, eng, _) = engine(1);
        let done = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, kernel("k", 50, done.clone()));
        sim.run_until_idle();
        // 100 ns launch + 50 iters * 10 ns = 600 ns.
        assert_eq!(done.borrow()[0].1, 600);
    }

    #[test]
    fn kernels_serialize_on_one_device() {
        let (mut sim, eng, _) = engine(1);
        let done = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, kernel("a", 50, done.clone()));
        eng.enqueue(&mut sim, kernel("b", 50, done.clone()));
        sim.run_until_idle();
        let d = done.borrow();
        assert_eq!(d[0], ("a".to_string(), 600));
        assert_eq!(d[1], ("b".to_string(), 1200));
        assert_eq!(eng.completed(), 2);
    }

    #[test]
    fn bodies_execute_for_real() {
        let (mut sim, eng, _) = engine(4);
        let data = Rc::new(RefCell::new(vec![0.0f64; 8]));
        let d2 = data.clone();
        eng.enqueue(
            &mut sim,
            KernelOp {
                tag: 0,
                name: "fill".into(),
                iters: 8,
                work_per_iter_ns: 1.0,
                teams: 1,
                threads_per_team: 4,
                body: Some(Box::new(move || {
                    for (i, v) in d2.borrow_mut().iter_mut().enumerate() {
                        *v = i as f64 * 2.0;
                    }
                })),
                on_complete: Box::new(|_| {}),
                on_fault: None,
                streamed: false,
            },
        );
        sim.run_until_idle();
        assert_eq!(data.borrow()[3], 6.0);
    }

    #[test]
    fn trace_records_kernel_spans() {
        let (mut sim, eng, trace) = engine(1);
        let done = Rc::new(RefCell::new(Vec::new()));
        eng.enqueue(&mut sim, kernel("forces", 10, done.clone()));
        sim.run_until_idle();
        let tl = Timeline::from_recorder(&trace);
        assert_eq!(tl.len(), 1);
        let s = &tl.spans()[0];
        assert_eq!(s.kind, SpanKind::Kernel);
        assert_eq!(s.label, "forces");
        assert_eq!(s.lane, Lane::compute(3));
        assert_eq!(s.duration().as_nanos(), 200);
    }

    #[test]
    fn kernel_on_lost_device_faults_without_running_its_body() {
        let (mut sim, eng, trace) = engine(1);
        let ctx = crate::health::FaultCtx::new(
            &spread_sim::FaultPlan::new(0),
            4,
            spread_sim::RetryPolicy::default(),
            8,
            trace.clone(),
        );
        eng.set_fault_ctx(ctx.clone());
        ctx.mark_lost(&mut sim, 3);
        let ran = Rc::new(RefCell::new(false));
        let ran2 = ran.clone();
        let faults = Rc::new(RefCell::new(Vec::new()));
        let f2 = faults.clone();
        eng.enqueue(
            &mut sim,
            KernelOp {
                tag: 0,
                name: "dead".into(),
                iters: 10,
                work_per_iter_ns: 1.0,
                teams: 1,
                threads_per_team: 1,
                body: Some(Box::new(move || *ran2.borrow_mut() = true)),
                on_complete: Box::new(|_| panic!("must not complete")),
                on_fault: Some(Box::new(move |_, ev| f2.borrow_mut().push(ev))),
                streamed: false,
            },
        );
        sim.run_until_idle();
        assert!(!*ran.borrow(), "body must not run on a lost device");
        assert_eq!(faults.borrow().len(), 1);
        assert_eq!(faults.borrow()[0].device, 3);
        assert_eq!(eng.backlog(), 0);
        assert_eq!(eng.completed(), 0);
    }

    #[test]
    fn slowdown_window_stretches_duration_not_results() {
        let (mut sim, eng, trace) = engine(1);
        let ctx = crate::health::FaultCtx::new(
            &spread_sim::FaultPlan::new(0).slow_compute(
                3,
                spread_sim::SimTime::ZERO,
                spread_sim::SimTime::from_nanos(700),
                8.0,
            ),
            4,
            spread_sim::RetryPolicy::default(),
            8,
            trace.clone(),
        );
        eng.set_fault_ctx(ctx);
        let done = Rc::new(RefCell::new(Vec::new()));
        let data = Rc::new(RefCell::new(0.0f64));
        let d2 = data.clone();
        let mut op = kernel("slow", 50, done.clone());
        op.body = Some(Box::new(move || *d2.borrow_mut() = 42.0));
        eng.enqueue(&mut sim, op);
        // A second kernel launching after the window runs at full speed.
        eng.enqueue(&mut sim, kernel("fast", 50, done.clone()));
        sim.run_until_idle();
        let d = done.borrow();
        // 8 × (100 launch + 50·10) = 4800 ns; results intact regardless.
        assert_eq!(d[0], ("slow".to_string(), 4800));
        assert_eq!(*data.borrow(), 42.0);
        // Second kernel starts at 4800, outside the window: +600 ns.
        assert_eq!(d[1], ("fast".to_string(), 5400));
    }

    #[test]
    fn cancel_running_frees_engine_and_skips_on_complete() {
        let (mut sim, eng, trace) = engine(1);
        let done = Rc::new(RefCell::new(Vec::new()));
        let data = Rc::new(RefCell::new(0.0f64));
        let d2 = data.clone();
        let mut victim = kernel("victim", 1000, done.clone());
        victim.tag = 7;
        victim.body = Some(Box::new(move || *d2.borrow_mut() = 1.0));
        victim.on_complete = Box::new(|_| panic!("cancelled kernel must not complete"));
        eng.enqueue(&mut sim, victim);
        eng.enqueue(&mut sim, kernel("next", 50, done.clone()));
        // The victim started eagerly at enqueue (its body already ran);
        // cancel it before its modeled completion fires.
        assert_eq!(*data.borrow(), 1.0);
        assert!(!eng.cancel_running(&mut sim, 99), "wrong tag must miss");
        assert!(!eng.cancel_running(&mut sim, 0), "tag 0 is anonymous");
        assert!(eng.cancel_running(&mut sim, 7));
        assert!(!eng.cancel_running(&mut sim, 7), "already cancelled");
        sim.run_until_idle();
        // The body's effects survive; the queued kernel ran next and the
        // engine is free again.
        assert_eq!(*data.borrow(), 1.0);
        assert_eq!(done.borrow().len(), 1);
        assert_eq!(done.borrow()[0].0, "next");
        assert_eq!(eng.backlog(), 0);
        assert_eq!(eng.completed(), 1);
        // A truncated span marks the cancellation.
        let tl = Timeline::from_recorder(&trace);
        assert!(tl
            .spans()
            .iter()
            .any(|s| s.label == "victim: cancelled" && s.kind == SpanKind::Kernel));
    }

    #[test]
    fn parallelism_shortens_kernels_until_saturation() {
        let (mut sim, eng, _) = engine(8);
        let done = Rc::new(RefCell::new(Vec::new()));
        let mut op = kernel("wide", 80, done.clone());
        op.threads_per_team = 8;
        eng.enqueue(&mut sim, op);
        sim.run_until_idle();
        // 100 + 80*10/8 = 200 ns.
        assert_eq!(done.borrow()[0].1, 200);
    }
}
