//! The differential cache-parity suite: for every fuzz mode, generated
//! programs run twice — cold planner (launch-plan cache disabled) vs
//! warm cache (enabled) — and every observable must be bit-identical:
//! final arrays, reduction values, `RtError`s, the degradation / rescue
//! / integrity / overlap / peer ledgers, adaptive profiles, mapping
//! snapshots, and the merged span timeline byte for byte. Each sweep
//! also asserts the warm leg actually served hits (a parity proof over
//! a cache that never hits would prove nothing).

use spread_check::{cache_parity, CheckConfig};

const PROGRAMS: usize = 50;

fn sweep(cfg: &CheckConfig, expect_hits: bool) {
    let report = cache_parity(1, PROGRAMS, cfg);
    for f in &report.failures {
        eprintln!("FAIL seed {}: {}", f.seed, f.failure);
    }
    assert!(
        report.failures.is_empty(),
        "{} of {} program(s) diverged between cold planner and warm cache",
        report.failures.len(),
        report.programs
    );
    if expect_hits {
        assert!(
            report.hits > 0,
            "warm legs never hit the cache ({} misses, {} invalidations) — \
             the parity sweep proved nothing",
            report.misses,
            report.invalidations
        );
    }
}

#[test]
fn parity_default_mode() {
    sweep(&CheckConfig::default(), true);
}

#[test]
fn parity_faults_mode() {
    let cfg = CheckConfig {
        faults: true,
        ..CheckConfig::default()
    };
    sweep(&cfg, true);
}

#[test]
fn parity_pressure_mode() {
    let cfg = CheckConfig {
        pressure: true,
        ..CheckConfig::default()
    };
    sweep(&cfg, true);
}

#[test]
fn parity_auto_mode() {
    // Auto constructs re-resolve their weights per launch and bump the
    // topology epoch after every profile record, so the cache may
    // legitimately never serve a hit here — the sweep still demands
    // bit-identical observables, which is the point.
    let cfg = CheckConfig {
        auto: true,
        ..CheckConfig::default()
    };
    sweep(&cfg, false);
}

#[test]
fn parity_peer_mode() {
    let cfg = CheckConfig {
        peer: true,
        ..CheckConfig::default()
    };
    sweep(&cfg, true);
}

#[test]
fn parity_stragglers_mode() {
    let cfg = CheckConfig {
        stragglers: true,
        ..CheckConfig::default()
    };
    sweep(&cfg, true);
}

#[test]
fn parity_integrity_mode() {
    let cfg = CheckConfig {
        integrity: true,
        ..CheckConfig::default()
    };
    sweep(&cfg, true);
}

#[test]
fn parity_overlap_mode() {
    let cfg = CheckConfig {
        overlap: true,
        ..CheckConfig::default()
    };
    sweep(&cfg, true);
}
