//! The seeded program generator.
//!
//! `gen_program(seed)` derives a [`Program`] from a single `u64` — the
//! same seed always yields the same program, so every fuzzer failure is
//! reproducible from its printed seed alone
//! (`cargo run -p spread-check --bin replay -- <seed>`).
//!
//! Invariants the generator maintains (and `mod tests` checks):
//!
//! * statements inside one phase touch pairwise disjoint arrays, so
//!   `nowait` statements commute and the program is race-free;
//! * `Stencil3` uses only static schedules satisfying the §V-B gap rule
//!   `(n_dev − 1) · chunk ≥ 2` (one device ⇒ one chunk);
//! * raw (possibly illegal / unbalanced) statements appear only in the
//!   final phase, each on a single device with a single chunk, so the
//!   first error is the same under every legal interleaving.

use spread_core::reduction::ReduceOp;
use spread_core::{PressurePolicy, StragglerPolicy};
use spread_prng::Prng;

use crate::ast::{
    BadKind, FaultMode, FaultSpec, IntegritySpec, KernelOp, OverlapSpec, PressureSpec, Program,
    Sched, Stmt, StragglerSpec,
};
use spread_core::IntegrityMode;

const CONSTS: [f64; 6] = [-2.0, -1.0, 0.5, 1.0, 2.0, 3.0];

fn gen_devices(r: &mut Prng, n_devices: usize) -> Vec<u32> {
    let k = r.range(1, n_devices + 1);
    let mut all: Vec<u32> = (0..n_devices as u32).collect();
    r.shuffle(&mut all);
    all.truncate(k);
    all
}

/// `no_dynamic` is set for faulted programs: `dynamic` is illegal under
/// `spread_resilience(redistribute)`, and under fail-stop its chunk
/// placement depends on the interleaving, so "does the lost device get
/// work" would not be a function of the program alone.
fn gen_sched(r: &mut Prng, n: usize, k: usize, no_dynamic: bool) -> Sched {
    match r.below(if no_dynamic { 2 } else { 3 }) {
        0 => Sched::Static {
            chunk: r.range(1, n + 1),
        },
        1 => Sched::Weighted {
            round: r.range(k.max(2), n + 1),
            weights: (0..k).map(|_| r.range(1, 5) as u32).collect(),
        },
        _ => Sched::Dynamic {
            chunk: r.range(1, n / 2 + 2),
        },
    }
}

/// Widen a stencil chunk until the §V-B gap rule holds for `k` devices.
fn stencil_chunk(r: &mut Prng, n: usize, k: usize) -> usize {
    let chunk = r.range(1, n / 2 + 2);
    match k {
        1 => n, // single chunk covers the whole loop
        2 => chunk.max(2),
        _ => chunk,
    }
}

fn gen_stmt(
    r: &mut Prng,
    avail: &mut Vec<usize>,
    n: usize,
    n_devices: usize,
    faulted: bool,
) -> Stmt {
    let devices = gen_devices(r, n_devices);
    let k = devices.len();
    let roll = r.below(100);
    let two = avail.len() >= 2;
    if roll < 35 || (roll < 65 && !two) {
        // In-place elementwise op: any schedule, any chunking.
        let a = avail.pop().expect("caller checks avail");
        let c = *r.pick(&CONSTS);
        let op = if r.chance(0.5) {
            KernelOp::AddConst { a, c }
        } else {
            KernelOp::Scale { a, c }
        };
        Stmt::Spread {
            sched: gen_sched(r, n, k, faulted),
            nowait: r.chance(0.5),
            devices,
            op,
        }
    } else if roll < 50 {
        let x = avail.pop().unwrap();
        let y = avail.pop().unwrap();
        Stmt::Spread {
            sched: gen_sched(r, n, k, faulted),
            nowait: r.chance(0.5),
            devices,
            op: KernelOp::Saxpy {
                x,
                y,
                alpha: *r.pick(&CONSTS),
            },
        }
    } else if roll < 65 {
        let src = avail.pop().unwrap();
        let dst = avail.pop().unwrap();
        Stmt::Spread {
            sched: Sched::Static {
                chunk: stencil_chunk(r, n, k),
            },
            nowait: r.chance(0.5),
            devices,
            op: KernelOp::Stencil3 { src, dst },
        }
    } else if roll < 80 && two {
        let a = avail.pop().unwrap();
        let partials = avail.pop().unwrap();
        Stmt::Reduce {
            sched: gen_sched(r, n, k, faulted),
            devices,
            a,
            partials,
            alpha: *r.pick(&CONSTS),
            op: *r.pick(&[ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min]),
        }
    } else {
        let a = avail.pop().unwrap();
        Stmt::DataRegion {
            chunk: r.range(1, n + 1),
            a,
            body_add: if r.chance(0.7) {
                Some(*r.pick(&CONSTS))
            } else {
                None
            },
            update_from: r.chance(0.3),
            exit_from: r.chance(0.6),
            devices,
        }
    }
}

fn gen_raw_phase(r: &mut Prng, n_arrays: usize, n: usize, n_devices: usize) -> Vec<Stmt> {
    let count = r.range(2, 5);
    (0..count)
        .map(|_| {
            let a = r.below(n_arrays as u64) as usize;
            let device = r.below(n_devices as u64) as u32;
            let start = r.range(0, n - 1);
            let len = r.range(1, n - start + 1);
            let roll = r.below(100);
            if roll < 40 {
                Stmt::RawEnter {
                    device,
                    a,
                    start,
                    len,
                }
            } else if roll < 65 {
                Stmt::RawExit {
                    device,
                    a,
                    start,
                    len,
                    delete: r.chance(0.2),
                }
            } else if roll < 85 {
                Stmt::RawUpdate {
                    device,
                    a,
                    start,
                    len,
                    from: r.chance(0.5),
                }
            } else {
                Stmt::Bad {
                    a,
                    kind: *r.pick(&[
                        BadKind::DynamicDataSchedule,
                        BadKind::MissingChunkSize,
                        BadKind::EmptyDevices,
                    ]),
                }
            }
        })
        .collect()
}

/// The fault plan of a faulted program: usually a device lost at time
/// zero (fail-stop or resilient, evenly), sometimes only transient
/// copy bursts sized under the default retry budget.
fn gen_fault(r: &mut Prng, n_devices: usize) -> FaultSpec {
    let mode = if r.chance(0.5) {
        FaultMode::Resilient
    } else {
        FaultMode::FailStop
    };
    let lost = if r.chance(0.85) {
        Some(r.below(n_devices as u64) as u32)
    } else {
        None
    };
    let mut transients = Vec::new();
    if r.chance(0.4) {
        transients.push((r.below(n_devices as u64) as u32, r.range(1, 4) as u32));
    }
    FaultSpec {
        lost,
        mode,
        transients,
    }
}

/// Derive the program for `seed`.
pub fn gen_program(seed: u64) -> Program {
    gen_program_cfg(seed, false)
}

/// Derive the program for `seed`; with `faults` set, attach a seeded
/// [`FaultSpec`] and restrict generation so the outcome stays exactly
/// predictable (no dynamic schedules, no raw final phase — the only
/// admissible error is the loss itself, identical under every
/// interleaving because the device is dead on arrival).
pub fn gen_program_cfg(seed: u64, faults: bool) -> Program {
    let mut r = Prng::new(seed);
    // A loss needs a potential survivor to be interesting.
    let n_devices = if faults { r.range(2, 5) } else { r.range(1, 5) };
    let n = r.range(10, 49);
    let n_arrays = r.range(2, 5);
    let fault = if faults {
        Some(gen_fault(&mut r, n_devices))
    } else {
        None
    };
    let n_phases = r.range(1, 4);
    let mut phases = Vec::with_capacity(n_phases + 1);
    for _ in 0..n_phases {
        let mut avail: Vec<usize> = (0..n_arrays).collect();
        r.shuffle(&mut avail);
        let budget = r.range(1, 4);
        let mut phase = Vec::new();
        for _ in 0..budget {
            if avail.is_empty() {
                break;
            }
            phase.push(gen_stmt(&mut r, &mut avail, n, n_devices, faults));
        }
        phases.push(phase);
    }
    if !faults && r.chance(0.3) {
        phases.push(gen_raw_phase(&mut r, n_arrays, n, n_devices));
    }
    Program {
        n_devices,
        n,
        n_arrays,
        phases,
        fault,
        pressure: None,
        straggler: None,
        integrity: None,
        overlap: None,
    }
}

/// One blocking spread statement for a pressure program. Pressure mode
/// restricts generation to what [`crate::oracle`] can predict in closed
/// form: spread kernels only (no reductions, data regions or raw
/// statements), static or weighted schedules, no `nowait` — the
/// [`spread_core::plan_admission`] planner requires a static
/// distribution and a blocking construct, and blocking constructs keep
/// the headroom at every launch equal to the spec's closed form.
fn gen_pressure_stmt(r: &mut Prng, avail: &mut Vec<usize>, n: usize, n_devices: usize) -> Stmt {
    let devices = gen_devices(r, n_devices);
    let k = devices.len();
    let roll = r.below(100);
    let two = avail.len() >= 2;
    if roll < 45 || !two {
        let a = avail.pop().expect("caller checks avail");
        let c = *r.pick(&CONSTS);
        let op = if r.chance(0.5) {
            KernelOp::AddConst { a, c }
        } else {
            KernelOp::Scale { a, c }
        };
        Stmt::Spread {
            sched: gen_sched(r, n, k, true),
            nowait: false,
            devices,
            op,
        }
    } else if roll < 75 {
        let x = avail.pop().unwrap();
        let y = avail.pop().unwrap();
        Stmt::Spread {
            sched: gen_sched(r, n, k, true),
            nowait: false,
            devices,
            op: KernelOp::Saxpy {
                x,
                y,
                alpha: *r.pick(&CONSTS),
            },
        }
    } else {
        let src = avail.pop().unwrap();
        let dst = avail.pop().unwrap();
        Stmt::Spread {
            sched: Sched::Static {
                chunk: stencil_chunk(r, n, k),
            },
            nowait: false,
            devices,
            op: KernelOp::Stencil3 { src, dst },
        }
    }
}

/// Derive the pressure program for `seed`: spread-only phases plus a
/// seeded [`PressureSpec`] — tiny device capacities (sized against the
/// largest single-chunk footprint, so every outcome band occurs: fits
/// untouched, shrinks onto a neighbour, splits recursively, spills or
/// fails `Degraded`) and sustained OOM-pressure windows at time zero.
pub fn gen_program_pressure(seed: u64) -> Program {
    let mut r = Prng::new(seed);
    let n_devices = r.range(1, 5);
    let n = r.range(10, 49);
    let n_arrays = r.range(2, 5);
    let policy = if r.chance(0.5) {
        PressurePolicy::Split
    } else {
        PressurePolicy::Spill
    };
    // The largest chunk footprint is a whole-loop Saxpy / halo'd
    // stencil: ~2(n+2) elements. Caps range from starvation (4 elems)
    // to comfortable, always in whole pool elements.
    let cap_bytes = r.range(4, 2 * (n + 2) + 1) as u64 * 8;
    let mut sustained = Vec::new();
    for d in 0..n_devices as u32 {
        if r.chance(0.4) {
            sustained.push((d, r.range(1, (cap_bytes / 8) as usize + 1) as u64 * 8));
        }
    }
    let n_phases = r.range(1, 4);
    let mut phases = Vec::with_capacity(n_phases);
    for _ in 0..n_phases {
        let mut avail: Vec<usize> = (0..n_arrays).collect();
        r.shuffle(&mut avail);
        let budget = r.range(1, 4);
        let mut phase = Vec::new();
        for _ in 0..budget {
            if avail.is_empty() {
                break;
            }
            phase.push(gen_pressure_stmt(&mut r, &mut avail, n, n_devices));
        }
        phases.push(phase);
    }
    Program {
        n_devices,
        n,
        n_arrays,
        phases,
        fault: None,
        pressure: Some(PressureSpec {
            policy,
            cap_bytes,
            sustained,
        }),
        straggler: None,
        integrity: None,
        overlap: None,
    }
}

/// One halo-exchange region for a peer program: at least two devices,
/// sized so every device gets at most one chunk (same-device halo'd
/// chunks would overlap-extend) and every chunk spans at least two
/// elements (so each interior halo element is held by exactly one
/// sibling and the must-peer prediction is unique).
fn gen_halo_stmt(r: &mut Prng, avail: &mut Vec<usize>, n: usize, n_devices: usize) -> Stmt {
    let k = r.range(2, n_devices + 1);
    let mut devices: Vec<u32> = (0..n_devices as u32).collect();
    r.shuffle(&mut devices);
    devices.truncate(k);
    Stmt::Halo {
        chunk: n.div_ceil(k),
        a: avail.pop().expect("caller checks avail"),
        dst: avail.pop().expect("caller checks avail"),
        bump: if r.chance(0.4) {
            Some(*r.pick(&CONSTS))
        } else {
            None
        },
        devices,
    }
}

/// Derive the peer program for `seed`: every phase is built around
/// halo-exchange regions ([`Stmt::Halo`]), padded with simple blocking
/// elementwise spreads. The first statement is always a halo region, so
/// every peer program actually exercises the `exchange(…)` route; its
/// `bump` (and every later one) stays seeded, so the corpus covers both
/// the must-peer and the must-host band. No fault or pressure plans —
/// the differential executor runs the same program under forced
/// `exchange(host)` and under `exchange(auto)`, and the somier suite
/// covers loss × peer.
pub fn gen_program_peer(seed: u64) -> Program {
    let mut r = Prng::new(seed);
    // Peer routing needs a sibling to pull from.
    let n_devices = r.range(2, 5);
    let n = r.range(10, 49);
    // Halo regions consume two arrays (exchange + stencil output).
    let n_arrays = r.range(3, 6);
    let n_phases = r.range(1, 4);
    let mut phases = Vec::with_capacity(n_phases);
    for pi in 0..n_phases {
        let mut avail: Vec<usize> = (0..n_arrays).collect();
        r.shuffle(&mut avail);
        let budget = r.range(1, 3);
        let mut phase = Vec::new();
        for si in 0..budget {
            if avail.is_empty() {
                break;
            }
            let halo = (pi == 0 && si == 0) || (avail.len() >= 2 && r.chance(0.7));
            if halo {
                phase.push(gen_halo_stmt(&mut r, &mut avail, n, n_devices));
            } else {
                let a = avail.pop().expect("checked non-empty");
                let c = *r.pick(&CONSTS);
                let op = if r.chance(0.5) {
                    KernelOp::AddConst { a, c }
                } else {
                    KernelOp::Scale { a, c }
                };
                phase.push(Stmt::Spread {
                    devices: gen_devices(&mut r, n_devices),
                    sched: Sched::Static {
                        chunk: r.range(1, n + 1),
                    },
                    nowait: false,
                    op,
                });
            }
        }
        phases.push(phase);
    }
    Program {
        n_devices,
        n,
        n_arrays,
        phases,
        fault: None,
        pressure: None,
        straggler: None,
        integrity: None,
        overlap: None,
    }
}

/// One blocking spread statement for a straggler program.
/// `spread_straggler(steal|replicate)` requires a blocking construct
/// with a static distribution, so generation mirrors pressure mode's
/// restrictions: spread kernels only, static or weighted schedules, no
/// `nowait`. The schedules are chunked so every statement splits into
/// at least two pieces — a single-piece construct has no healthy
/// sibling to rescue onto and silently degrades to `wait`.
fn gen_straggler_stmt(r: &mut Prng, avail: &mut Vec<usize>, n: usize, n_devices: usize) -> Stmt {
    // All devices, shuffled: the slowed device must actually get work.
    let mut devices: Vec<u32> = (0..n_devices as u32).collect();
    r.shuffle(&mut devices);
    let k = devices.len();
    let sched = if r.chance(0.6) {
        Sched::Static {
            chunk: r.range(1, n / 2 + 1),
        }
    } else {
        Sched::Weighted {
            round: r.range(k.max(2), n / 2 + 2),
            weights: (0..k).map(|_| r.range(1, 5) as u32).collect(),
        }
    };
    let roll = r.below(100);
    let two = avail.len() >= 2;
    if roll < 45 || !two {
        let a = avail.pop().expect("caller checks avail");
        let c = *r.pick(&CONSTS);
        let op = if r.chance(0.5) {
            KernelOp::AddConst { a, c }
        } else {
            KernelOp::Scale { a, c }
        };
        Stmt::Spread {
            sched,
            nowait: false,
            devices,
            op,
        }
    } else if roll < 75 {
        let x = avail.pop().unwrap();
        let y = avail.pop().unwrap();
        Stmt::Spread {
            sched,
            nowait: false,
            devices,
            op: KernelOp::Saxpy {
                x,
                y,
                alpha: *r.pick(&CONSTS),
            },
        }
    } else {
        let src = avail.pop().unwrap();
        let dst = avail.pop().unwrap();
        Stmt::Spread {
            sched: Sched::Static {
                chunk: stencil_chunk(r, n, k).max(2),
            },
            nowait: false,
            devices,
            op: KernelOp::Stencil3 { src, dst },
        }
    }
}

/// Derive the straggler program for `seed`: blocking spread-only phases
/// over every device, plus a seeded [`StragglerSpec`] — one device
/// slowed by a factor large enough (10–16×) that its pieces always blow
/// the default 4× progress deadline once the executor makes kernels
/// dominate the construct (serial lanes, heavy per-iteration cost).
/// Results must stay bit-identical to the fault-free oracle: slowdowns
/// stretch durations, rescues are first-commit-wins value-invisible.
pub fn gen_program_straggler(seed: u64) -> Program {
    let mut r = Prng::new(seed);
    // A rescue needs a healthy sibling to land on.
    let n_devices = r.range(2, 5);
    let n = r.range(10, 49);
    let n_arrays = r.range(2, 5);
    let policy = if r.chance(0.5) {
        StragglerPolicy::Steal
    } else {
        StragglerPolicy::Replicate
    };
    let slow = vec![(r.below(n_devices as u64) as u32, *r.pick(&[10u32, 12, 16]))];
    let n_phases = r.range(1, 4);
    let mut phases = Vec::with_capacity(n_phases);
    for _ in 0..n_phases {
        let mut avail: Vec<usize> = (0..n_arrays).collect();
        r.shuffle(&mut avail);
        let budget = r.range(1, 4);
        let mut phase = Vec::new();
        for _ in 0..budget {
            if avail.is_empty() {
                break;
            }
            phase.push(gen_straggler_stmt(&mut r, &mut avail, n, n_devices));
        }
        phases.push(phase);
    }
    Program {
        n_devices,
        n,
        n_arrays,
        phases,
        fault: None,
        pressure: None,
        straggler: Some(StragglerSpec { policy, slow }),
        integrity: None,
        overlap: None,
    }
}

/// One blocking spread statement for an integrity program.
/// `spread_integrity(heal)` rejects `nowait`, dynamic schedules, and
/// the straggler/pressure clauses, so generation mirrors the straggler
/// template: spread kernels only over every device (flipped devices
/// must actually commit work), static or weighted schedules, blocking.
fn gen_integrity_stmt(r: &mut Prng, avail: &mut Vec<usize>, n: usize, n_devices: usize) -> Stmt {
    let mut devices: Vec<u32> = (0..n_devices as u32).collect();
    r.shuffle(&mut devices);
    let k = devices.len();
    let sched = if r.chance(0.6) {
        Sched::Static {
            chunk: r.range(1, n / 2 + 1),
        }
    } else {
        Sched::Weighted {
            round: r.range(k.max(2), n / 2 + 2),
            weights: (0..k).map(|_| r.range(1, 5) as u32).collect(),
        }
    };
    let roll = r.below(100);
    let two = avail.len() >= 2;
    if roll < 45 || !two {
        let a = avail.pop().expect("caller checks avail");
        let c = *r.pick(&CONSTS);
        let op = if r.chance(0.5) {
            KernelOp::AddConst { a, c }
        } else {
            KernelOp::Scale { a, c }
        };
        Stmt::Spread {
            sched,
            nowait: false,
            devices,
            op,
        }
    } else if roll < 75 {
        let x = avail.pop().unwrap();
        let y = avail.pop().unwrap();
        Stmt::Spread {
            sched,
            nowait: false,
            devices,
            op: KernelOp::Saxpy {
                x,
                y,
                alpha: *r.pick(&CONSTS),
            },
        }
    } else {
        let src = avail.pop().unwrap();
        let dst = avail.pop().unwrap();
        Stmt::Spread {
            sched: Sched::Static {
                chunk: stencil_chunk(r, n, k).max(2),
            },
            nowait: false,
            devices,
            op: KernelOp::Stencil3 { src, dst },
        }
    }
}

/// Derive the integrity program for `seed`: blocking spread-only
/// phases over every device, plus a seeded [`IntegritySpec`] — one or
/// two devices armed with 1–3 silent-flip tokens each (well below the
/// default mismatch breaker of 8, so healing never tips a device into
/// quarantine). The clause is always `heal`: results must stay
/// bit-identical to the fault-free oracle, with the healed-commit
/// ledger validated against the closed-form token count per device.
pub fn gen_program_integrity(seed: u64) -> Program {
    let mut r = Prng::new(seed);
    let n_devices = r.range(2, 5);
    let n = r.range(10, 49);
    let n_arrays = r.range(2, 5);
    // Flip bursts land on distinct devices so the per-device ledger in
    // `validate_integrity` exercises more than one breaker streak.
    let mut flip_devices: Vec<u32> = (0..n_devices as u32).collect();
    r.shuffle(&mut flip_devices);
    flip_devices.truncate(r.range(1, 3));
    let flips: Vec<(u32, u32)> = flip_devices
        .into_iter()
        .map(|d| (d, r.range(1, 4) as u32))
        .collect();
    let n_phases = r.range(1, 4);
    let mut phases = Vec::with_capacity(n_phases);
    for _ in 0..n_phases {
        let mut avail: Vec<usize> = (0..n_arrays).collect();
        r.shuffle(&mut avail);
        let budget = r.range(1, 4);
        let mut phase = Vec::new();
        for _ in 0..budget {
            if avail.is_empty() {
                break;
            }
            phase.push(gen_integrity_stmt(&mut r, &mut avail, n, n_devices));
        }
        phases.push(phase);
    }
    Program {
        n_devices,
        n,
        n_arrays,
        phases,
        fault: None,
        pressure: None,
        straggler: None,
        integrity: Some(IntegritySpec {
            mode: IntegrityMode::Heal,
            flips,
        }),
        overlap: None,
    }
}

/// One blocking spread statement for an overlap program.
/// `spread_overlap(depth)` rejects `nowait`, dynamic schedules and
/// degrading pressure policies, so generation mirrors the integrity
/// template: spread kernels only, static or weighted schedules,
/// blocking. Static chunks lean large (≥ 2 iterations) so most pieces
/// really pipeline; pieces a weighted round splits down to a single
/// iteration fall back to the classic path, and the validator's
/// closed-form record count accounts for them.
fn gen_overlap_stmt(r: &mut Prng, avail: &mut Vec<usize>, n: usize, n_devices: usize) -> Stmt {
    let devices = gen_devices(r, n_devices);
    let k = devices.len();
    let sched = if r.chance(0.6) {
        Sched::Static {
            chunk: r.range(2, n / 2 + 2),
        }
    } else {
        Sched::Weighted {
            round: r.range(k.max(2), n / 2 + 2),
            weights: (0..k).map(|_| r.range(1, 5) as u32).collect(),
        }
    };
    let roll = r.below(100);
    let two = avail.len() >= 2;
    if roll < 45 || !two {
        let a = avail.pop().expect("caller checks avail");
        let c = *r.pick(&CONSTS);
        let op = if r.chance(0.5) {
            KernelOp::AddConst { a, c }
        } else {
            KernelOp::Scale { a, c }
        };
        Stmt::Spread {
            sched,
            nowait: false,
            devices,
            op,
        }
    } else if roll < 75 {
        let x = avail.pop().unwrap();
        let y = avail.pop().unwrap();
        Stmt::Spread {
            sched,
            nowait: false,
            devices,
            op: KernelOp::Saxpy {
                x,
                y,
                alpha: *r.pick(&CONSTS),
            },
        }
    } else {
        let src = avail.pop().unwrap();
        let dst = avail.pop().unwrap();
        Stmt::Spread {
            sched: Sched::Static {
                chunk: stencil_chunk(r, n, k).max(2),
            },
            nowait: false,
            devices,
            op: KernelOp::Stencil3 { src, dst },
        }
    }
}

/// Derive the overlap program for `seed`: blocking spread-only phases
/// plus a seeded [`OverlapSpec`] — every construct carries
/// `spread_overlap(depth)` with `2 ≤ depth ≤ 4`. The pipeline is a pure
/// latency optimization, so the oracle stays overlap-blind: results
/// must be bit-identical to the un-pipelined prediction while the
/// recorded [`spread_rt::OverlapRecord`] ledger matches the closed-form
/// piece count (one record per multi-iteration chunk of the static
/// distribution) with every staged sub-slice committing exactly at the
/// whole-piece boundary.
pub fn gen_program_overlap(seed: u64) -> Program {
    let mut r = Prng::new(seed);
    // Overlap pipelines each device's piece independently — a
    // single-device machine is as interesting as a full one.
    let n_devices = r.range(1, 5);
    let n = r.range(10, 49);
    let n_arrays = r.range(2, 5);
    let depth = r.range(2, 5) as u32;
    let n_phases = r.range(1, 4);
    let mut phases = Vec::with_capacity(n_phases);
    for _ in 0..n_phases {
        let mut avail: Vec<usize> = (0..n_arrays).collect();
        r.shuffle(&mut avail);
        let budget = r.range(1, 4);
        let mut phase = Vec::new();
        for _ in 0..budget {
            if avail.is_empty() {
                break;
            }
            phase.push(gen_overlap_stmt(&mut r, &mut avail, n, n_devices));
        }
        phases.push(phase);
    }
    Program {
        n_devices,
        n,
        n_arrays,
        phases,
        fault: None,
        pressure: None,
        straggler: None,
        integrity: None,
        overlap: Some(OverlapSpec { depth }),
    }
}

/// One blocking statement for an adaptive-schedule program: a spread
/// kernel or reduction under `spread_schedule(auto)`. Auto mode
/// restricts generation to what the equal-weight oracle stand-in can
/// predict exactly: placement-independent kernels only (no `Stencil3`,
/// whose halos encode the §V-B gap rule against the *actual* chunking),
/// no `nowait` (`spread_schedule(auto)` requires a blocking construct),
/// and no fault or pressure plans. Keys are drawn from a small
/// per-program pool so launches share learned weight vectors and the
/// profile store's damped update actually engages.
fn gen_auto_stmt(r: &mut Prng, avail: &mut Vec<usize>, n_devices: usize, n_keys: usize) -> Stmt {
    let devices = gen_devices(r, n_devices);
    let sched = Sched::Auto {
        key: r.below(n_keys as u64) as u32,
    };
    let roll = r.below(100);
    let two = avail.len() >= 2;
    if roll < 50 || !two {
        let a = avail.pop().expect("caller checks avail");
        let c = *r.pick(&CONSTS);
        let op = if r.chance(0.5) {
            KernelOp::AddConst { a, c }
        } else {
            KernelOp::Scale { a, c }
        };
        Stmt::Spread {
            sched,
            nowait: false,
            devices,
            op,
        }
    } else if roll < 75 {
        let x = avail.pop().unwrap();
        let y = avail.pop().unwrap();
        Stmt::Spread {
            sched,
            nowait: false,
            devices,
            op: KernelOp::Saxpy {
                x,
                y,
                alpha: *r.pick(&CONSTS),
            },
        }
    } else {
        let a = avail.pop().unwrap();
        let partials = avail.pop().unwrap();
        Stmt::Reduce {
            sched,
            devices,
            a,
            partials,
            alpha: *r.pick(&CONSTS),
            op: *r.pick(&[ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min]),
        }
    }
}

/// Derive the adaptive-schedule program for `seed`: every statement is
/// a blocking `spread_schedule(auto)` spread kernel or reduction, keys
/// repeat across a multi-phase program, and there is no fault or
/// pressure plan — so the only open question is whether the runtime's
/// profile-guided resolution stays a valid, semantics-preserving
/// `StaticWeighted` plan on every launch.
pub fn gen_program_auto(seed: u64) -> Program {
    let mut r = Prng::new(seed);
    // Adaptation needs at least two devices to have anything to shift.
    let n_devices = r.range(2, 5);
    let n = r.range(10, 49);
    let n_arrays = r.range(2, 5);
    let n_keys = r.range(1, 4);
    // Several phases so repeated keys see several launches.
    let n_phases = r.range(2, 6);
    let mut phases = Vec::with_capacity(n_phases);
    for _ in 0..n_phases {
        let mut avail: Vec<usize> = (0..n_arrays).collect();
        r.shuffle(&mut avail);
        let budget = r.range(1, 4);
        let mut phase = Vec::new();
        for _ in 0..budget {
            if avail.is_empty() {
                break;
            }
            phase.push(gen_auto_stmt(&mut r, &mut avail, n_devices, n_keys));
        }
        phases.push(phase);
    }
    Program {
        n_devices,
        n,
        n_arrays,
        phases,
        fault: None,
        pressure: None,
        straggler: None,
        integrity: None,
        overlap: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stencil_gap_ok(devices: &[u32], sched: &Sched, n: usize) -> bool {
        match sched {
            Sched::Static { chunk } => match devices.len() {
                1 => *chunk >= n.saturating_sub(2),
                k => (k - 1) * chunk >= 2,
            },
            _ => false,
        }
    }

    #[test]
    fn generated_programs_respect_the_invariants() {
        for seed in 0..300u64 {
            let p = gen_program(seed);
            assert!((1..=4).contains(&p.n_devices));
            assert!(p.n >= 10);
            let last = p.phases.len().saturating_sub(1);
            for (pi, phase) in p.phases.iter().enumerate() {
                let mut seen = std::collections::BTreeSet::new();
                for stmt in phase {
                    // Raw statements only in the final phase.
                    if stmt.is_raw() {
                        assert_eq!(pi, last, "seed {seed}");
                    } else {
                        // Disjoint arrays within a phase.
                        for a in stmt.arrays() {
                            assert!(seen.insert(a), "seed {seed}: array {a} reused");
                            assert!(a < p.n_arrays);
                        }
                    }
                    if let Stmt::Spread {
                        devices,
                        sched,
                        op: KernelOp::Stencil3 { .. },
                        ..
                    } = stmt
                    {
                        assert!(stencil_gap_ok(devices, sched, p.n), "seed {seed}");
                    }
                }
            }
        }
    }

    #[test]
    fn same_seed_same_program() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = format!("{:?}", gen_program(seed));
            let b = format!("{:?}", gen_program(seed));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn faulted_programs_respect_the_fault_invariants() {
        let mut lost = 0;
        let mut resilient = 0;
        let mut transient = 0;
        for seed in 0..300u64 {
            let p = gen_program_cfg(seed, true);
            assert!(p.n_devices >= 2, "seed {seed}: a loss needs a survivor");
            let f = p.fault.as_ref().expect("faulted mode attaches a plan");
            if let Some(d) = f.lost {
                assert!((d as usize) < p.n_devices, "seed {seed}");
                lost += 1;
            }
            if f.mode == FaultMode::Resilient {
                resilient += 1;
            }
            for &(d, count) in &f.transients {
                assert!((d as usize) < p.n_devices, "seed {seed}");
                assert!((1..=3).contains(&count), "seed {seed}: retry budget");
                transient += 1;
            }
            for stmt in p.phases.iter().flatten() {
                assert!(!stmt.is_raw(), "seed {seed}: raw stmt in faulted program");
                if let Stmt::Spread { sched, .. } | Stmt::Reduce { sched, .. } = stmt {
                    assert!(
                        !matches!(sched, Sched::Dynamic { .. }),
                        "seed {seed}: dynamic schedule in faulted program"
                    );
                }
            }
        }
        assert!(lost > 100, "{lost}");
        assert!(resilient > 50, "{resilient}");
        assert!(transient > 30, "{transient}");
    }

    #[test]
    fn integrity_programs_respect_the_integrity_invariants() {
        let mut bursts = 0;
        let mut two_device = 0;
        for seed in 0..300u64 {
            let p = gen_program_integrity(seed);
            let is = p
                .integrity
                .as_ref()
                .expect("integrity mode attaches a spec");
            assert_eq!(is.mode, IntegrityMode::Heal, "seed {seed}");
            assert!(p.fault.is_none(), "seed {seed}: integrity excludes loss");
            assert!(p.pressure.is_none(), "seed {seed}: heal rejects pressure");
            assert!(
                p.straggler.is_none(),
                "seed {seed}: heal rejects straggler rescue"
            );
            assert!(!is.flips.is_empty(), "seed {seed}: at least one burst");
            let mut seen = std::collections::BTreeSet::new();
            for &(d, count) in &is.flips {
                assert!((d as usize) < p.n_devices, "seed {seed}");
                assert!((1..=3).contains(&count), "seed {seed}: {count} flips");
                assert!(seen.insert(d), "seed {seed}: distinct flip devices");
                bursts += 1;
            }
            if is.flips.len() > 1 {
                two_device += 1;
            }
            for stmt in p.phases.iter().flatten() {
                let Stmt::Spread {
                    sched,
                    nowait,
                    devices,
                    op,
                    ..
                } = stmt
                else {
                    panic!("seed {seed}: integrity programs are spread-only");
                };
                assert!(!nowait, "seed {seed}: heal requires blocking constructs");
                assert!(
                    !matches!(sched, Sched::Dynamic { .. }),
                    "seed {seed}: heal requires a static distribution"
                );
                assert_eq!(devices.len(), p.n_devices, "seed {seed}: all devices");
                if matches!(op, KernelOp::Stencil3 { .. }) {
                    assert!(stencil_gap_ok(devices, sched, p.n), "seed {seed}");
                }
            }
        }
        assert!(bursts > 300, "{bursts}");
        assert!(two_device > 100, "{two_device}");
    }

    #[test]
    fn pressure_programs_respect_the_pressure_invariants() {
        let mut split = 0;
        let mut spill = 0;
        let mut windows = 0;
        for seed in 0..300u64 {
            let p = gen_program_pressure(seed);
            let ps = p.pressure.as_ref().expect("pressure mode attaches a spec");
            assert!(
                p.fault.is_none(),
                "seed {seed}: pressure excludes loss plans"
            );
            assert_eq!(ps.cap_bytes % 8, 0, "seed {seed}: whole pool elements");
            assert!(ps.cap_bytes >= 32, "seed {seed}");
            match ps.policy {
                PressurePolicy::Split => split += 1,
                PressurePolicy::Spill => spill += 1,
                PressurePolicy::Fail => panic!("seed {seed}: Fail is not a pressure mode"),
            }
            for &(d, b) in &ps.sustained {
                assert!((d as usize) < p.n_devices, "seed {seed}");
                assert!(b % 8 == 0 && b > 0 && b <= ps.cap_bytes, "seed {seed}");
                windows += 1;
            }
            for stmt in p.phases.iter().flatten() {
                let Stmt::Spread {
                    sched,
                    nowait,
                    devices,
                    ..
                } = stmt
                else {
                    panic!("seed {seed}: pressure programs are spread-only");
                };
                assert!(
                    !nowait,
                    "seed {seed}: pressure requires blocking constructs"
                );
                assert!(
                    !matches!(sched, Sched::Dynamic { .. }),
                    "seed {seed}: pressure requires a static distribution"
                );
                if let Stmt::Spread {
                    devices: d,
                    sched,
                    op: KernelOp::Stencil3 { .. },
                    ..
                } = stmt
                {
                    assert!(stencil_gap_ok(d, sched, p.n), "seed {seed}");
                }
                assert!(!devices.is_empty(), "seed {seed}");
            }
        }
        assert!(split > 100, "{split}");
        assert!(spill > 100, "{spill}");
        assert!(windows > 100, "{windows}");
    }

    #[test]
    fn auto_programs_respect_the_auto_invariants() {
        let mut auto_stmts = 0;
        let mut reduces = 0;
        let mut repeated_keys = 0;
        for seed in 0..300u64 {
            let p = gen_program_auto(seed);
            assert!(p.n_devices >= 2, "seed {seed}: adaptation needs 2 devices");
            assert!(p.fault.is_none(), "seed {seed}: auto excludes fault plans");
            assert!(p.pressure.is_none(), "seed {seed}: auto excludes pressure");
            assert!(
                p.phases.len() >= 2,
                "seed {seed}: keys need repeat launches"
            );
            assert!(p.uses_auto(), "seed {seed}");
            let mut keys = Vec::new();
            for stmt in p.phases.iter().flatten() {
                match stmt {
                    Stmt::Spread {
                        sched,
                        nowait,
                        op,
                        devices,
                    } => {
                        assert!(!nowait, "seed {seed}: auto requires blocking");
                        assert!(!devices.is_empty(), "seed {seed}");
                        assert!(
                            !matches!(op, KernelOp::Stencil3 { .. }),
                            "seed {seed}: stencils are placement-dependent"
                        );
                        let Sched::Auto { key } = sched else {
                            panic!("seed {seed}: non-auto schedule");
                        };
                        keys.push(*key);
                        auto_stmts += 1;
                    }
                    Stmt::Reduce { sched, .. } => {
                        let Sched::Auto { key } = sched else {
                            panic!("seed {seed}: non-auto schedule");
                        };
                        keys.push(*key);
                        reduces += 1;
                        auto_stmts += 1;
                    }
                    other => panic!("seed {seed}: auto programs are spread-only, got {other:?}"),
                }
            }
            let distinct: std::collections::BTreeSet<u32> = keys.iter().copied().collect();
            if distinct.len() < keys.len() {
                repeated_keys += 1;
            }
        }
        assert!(auto_stmts > 600, "{auto_stmts}");
        assert!(reduces > 50, "{reduces}");
        assert!(repeated_keys > 100, "{repeated_keys}");
    }

    #[test]
    fn peer_programs_respect_the_halo_invariants() {
        let mut peer_routed = 0;
        let mut host_routed = 0;
        for seed in 0..300u64 {
            let p = gen_program_peer(seed);
            assert!(p.n_devices >= 2, "seed {seed}: peer needs a sibling");
            assert!(p.fault.is_none(), "seed {seed}: peer excludes fault plans");
            assert!(p.pressure.is_none(), "seed {seed}: peer excludes pressure");
            assert!(
                matches!(p.phases[0][0], Stmt::Halo { .. }),
                "seed {seed}: every peer program opens with a halo region"
            );
            for stmt in p.phases.iter().flatten() {
                match stmt {
                    Stmt::Halo {
                        devices,
                        chunk,
                        a,
                        dst,
                        bump,
                    } => {
                        assert!(devices.len() >= 2, "seed {seed}");
                        assert!(*chunk >= 2, "seed {seed}: sibling uniqueness");
                        // One chunk per device at most: halo'd chunks on
                        // one device would overlap-extend.
                        assert!(
                            p.n.div_ceil(*chunk) <= devices.len(),
                            "seed {seed}: {} chunks for {} devices",
                            p.n.div_ceil(*chunk),
                            devices.len()
                        );
                        assert_ne!(a, dst, "seed {seed}");
                        if bump.is_some() {
                            host_routed += 1;
                        } else {
                            peer_routed += 1;
                        }
                    }
                    Stmt::Spread {
                        sched,
                        nowait,
                        op,
                        devices,
                    } => {
                        assert!(!nowait, "seed {seed}: peer programs are blocking");
                        assert!(!devices.is_empty(), "seed {seed}");
                        assert!(
                            matches!(sched, Sched::Static { .. }),
                            "seed {seed}: static padding only"
                        );
                        assert!(
                            matches!(op, KernelOp::AddConst { .. } | KernelOp::Scale { .. }),
                            "seed {seed}"
                        );
                    }
                    other => panic!("seed {seed}: unexpected {other:?} in peer program"),
                }
            }
        }
        assert!(peer_routed > 150, "{peer_routed}");
        assert!(host_routed > 80, "{host_routed}");
    }

    #[test]
    fn seeds_cover_every_statement_kind() {
        let mut spread = 0;
        let mut reduce = 0;
        let mut region = 0;
        let mut raw = 0;
        let mut bad = 0;
        for seed in 0..400u64 {
            for stmt in gen_program(seed).phases.iter().flatten() {
                match stmt {
                    Stmt::Spread { .. } => spread += 1,
                    Stmt::Reduce { .. } => reduce += 1,
                    Stmt::DataRegion { .. } => region += 1,
                    Stmt::Bad { .. } => bad += 1,
                    _ => raw += 1,
                }
            }
        }
        assert!(spread > 50, "{spread}");
        assert!(reduce > 10, "{reduce}");
        assert!(region > 10, "{region}");
        assert!(raw > 10, "{raw}");
        assert!(bad > 3, "{bad}");
    }
}
