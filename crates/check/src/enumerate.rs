//! Bounded model checking: exhaustive enumeration of small directive
//! programs.
//!
//! Fuzzing samples the program space; this module *covers* it, up to a
//! bound. [`programs`] enumerates **every** sequence of up to
//! `max_stmts` statements drawn from a fixed [`alphabet`] — per machine
//! size (one and two devices) — and [`model_check`] runs each one
//! through the full conformance check: the `spread-semantics` machine
//! predicts the final host arrays, mapping tables and exact `RtError`
//! (if any), and the real runtime must reproduce that prediction
//! bit-for-bit under FIFO plus seeded tie-break interleavings.
//!
//! The alphabet is chosen to cross every presence-table rule with every
//! other: compute constructs (blocking and `nowait`, static and
//! weighted), raw enters that *reuse*, *extend-overlap* or *leak*
//! mappings, raw exits with `from` and `delete` (including `NotMapped`
//! misuse), raw updates on possibly-absent sections, and a malformed
//! directive. Sequencing them in every order exercises exactly the
//! paths where the spec machine and the runtime could drift: reuse
//! after leak, delete after reuse, update after delete, compute over a
//! leaked section, everything after a poisoning error.
//!
//! Programs keep `n = 8` elements and two arrays, so depth 3 across
//! both machine sizes stays around ~1 700 programs — small enough for a
//! CI job in release, while a depth-2 sweep (~180 programs) runs in the
//! plain test suite.

use crate::ast::{BadKind, KernelOp, Program, Sched, Stmt};
use crate::{check_program, CheckConfig, CheckFailure};

/// Array length of every enumerated program.
pub const N: usize = 8;

/// Number of host arrays of every enumerated program.
pub const N_ARRAYS: usize = 2;

/// The machine sizes the enumeration sweeps.
pub const DEVICE_COUNTS: [usize; 2] = [1, 2];

/// The statement alphabet for a machine of `n_devices` devices and
/// arrays of length `n`. Deterministic; the two-device machine extends
/// the one-device alphabet with statements that exercise device 1 and
/// reversed distribution order.
pub fn alphabet(n_devices: usize, n: usize) -> Vec<Stmt> {
    let all: Vec<u32> = (0..n_devices as u32).collect();
    let mut ab = vec![
        // Blocking static spread over every device (tofrom round-trip).
        Stmt::Spread {
            devices: all.clone(),
            sched: Sched::Static { chunk: n / 2 },
            nowait: false,
            op: KernelOp::AddConst { a: 0, c: 1.0 },
        },
        // Two-array kernel: `to` on A0, `tofrom` on A1.
        Stmt::Spread {
            devices: all.clone(),
            sched: Sched::Static { chunk: n },
            nowait: false,
            op: KernelOp::Saxpy {
                x: 0,
                y: 1,
                alpha: 0.5,
            },
        },
        // A mapping that reuses (same section twice) or leaks (never
        // exited).
        Stmt::RawEnter {
            device: 0,
            a: 0,
            start: 0,
            len: 4,
        },
        // Overlaps-without-containment with the one above: §V-B
        // extension error when both run, a plain leak alone.
        Stmt::RawEnter {
            device: 0,
            a: 0,
            start: 2,
            len: 4,
        },
        // Copy-out release — `NotMapped` when nothing contains it.
        Stmt::RawExit {
            device: 0,
            a: 0,
            start: 0,
            len: 4,
            delete: false,
        },
        // Forced delete: zeroes the refcount, discards the data.
        Stmt::RawExit {
            device: 0,
            a: 0,
            start: 0,
            len: 4,
            delete: true,
        },
        // Device→host refresh of a possibly-absent window.
        Stmt::RawUpdate {
            device: 0,
            a: 0,
            start: 0,
            len: 4,
            from: true,
        },
        // Malformed directive: poisons everything after it.
        Stmt::Bad {
            a: 0,
            kind: BadKind::EmptyDevices,
        },
    ];
    if n_devices > 1 {
        // Reversed distribution order + nowait + weighted schedule.
        ab.push(Stmt::Spread {
            devices: vec![1, 0],
            sched: Sched::Weighted {
                round: n / 2,
                weights: vec![1, 1],
            },
            nowait: true,
            op: KernelOp::Scale { a: 1, c: 2.0 },
        });
        // A mapping on the *other* device: presence is per-device, so
        // exits/updates addressed to device 0 must not see it.
        ab.push(Stmt::RawEnter {
            device: 1,
            a: 0,
            start: 0,
            len: 4,
        });
    }
    ab
}

fn build(n_devices: usize, ab: &[Stmt], digits: &[usize]) -> Program {
    Program {
        n_devices,
        n: N,
        n_arrays: N_ARRAYS,
        // One statement per phase: a `drain_all` barrier between any
        // two statements, so sequencing — not intra-phase overlap — is
        // what the enumeration explores.
        phases: digits.iter().map(|&i| vec![ab[i].clone()]).collect(),
        fault: None,
        pressure: None,
        straggler: None,
        integrity: None,
        overlap: None,
    }
}

/// Every program of `1..=max_stmts` statements over [`alphabet`], for
/// each machine size in [`DEVICE_COUNTS`], in a deterministic order.
pub fn programs(max_stmts: usize) -> Vec<Program> {
    let mut out = Vec::new();
    for &d in &DEVICE_COUNTS {
        let ab = alphabet(d, N);
        for len in 1..=max_stmts {
            // Odometer over `len` base-`ab.len()` digits.
            let mut digits = vec![0usize; len];
            loop {
                out.push(build(d, &ab, &digits));
                let mut k = 0;
                while k < len {
                    digits[k] += 1;
                    if digits[k] < ab.len() {
                        break;
                    }
                    digits[k] = 0;
                    k += 1;
                }
                if k == len {
                    break;
                }
            }
        }
    }
    out
}

/// One enumerated program the runtime disagreed with the spec on.
#[derive(Clone, Debug)]
pub struct ModelFailure {
    /// Index of the program in [`programs`]' order (doubles as the
    /// tie-break seed it was checked under).
    pub index: usize,
    /// The failing program.
    pub program: Program,
    /// How it failed.
    pub failure: CheckFailure,
}

/// Summary of a bounded model-checking run.
#[derive(Clone, Debug, Default)]
pub struct ModelCheckReport {
    /// Programs checked.
    pub programs: usize,
    /// Total runtime executions (programs × interleavings).
    pub executions: usize,
    /// Disagreements (empty when runtime and spec coincide on the
    /// whole bounded space).
    pub failures: Vec<ModelFailure>,
}

/// Check every program in [`programs`]`(max_stmts)` under
/// `cfg.interleavings` tie-break policies (seeded by the program's
/// index, so the sweep is reproducible with no seed input at all).
/// `progress` is called after every program with
/// `(done, total, failures_so_far)`.
pub fn model_check(
    max_stmts: usize,
    cfg: &CheckConfig,
    mut progress: impl FnMut(usize, usize, usize),
) -> ModelCheckReport {
    let space = programs(max_stmts);
    let total = space.len();
    let mut report = ModelCheckReport::default();
    for (index, program) in space.into_iter().enumerate() {
        if let Err(failure) = check_program(&program, index as u64, cfg) {
            report.failures.push(ModelFailure {
                index,
                program,
                failure,
            });
        }
        report.programs += 1;
        report.executions += cfg.interleavings.max(1);
        progress(report.programs, total, report.failures.len());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_space_has_the_closed_form_size() {
        // One device: 8 letters; two devices: 10. Depth k sums the
        // geometric series per machine.
        let count = |letters: usize, depth: usize| -> usize {
            (1..=depth).map(|l| letters.pow(l as u32)).sum()
        };
        assert_eq!(alphabet(1, N).len(), 8);
        assert_eq!(alphabet(2, N).len(), 10);
        assert_eq!(programs(1).len(), count(8, 1) + count(10, 1));
        assert_eq!(programs(2).len(), count(8, 2) + count(10, 2));
    }

    #[test]
    fn enumeration_is_deterministic() {
        let a = programs(2);
        let b = programs(2);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn depth_one_model_checks_clean() {
        // The full bounded sweep lives in `tests/semantics_exhaustive`;
        // here just prove the driver end-to-end on the singletons.
        let cfg = CheckConfig {
            interleavings: 2,
            ..CheckConfig::default()
        };
        let report = model_check(1, &cfg, |_, _, _| {});
        assert_eq!(report.programs, 18);
        assert!(
            report.failures.is_empty(),
            "disagreements: {:?}",
            report.failures
        );
    }
}
