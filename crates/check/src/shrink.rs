//! Greedy counterexample shrinking.
//!
//! Given a failing [`Program`] and a predicate that re-checks a
//! candidate, repeatedly apply the first simplification that still
//! fails, until none applies (or a fixed budget of predicate calls is
//! spent). All candidate orders are deterministic, so shrinking the same
//! failure always yields the same minimal program.

use crate::ast::{KernelOp, Program, Sched, Stmt};

/// Candidate simplifications of `p`, most aggressive first.
fn candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    // 0. Drop the fault plan, or just its transient bursts.
    if p.fault.is_some() {
        let mut q = p.clone();
        q.fault = None;
        out.push(q);
    }
    if p.fault.as_ref().is_some_and(|f| !f.transients.is_empty()) {
        let mut q = p.clone();
        q.fault.as_mut().expect("checked above").transients.clear();
        out.push(q);
    }
    // 0b. Drop the pressure scenario, or just its sustained windows.
    if p.pressure.is_some() {
        let mut q = p.clone();
        q.pressure = None;
        out.push(q);
    }
    if p.pressure
        .as_ref()
        .is_some_and(|ps| !ps.sustained.is_empty())
    {
        let mut q = p.clone();
        q.pressure
            .as_mut()
            .expect("checked above")
            .sustained
            .clear();
        out.push(q);
    }
    // 0c. Drop the straggler scenario, or shrink it to one policy step
    // weaker (replicate keeps the original running — closer to wait).
    if p.straggler.is_some() {
        let mut q = p.clone();
        q.straggler = None;
        out.push(q);
    }
    if p.straggler
        .as_ref()
        .is_some_and(|ss| ss.policy == spread_core::StragglerPolicy::Steal)
    {
        let mut q = p.clone();
        q.straggler.as_mut().expect("checked above").policy =
            spread_core::StragglerPolicy::Replicate;
        out.push(q);
    }
    // 0d. Drop the integrity scenario, or drop one flip burst, or
    // reduce a burst to a single token.
    if p.integrity.is_some() {
        let mut q = p.clone();
        q.integrity = None;
        out.push(q);
    }
    if let Some(is) = &p.integrity {
        for i in 0..is.flips.len() {
            if is.flips.len() > 1 {
                let mut q = p.clone();
                q.integrity.as_mut().expect("checked above").flips.remove(i);
                out.push(q);
            }
            if is.flips[i].1 > 1 {
                let mut q = p.clone();
                q.integrity.as_mut().expect("checked above").flips[i].1 = 1;
                out.push(q);
            }
        }
    }
    // 0e. Drop the overlap scenario, or shrink its depth to 2.
    if p.overlap.is_some() {
        let mut q = p.clone();
        q.overlap = None;
        out.push(q);
    }
    if p.overlap.as_ref().is_some_and(|os| os.depth > 2) {
        let mut q = p.clone();
        q.overlap.as_mut().expect("checked above").depth = 2;
        out.push(q);
    }
    // 1. Drop a whole phase.
    for i in 0..p.phases.len() {
        if p.phases.len() > 1 {
            let mut q = p.clone();
            q.phases.remove(i);
            out.push(q);
        }
    }
    // 2. Drop a single statement.
    for i in 0..p.phases.len() {
        for j in 0..p.phases[i].len() {
            if p.phases.iter().map(Vec::len).sum::<usize>() > 1 {
                let mut q = p.clone();
                q.phases[i].remove(j);
                q.phases.retain(|ph| !ph.is_empty());
                out.push(q);
            }
        }
    }
    // 3. Halve the array length (raw sections clamped back in bounds).
    if p.n > 10 {
        let mut q = p.clone();
        q.n = (p.n / 2).max(10);
        for stmt in q.phases.iter_mut().flatten() {
            clamp_stmt(stmt, q.n);
        }
        out.push(q);
    }
    // 4. Per-statement simplifications.
    for i in 0..p.phases.len() {
        for j in 0..p.phases[i].len() {
            for s in simplify_stmt(&p.phases[i][j], p.n) {
                let mut q = p.clone();
                q.phases[i][j] = s;
                out.push(q);
            }
        }
    }
    // 5. Drop the machine down to the devices actually named (the
    // fault plan's and integrity spec's devices count as named).
    let fault_devices = p.fault.iter().flat_map(|f| {
        f.lost
            .into_iter()
            .chain(f.transients.iter().map(|&(d, _)| d))
    });
    let flip_devices = p
        .integrity
        .iter()
        .flat_map(|is| is.flips.iter().map(|&(d, _)| d));
    let used = p
        .phases
        .iter()
        .flatten()
        .flat_map(stmt_devices)
        .chain(fault_devices)
        .chain(flip_devices)
        .max()
        .map(|d| d as usize + 1)
        .unwrap_or(1);
    if used < p.n_devices {
        let mut q = p.clone();
        q.n_devices = used;
        out.push(q);
    }
    // 6. Drop trailing unused arrays.
    let touched: std::collections::BTreeSet<usize> =
        p.phases.iter().flatten().flat_map(|s| s.arrays()).collect();
    let needed = touched.iter().max().map(|&a| a + 1).unwrap_or(1);
    if needed < p.n_arrays {
        let mut q = p.clone();
        q.n_arrays = needed;
        out.push(q);
    }
    out
}

fn stmt_devices(s: &Stmt) -> Vec<u32> {
    match s {
        Stmt::Spread { devices, .. }
        | Stmt::Reduce { devices, .. }
        | Stmt::DataRegion { devices, .. }
        | Stmt::Halo { devices, .. } => devices.clone(),
        Stmt::RawEnter { device, .. }
        | Stmt::RawExit { device, .. }
        | Stmt::RawUpdate { device, .. } => vec![*device],
        Stmt::Bad { .. } => vec![0],
    }
}

fn clamp_stmt(s: &mut Stmt, n: usize) {
    if let Stmt::RawEnter { start, len, .. }
    | Stmt::RawExit { start, len, .. }
    | Stmt::RawUpdate { start, len, .. } = s
    {
        *start = (*start).min(n - 2);
        *len = (*len).min(n - *start).max(1);
    }
    // Stencil single-device chunks must still cover the loop.
    if let Stmt::Spread {
        devices,
        sched: Sched::Static { chunk },
        op: KernelOp::Stencil3 { .. },
        ..
    } = s
    {
        if devices.len() == 1 {
            *chunk = n;
        }
    }
}

/// Simpler variants of one statement (legality-preserving for the
/// stencil gap rule).
fn simplify_stmt(s: &Stmt, n: usize) -> Vec<Stmt> {
    let mut out = Vec::new();
    match s {
        Stmt::Spread {
            devices,
            sched,
            nowait,
            op,
        } => {
            if *nowait {
                out.push(Stmt::Spread {
                    devices: devices.clone(),
                    sched: sched.clone(),
                    nowait: false,
                    op: *op,
                });
            }
            if !matches!(sched, Sched::Static { .. }) {
                // Replace exotic schedules with a plain static one.
                let chunk = match sched {
                    Sched::Weighted { round, .. } => *round,
                    Sched::Dynamic { chunk } => *chunk,
                    Sched::Static { chunk } => *chunk,
                    // Auto resolves to one round over the whole loop.
                    Sched::Auto { .. } => n,
                };
                out.push(Stmt::Spread {
                    devices: devices.clone(),
                    sched: Sched::Static { chunk },
                    nowait: *nowait,
                    op: *op,
                });
            }
            if devices.len() > 1 {
                let sched = match (op, sched) {
                    // One device: a stencil needs one whole-loop chunk.
                    (KernelOp::Stencil3 { .. }, _) => Sched::Static { chunk: n },
                    _ => sched.clone(),
                };
                out.push(Stmt::Spread {
                    devices: vec![devices[0]],
                    sched,
                    nowait: *nowait,
                    op: *op,
                });
            }
        }
        Stmt::Reduce {
            devices,
            sched,
            a,
            partials,
            alpha,
            op,
        } if devices.len() > 1 || !matches!(sched, Sched::Static { .. }) => {
            out.push(Stmt::Reduce {
                devices: vec![devices[0]],
                sched: Sched::Static { chunk: n },
                a: *a,
                partials: *partials,
                alpha: *alpha,
                op: *op,
            });
        }
        // A Halo's device list never shrinks: `chunk = ⌈n/k⌉` is what
        // keeps halo'd chunks off the same device, and dropping devices
        // without recomputing it would manufacture an overlap error
        // unrelated to the original failure. Only the bump simplifies.
        Stmt::Halo {
            devices,
            chunk,
            a,
            dst,
            bump: Some(_),
        } => {
            out.push(Stmt::Halo {
                devices: devices.clone(),
                chunk: *chunk,
                a: *a,
                dst: *dst,
                bump: None,
            });
        }
        Stmt::DataRegion {
            devices,
            chunk,
            a,
            body_add,
            update_from,
            exit_from,
        } => {
            for (b, u) in [(None, false), (*body_add, false), (None, *update_from)] {
                if b != *body_add || u != *update_from {
                    out.push(Stmt::DataRegion {
                        devices: devices.clone(),
                        chunk: *chunk,
                        a: *a,
                        body_add: b,
                        update_from: u,
                        exit_from: *exit_from,
                    });
                }
            }
            if devices.len() > 1 {
                out.push(Stmt::DataRegion {
                    devices: vec![devices[0]],
                    chunk: *chunk,
                    a: *a,
                    body_add: *body_add,
                    update_from: *update_from,
                    exit_from: *exit_from,
                });
            }
        }
        _ => {}
    }
    out
}

/// Shrink `p` while `fails` keeps returning `true`. `p` itself must
/// fail. Deterministic for a deterministic predicate.
pub fn shrink(p: &Program, fails: &mut dyn FnMut(&Program) -> bool) -> Program {
    let mut cur = p.clone();
    let mut budget = 600usize;
    loop {
        let mut improved = false;
        for cand in candidates(&cur) {
            if budget == 0 {
                return cur;
            }
            budget -= 1;
            if fails(&cand) {
                cur = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::KernelOp;
    use crate::gen;

    /// The size metric the invariant tests bound: total statements plus
    /// the three structural dimensions. Every candidate in
    /// [`candidates`] leaves each term equal or smaller, so shrinking
    /// must never grow it.
    fn size(p: &Program) -> usize {
        p.phases.iter().map(Vec::len).sum::<usize>() + p.n + p.n_devices + p.n_arrays
    }

    fn program_with_stencil() -> Program {
        Program {
            n_devices: 3,
            n: 40,
            n_arrays: 4,
            phases: vec![
                vec![Stmt::Spread {
                    devices: vec![0, 1, 2],
                    sched: Sched::Dynamic { chunk: 5 },
                    nowait: true,
                    op: KernelOp::AddConst { a: 2, c: 1.0 },
                }],
                vec![Stmt::Spread {
                    devices: vec![2, 0],
                    sched: Sched::Static { chunk: 4 },
                    nowait: false,
                    op: KernelOp::Stencil3 { src: 0, dst: 1 },
                }],
            ],
            fault: None,
            pressure: None,
            straggler: None,
            integrity: None,
            overlap: None,
        }
    }

    #[test]
    fn shrinks_to_the_failing_statement() {
        let p = program_with_stencil();
        // Predicate: "fails whenever a stencil statement is present".
        let mut fails = |q: &Program| {
            q.phases.iter().flatten().any(|s| {
                matches!(
                    s,
                    Stmt::Spread {
                        op: KernelOp::Stencil3 { .. },
                        ..
                    }
                )
            })
        };
        let m = shrink(&p, &mut fails);
        assert_eq!(m.phases.len(), 1);
        assert_eq!(m.phases[0].len(), 1);
        assert!(m.n <= 10 + 10); // length halved down toward the floor
                                 // Deterministic: same input, same minimum.
        let m2 = shrink(&p, &mut fails);
        assert_eq!(format!("{m:?}"), format!("{m2:?}"));
    }

    #[test]
    fn shrinking_preserves_the_failure() {
        // Over generated programs of every flavour and a predicate that
        // the original satisfies, the minimum must still satisfy it —
        // `shrink` only ever commits candidates the predicate accepts.
        for seed in 0..12u64 {
            let p = match seed % 6 {
                0 => gen::gen_program_cfg(seed, false),
                1 => gen::gen_program_cfg(seed, true),
                2 => gen::gen_program_pressure(seed),
                3 => gen::gen_program_integrity(seed),
                4 => gen::gen_program_overlap(seed),
                _ => gen::gen_program_peer(seed),
            };
            let mut fails = |q: &Program| !q.phases.is_empty();
            assert!(fails(&p));
            let m = shrink(&p, &mut fails);
            assert!(fails(&m), "seed {seed}: shrinking lost the failure");
        }
    }

    #[test]
    fn shrinking_is_idempotent() {
        // A minimum is a fixed point: re-shrinking it changes nothing.
        for seed in 0..12u64 {
            let p = gen::gen_program_cfg(seed, seed % 2 == 1);
            // "Fails whenever array A0 is touched" — true of every
            // generated program's first statement or vacuously skipped.
            let mut fails =
                |q: &Program| q.phases.iter().flatten().any(|s| s.arrays().contains(&0));
            if !fails(&p) {
                continue;
            }
            let once = shrink(&p, &mut fails);
            let twice = shrink(&once, &mut fails);
            assert_eq!(
                format!("{once:?}"),
                format!("{twice:?}"),
                "seed {seed}: shrinking a minimum changed it"
            );
        }
    }

    #[test]
    fn shrinking_never_grows_the_program() {
        // Every candidate the shrinker ever proposes — not just the one
        // it commits — is bounded by the original program's size, and
        // so is the final minimum.
        for seed in 0..12u64 {
            let p = match seed % 3 {
                0 => gen::gen_program_cfg(seed, true),
                1 => gen::gen_program_pressure(seed),
                _ => gen::gen_program_peer(seed),
            };
            let bound = size(&p);
            let mut worst = 0usize;
            let mut fails = |q: &Program| {
                worst = worst.max(size(q));
                !q.phases.is_empty()
            };
            let m = shrink(&p, &mut fails);
            assert!(
                worst <= bound,
                "seed {seed}: a candidate grew to {worst} from {bound}"
            );
            assert!(size(&m) <= bound, "seed {seed}: the minimum grew");
        }
    }
}
