//! The sequential oracle: a pure interpreter that predicts what the
//! runtime must produce for a [`Program`] — final host arrays, reduction
//! values, leaked mappings — or the exact [`RtError`] it must raise.
//!
//! The oracle re-implements the paper's mapping rules over plain `Vec`s,
//! independently of the runtime's task graph, DMA engines and simulator:
//!
//! * enter of a section **contained** in a live entry reuses it
//!   (refcount + 1, **no copy** — OpenMP copies only on the
//!   absent→present transition);
//! * enter of a section that overlaps without containment is the §V-B
//!   *array extension* error;
//! * exit decrements (or, for `delete`, zeroes) the refcount; only the
//!   last release copies out (`from`/`tofrom`) and frees;
//! * `update` requires a containing live entry and copies through it;
//! * the first error poisons the program: nothing after it is
//!   interpreted.
//!
//! When the program carries a [`crate::ast::FaultSpec`], the lost
//! device is dead on arrival, which keeps the prediction closed-form:
//! a resilient spread construct with a survivor redistributes and
//! yields exactly the fault-free state (so the oracle interprets it as
//! if nothing happened); any other work landing on the corpse — a
//! fail-stop chunk, a data directive, a construct whose device list
//! holds no survivor — poisons the program with `DeviceLost` naming
//! that device. Transient copy bursts are absorbed by retry and
//! ignored entirely.
//!
//! Statements are interpreted in program order, chunks in chunk order.
//! That is sound because the generator guarantees statements inside one
//! phase touch disjoint arrays and each statement's chunks commute (the
//! fuzzer then *checks* that claim against the runtime under permuted
//! schedules).

use std::collections::HashMap;
use std::ops::Range;

use spread_core::schedule::distribute;
use spread_core::{degradation_events, plan_admission};
use spread_rt::map::MapType;
use spread_rt::section::ArrayId;
use spread_rt::{DegradationEvent, RtError, Section};

use crate::ast::{KernelOp, PressureSpec, Program, Sched, Stmt};
use crate::Fault;

/// What the runtime must observe at the end of the program.
#[derive(Clone, Debug, PartialEq)]
pub struct Expectation {
    /// Final host arrays (index = array number).
    pub arrays: Vec<Vec<f64>>,
    /// Reduction results in statement order.
    pub reduces: Vec<f64>,
    /// Per-device mapped sections at quiescence:
    /// `(array, start, len, refcount)` sorted — the shape of
    /// [`spread_rt::Runtime::mapping_snapshot`].
    pub mappings: Vec<Vec<(u32, usize, usize, u32)>>,
    /// The exact degradation-event sequence the runtime must record,
    /// in program order (pressure programs; empty otherwise).
    pub degradations: Vec<DegradationEvent>,
    /// The first error, if the program is illegal.
    pub error: Option<RtError>,
}

/// One modeled device-side buffer.
struct Entry {
    array: usize,
    start: usize,
    len: usize,
    refcount: u32,
    data: Vec<f64>,
}

impl Entry {
    fn contains(&self, a: usize, start: usize, len: usize) -> bool {
        self.array == a && start >= self.start && start + len <= self.start + self.len
    }

    fn overlaps(&self, a: usize, start: usize, len: usize) -> bool {
        self.array == a
            && len > 0
            && self.len > 0
            && start < self.start + self.len
            && self.start < start + len
    }

    fn section(&self) -> Section {
        Section::new(ArrayId(self.array as u32), self.start, self.len)
    }
}

/// The oracle's machine state.
struct Model {
    host: Vec<Vec<f64>>,
    /// Per-device entries in insertion order (mirrors the runtime's
    /// monotonically keyed `BTreeMap`, whose iteration order is
    /// insertion order).
    dev: Vec<Vec<Entry>>,
    reduces: Vec<f64>,
    fault: Option<Fault>,
    /// Device dead on arrival, from the program's `FaultSpec`.
    lost: Option<u32>,
    /// Spread constructs carry `spread_resilience(redistribute)`.
    resilient: bool,
    /// The memory-pressure scenario, when the program carries one.
    pressure: Option<PressureSpec>,
    /// Predicted degradation events, in program order.
    degradations: Vec<DegradationEvent>,
}

fn section(a: usize, r: &Range<usize>) -> Section {
    Section::new(ArrayId(a as u32), r.start, r.end - r.start)
}

/// The loss error, compared by `device` only (`what` names whichever
/// task happened to surface the loss first).
fn lost_err(device: u32) -> RtError {
    RtError::DeviceLost {
        device,
        what: String::new(),
    }
}

impl Model {
    fn new(p: &Program, fault: Option<Fault>) -> Self {
        Model {
            host: (0..p.n_arrays)
                .map(|k| (0..p.n).map(|i| Program::initial(k, i)).collect())
                .collect(),
            dev: (0..p.n_devices).map(|_| Vec::new()).collect(),
            reduces: Vec::new(),
            fault,
            lost: p.lost_device(),
            resilient: p.resilient(),
            pressure: p.pressure.clone(),
            degradations: Vec::new(),
        }
    }

    /// A spread/reduce chunk lands on `device`: poison when the
    /// construct cannot route around the corpse — fail-stop mode, or no
    /// survivor in its `devices(…)` list.
    fn spread_chunk_on(&self, device: u32, devices: &[u32]) -> Result<(), RtError> {
        match self.lost {
            Some(l) if l == device && (!self.resilient || devices.iter().all(|&d| d == l)) => {
                Err(lost_err(l))
            }
            _ => Ok(()),
        }
    }

    /// Data directives have no resilience clause: any leg on the corpse
    /// poisons the program, resilient or not.
    fn data_on(&self, device: u32) -> Result<(), RtError> {
        match self.lost {
            Some(l) if l == device => Err(lost_err(l)),
            _ => Ok(()),
        }
    }

    /// The `--inject recovery` canary: pretend recovery silently drops
    /// the lost device's chunks instead of replaying them, so the
    /// harness must flag the (correct) runtime's recovered values as a
    /// disagreement.
    fn drops_chunk(&self, device: u32) -> bool {
        self.fault == Some(Fault::RecoveryDropsLostChunk)
            && self.resilient
            && self.lost == Some(device)
    }

    /// Enter one map item on `device`. Mirrors `plan_enter` for a single
    /// clause (the per-clause transactionality is irrelevant to the
    /// predicted error value).
    fn enter(
        &mut self,
        device: u32,
        mt: MapType,
        a: usize,
        r: Range<usize>,
    ) -> Result<(), RtError> {
        if r.is_empty() {
            return Ok(());
        }
        let d = device as usize;
        if let Some(e) = self.dev[d]
            .iter_mut()
            .find(|e| e.contains(a, r.start, r.end - r.start))
        {
            e.refcount += 1;
            return Ok(());
        }
        if let Some(e) = self.dev[d]
            .iter()
            .find(|e| e.overlaps(a, r.start, r.end - r.start))
        {
            return Err(RtError::OverlapExtension {
                device,
                requested: section(a, &r),
                present: e.section(),
            });
        }
        let data = if mt.copies_in() {
            self.host[a][r.clone()].to_vec()
        } else {
            vec![0.0; r.len()]
        };
        self.dev[d].push(Entry {
            array: a,
            start: r.start,
            len: r.len(),
            refcount: 1,
            data,
        });
        Ok(())
    }

    /// Exit one map item on `device`. Mirrors `plan_exit` for a single
    /// clause.
    fn exit(&mut self, device: u32, mt: MapType, a: usize, r: Range<usize>) -> Result<(), RtError> {
        if r.is_empty() {
            return Ok(());
        }
        let d = device as usize;
        let Some(pos) = self.dev[d]
            .iter()
            .position(|e| e.contains(a, r.start, r.end - r.start))
        else {
            return Err(RtError::NotMapped {
                device,
                requested: section(a, &r),
            });
        };
        let e = &mut self.dev[d][pos];
        if mt == MapType::Delete {
            e.refcount = 0;
        } else {
            e.refcount -= 1;
        }
        if e.refcount == 0 {
            if mt.copies_out() {
                let off = r.start - e.start;
                let vals = e.data[off..off + r.len()].to_vec();
                self.host[a][r].copy_from_slice(&vals);
            }
            self.dev[d].remove(pos);
        }
        Ok(())
    }

    /// `target update` one direction. Mirrors `plan_update`.
    fn update(
        &mut self,
        device: u32,
        from: bool,
        a: usize,
        r: Range<usize>,
    ) -> Result<(), RtError> {
        if r.is_empty() {
            return Ok(());
        }
        let d = device as usize;
        let Some(e) = self.dev[d]
            .iter_mut()
            .find(|e| e.contains(a, r.start, r.end - r.start))
        else {
            return Err(RtError::NotMapped {
                device,
                requested: section(a, &r),
            });
        };
        let off = r.start - e.start;
        if from {
            let vals = e.data[off..off + r.len()].to_vec();
            self.host[a][r].copy_from_slice(&vals);
        } else {
            e.data[off..off + r.len()].copy_from_slice(&self.host[a][r]);
        }
        Ok(())
    }

    /// Read a device-resident slice (kernel argument resolution).
    fn read_dev(&self, device: u32, a: usize, r: Range<usize>) -> Vec<f64> {
        let e = self.dev[device as usize]
            .iter()
            .find(|e| e.contains(a, r.start, r.end - r.start))
            .expect("oracle kernel reads an unmapped section");
        let off = r.start - e.start;
        e.data[off..off + r.len()].to_vec()
    }

    /// Mutate a device-resident slice.
    fn write_dev(&mut self, device: u32, a: usize, r: Range<usize>, f: impl Fn(usize, f64) -> f64) {
        let e = self.dev[device as usize]
            .iter_mut()
            .find(|e| e.contains(a, r.start, r.end - r.start))
            .expect("oracle kernel writes an unmapped section");
        let off = r.start - e.start;
        for (j, i) in r.clone().enumerate() {
            e.data[off + j] = f(i, e.data[off + j]);
        }
    }

    /// Run `op`'s kernel for one chunk on `device` — against the mapped
    /// device buffers, exactly like `run_kernel`.
    fn kernel(&mut self, device: u32, op: &KernelOp, r: Range<usize>) {
        match *op {
            KernelOp::AddConst { a, c } => self.write_dev(device, a, r, |_, v| v + c),
            KernelOp::Scale { a, c } => self.write_dev(device, a, r, |_, v| v * c),
            KernelOp::Saxpy { x, y, alpha } => {
                let xs = self.read_dev(device, x, r.clone());
                let base = r.start;
                self.write_dev(device, y, r, |i, v| v + alpha * xs[i - base]);
            }
            KernelOp::Stencil3 { src, dst } => {
                let halo = r.start - 1..r.end + 1;
                let xs = self.read_dev(device, src, halo.clone());
                let base = halo.start;
                let drop_left = self.fault == Some(Fault::StencilDropsLeftHalo);
                self.write_dev(device, dst, r, |i, _| {
                    let left = if drop_left { 0.0 } else { xs[i - 1 - base] };
                    left + xs[i - base] + xs[i + 1 - base]
                });
            }
        }
    }

    /// The three phases of one `target` construct chunk: enter maps in
    /// clause order, kernel, exit with each map's exit-equivalent type.
    fn construct(
        &mut self,
        device: u32,
        maps: &[(MapType, usize, Range<usize>)],
        op: &KernelOp,
        r: Range<usize>,
    ) -> Result<(), RtError> {
        for (mt, a, mr) in maps {
            self.enter(device, *mt, *a, mr.clone())?;
        }
        self.kernel(device, op, r);
        for (mt, a, mr) in maps {
            let emt = match mt {
                MapType::From | MapType::ToFrom => MapType::From,
                MapType::To | MapType::Alloc => MapType::Release,
                t => *t,
            };
            self.exit(device, emt, *a, mr.clone())?;
        }
        Ok(())
    }
}

/// The device-footprint of one piece of a spread kernel: the mapped
/// section lengths (halo arithmetic included) in bytes — exactly what
/// `TargetSpread::footprint_bytes` computes from its map clauses, so
/// the oracle's [`plan_admission`] call sees the same numbers as the
/// runtime's.
fn op_footprint(op: &KernelOp, start: usize, len: usize) -> u64 {
    op_maps(op, &(start..start + len))
        .iter()
        .map(|(_, _, mr)| (mr.end - mr.start) as u64 * 8)
        .sum()
}

/// Replay the runtime's launch-time admission planning for one spread
/// statement: same planner ([`plan_admission`]), same headroom (the
/// [`PressureSpec`]'s closed form — blocking constructs release every
/// mapping before the next launch, so program-used memory is zero and
/// headroom is `cap − sustained` at every construct), same footprint
/// arithmetic. Returns the predicted degradation events, or the exact
/// [`RtError::Degraded`] the construct must raise.
fn plan_pressure(
    m: &mut Model,
    ps: &PressureSpec,
    devices: &[u32],
    chunks: &[spread_core::schedule::Chunk],
    op: &KernelOp,
) -> Result<(), RtError> {
    let headroom: HashMap<u32, u64> = devices.iter().map(|&d| (d, ps.headroom(d))).collect();
    let footprint = |start: usize, len: usize| op_footprint(op, start, len);
    let pieces = plan_admission(chunks, devices, &headroom, &footprint, ps.policy)?;
    m.degradations.extend(degradation_events(&pieces));
    Ok(())
}

/// The map clauses of a spread kernel for one chunk range.
fn op_maps(op: &KernelOp, r: &Range<usize>) -> Vec<(MapType, usize, Range<usize>)> {
    match *op {
        KernelOp::AddConst { a, .. } | KernelOp::Scale { a, .. } => {
            vec![(MapType::ToFrom, a, r.clone())]
        }
        KernelOp::Saxpy { x, y, .. } => {
            vec![(MapType::To, x, r.clone()), (MapType::ToFrom, y, r.clone())]
        }
        KernelOp::Stencil3 { src, dst } => vec![
            (MapType::To, src, r.start - 1..r.end + 1),
            (MapType::From, dst, r.clone()),
        ],
    }
}

fn interpret_stmt(m: &mut Model, p: &Program, stmt: &Stmt) -> Result<(), RtError> {
    match stmt {
        Stmt::Spread {
            devices, sched, op, ..
        } => {
            let range = op.range(p.n);
            let chunks = distribute(range, devices, &sched.oracle_schedule(p.n, devices.len()));
            if let Some(ps) = m.pressure.clone() {
                // The admission plan decides *where* degradation lands;
                // the values stay bit-identical to the scheduled
                // placement (fresh-in, fresh-out, disjoint sections),
                // so the interpretation below is unchanged.
                plan_pressure(m, &ps, devices, &chunks, op)?;
            }
            for chunk in chunks {
                // Dynamic chunks carry no device; any placement yields
                // the same host state (fresh-in, fresh-out, disjoint
                // sections), so model them on the list head.
                let device = chunk.device.unwrap_or(devices[0]);
                m.spread_chunk_on(device, devices)?;
                if m.drops_chunk(device) {
                    continue;
                }
                m.construct(device, &op_maps(op, &chunk.range()), op, chunk.range())?;
            }
            Ok(())
        }
        Stmt::Reduce {
            devices,
            sched,
            a,
            partials,
            alpha,
            op,
        } => {
            let range = 0..p.n;
            let alpha = *alpha;
            let a = *a;
            let partials_ix = *partials;
            for chunk in distribute(
                range.clone(),
                devices,
                &sched.oracle_schedule(p.n, devices.len()),
            ) {
                let device = chunk.device.unwrap_or(devices[0]);
                m.spread_chunk_on(device, devices)?;
                if m.drops_chunk(device) {
                    continue;
                }
                let r = chunk.range();
                let maps = vec![
                    (MapType::To, a, r.clone()),
                    (MapType::From, partials_ix, r.clone()),
                ];
                for (mt, arr, mr) in &maps {
                    m.enter(device, *mt, *arr, mr.clone())?;
                }
                let xs = m.read_dev(device, a, r.clone());
                let base = r.start;
                m.write_dev(device, partials_ix, r.clone(), |i, _| alpha * xs[i - base]);
                for (mt, arr, mr) in &maps {
                    let emt = match mt {
                        MapType::From => MapType::From,
                        _ => MapType::Release,
                    };
                    m.exit(device, emt, *arr, mr.clone())?;
                }
            }
            let mut fold = range.clone();
            if m.fault == Some(Fault::ReduceSkipsLast) {
                fold.end -= 1;
            }
            let value = fold
                .map(|i| m.host[partials_ix][i])
                .fold(op.identity(), |acc, v| op.combine(acc, v));
            m.reduces.push(value);
            Ok(())
        }
        Stmt::DataRegion {
            devices,
            chunk,
            a,
            body_add,
            update_from,
            exit_from,
        } => {
            let sched = Sched::Static { chunk: *chunk };
            let chunks = distribute(0..p.n, devices, &sched.to_schedule());
            for c in &chunks {
                m.data_on(c.device.unwrap())?;
                m.enter(c.device.unwrap(), MapType::To, *a, c.range())?;
            }
            if let Some(cv) = body_add {
                let op = KernelOp::AddConst { a: *a, c: *cv };
                for c in &chunks {
                    let r = c.range();
                    m.construct(c.device.unwrap(), &op_maps(&op, &r), &op, r)?;
                }
            }
            if *update_from {
                for c in &chunks {
                    m.update(c.device.unwrap(), true, *a, c.range())?;
                }
            }
            let emt = if *exit_from {
                MapType::From
            } else {
                MapType::Release
            };
            for c in &chunks {
                m.exit(c.device.unwrap(), emt, *a, c.range())?;
            }
            Ok(())
        }
        Stmt::Halo {
            devices,
            chunk,
            a,
            dst,
            bump,
        } => {
            let n = p.n;
            let sched = Sched::Static { chunk: *chunk };
            let chunks = distribute(0..n, devices, &sched.to_schedule());
            let halo = |r: &Range<usize>| r.start.saturating_sub(1)..(r.end + 1).min(n);
            // Enter-spread `to` of the halo'd chunks.
            for c in &chunks {
                m.enter(c.device.unwrap(), MapType::To, *a, halo(&c.range()))?;
            }
            // Optional body bump on the device images: the reuse path —
            // refcount 2, no copies — so the host keeps the old values
            // and every sibling copy goes stale.
            if let Some(cv) = bump {
                let op = KernelOp::AddConst { a: *a, c: *cv };
                for c in &chunks {
                    m.construct(c.device.unwrap(), &op_maps(&op, &c.range()), &op, c.range())?;
                }
            }
            // The halo refresh. The `exchange(…)` route is semantically
            // invisible — a peer pull is only legal when the sibling's
            // bytes equal the host image — so the oracle models both
            // one-element halos as plain host→device updates.
            for c in &chunks {
                let r = c.range();
                let d = c.device.unwrap();
                m.update(d, false, *a, r.start.saturating_sub(1)..r.start)?;
                m.update(d, false, *a, r.end..(r.end + 1).min(n))?;
            }
            // Clamped 3-point stencil over the refreshed window: reuses
            // the halo'd `a` mapping, allocates `dst`, copies the body
            // out on exit — halo bytes land in the final host state.
            for c in &chunks {
                let d = c.device.unwrap();
                let r = c.range();
                let hr = halo(&r);
                m.enter(d, MapType::To, *a, hr.clone())?;
                m.enter(d, MapType::From, *dst, r.clone())?;
                let xs = m.read_dev(d, *a, hr.clone());
                let base = hr.start;
                m.write_dev(d, *dst, r.clone(), |i, _| {
                    let l = if i == 0 { i } else { i - 1 };
                    let rr = if i == n - 1 { i } else { i + 1 };
                    xs[l - base] + xs[i - base] + xs[rr - base]
                });
                m.exit(d, MapType::Release, *a, hr)?;
                m.exit(d, MapType::From, *dst, r)?;
            }
            // Exit-spread release of the halo'd region.
            for c in &chunks {
                m.exit(c.device.unwrap(), MapType::Release, *a, halo(&c.range()))?;
            }
            Ok(())
        }
        Stmt::RawEnter {
            device,
            a,
            start,
            len,
        } => {
            m.data_on(*device)?;
            m.enter(*device, MapType::To, *a, *start..start + len)
        }
        Stmt::RawExit {
            device,
            a,
            start,
            len,
            delete,
        } => {
            m.data_on(*device)?;
            let mt = if *delete {
                MapType::Delete
            } else {
                MapType::From
            };
            m.exit(*device, mt, *a, *start..start + len)
        }
        Stmt::RawUpdate {
            device,
            a,
            start,
            len,
            from,
        } => {
            m.data_on(*device)?;
            m.update(*device, *from, *a, *start..start + len)
        }
        // The executor compares `InvalidDirective` by variant only, so
        // the oracle does not reproduce the message.
        Stmt::Bad { .. } => Err(RtError::InvalidDirective(String::new())),
    }
}

/// Interpret `p` sequentially and predict the runtime-observable
/// outcome. `fault` perturbs the model deliberately (see [`Fault`]) so
/// the harness can prove to itself that disagreements are detected,
/// shrunk and replayed.
pub fn predict(p: &Program, fault: Option<Fault>) -> Expectation {
    let mut m = Model::new(p, fault);
    let mut error = None;
    'outer: for phase in &p.phases {
        for stmt in phase {
            if let Err(e) = interpret_stmt(&mut m, p, stmt) {
                error = Some(e);
                break 'outer;
            }
        }
    }
    let mappings = m
        .dev
        .iter()
        .map(|entries| {
            let mut v: Vec<(u32, usize, usize, u32)> = entries
                .iter()
                .map(|e| (e.array as u32, e.start, e.len, e.refcount))
                .collect();
            v.sort_unstable();
            v
        })
        .collect();
    Expectation {
        arrays: m.host,
        reduces: m.reduces,
        mappings,
        degradations: m.degradations,
        error,
    }
}

/// The exact multiset of peer copies an `exchange(auto)` execution of
/// `p` must perform, as sorted `(src, dst, array, start, len)` tuples.
///
/// Closed-form because the generator's halo invariants make the route
/// deterministic: `chunk = ⌈n/k⌉ ≥ 2` gives each device at most one
/// chunk, so a one-element halo is valid on exactly one sibling — the
/// neighbouring chunk's device — and the planner has no choice to make.
/// With a `bump`, every sibling body byte diverges from the host image,
/// so *no* halo may route peer; without one, *every* non-empty halo
/// must.
pub fn predict_peer_copies(p: &Program) -> Vec<(u32, u32, u32, usize, usize)> {
    let mut want = Vec::new();
    for stmt in p.phases.iter().flatten() {
        let Stmt::Halo {
            devices,
            chunk,
            a,
            bump: None,
            ..
        } = stmt
        else {
            continue;
        };
        let sched = Sched::Static { chunk: *chunk };
        let chunks = distribute(0..p.n, devices, &sched.to_schedule());
        for (i, c) in chunks.iter().enumerate() {
            let r = c.range();
            let dst = c.device.unwrap();
            if r.start > 0 {
                want.push((
                    chunks[i - 1].device.unwrap(),
                    dst,
                    *a as u32,
                    r.start - 1,
                    1,
                ));
            }
            if r.end < p.n {
                want.push((chunks[i + 1].device.unwrap(), dst, *a as u32, r.end, 1));
            }
        }
    }
    want.sort_unstable();
    want
}

#[cfg(test)]
mod tests {
    use super::*;
    use spread_core::reduction::ReduceOp;

    fn simple(n_devices: usize, phases: Vec<Vec<Stmt>>) -> Program {
        Program {
            n_devices,
            n: 16,
            n_arrays: 2,
            phases,
            fault: None,
            pressure: None,
        }
    }

    #[test]
    fn addconst_adds_everywhere() {
        let p = simple(
            2,
            vec![vec![Stmt::Spread {
                devices: vec![0, 1],
                sched: Sched::Static { chunk: 4 },
                nowait: false,
                op: KernelOp::AddConst { a: 0, c: 2.0 },
            }]],
        );
        let e = predict(&p, None);
        assert!(e.error.is_none());
        for i in 0..16 {
            assert_eq!(e.arrays[0][i], Program::initial(0, i) + 2.0);
            assert_eq!(e.arrays[1][i], Program::initial(1, i));
        }
        assert!(e.mappings.iter().all(|d| d.is_empty()));
    }

    #[test]
    fn stencil_matches_reference() {
        let p = simple(
            2,
            vec![vec![Stmt::Spread {
                devices: vec![0, 1],
                sched: Sched::Static { chunk: 4 },
                nowait: false,
                op: KernelOp::Stencil3 { src: 0, dst: 1 },
            }]],
        );
        let e = predict(&p, None);
        for i in 1..15 {
            let want =
                Program::initial(0, i - 1) + Program::initial(0, i) + Program::initial(0, i + 1);
            assert_eq!(e.arrays[1][i], want);
        }
        // Boundary elements keep their initial values.
        assert_eq!(e.arrays[1][0], Program::initial(1, 0));
    }

    #[test]
    fn region_release_discards_and_update_preserves() {
        // Body adds 5, exit releases: host unchanged…
        let discard = simple(
            1,
            vec![vec![Stmt::DataRegion {
                devices: vec![0],
                chunk: 16,
                a: 0,
                body_add: Some(5.0),
                update_from: false,
                exit_from: false,
            }]],
        );
        let e = predict(&discard, None);
        assert_eq!(e.arrays[0][3], Program::initial(0, 3));
        // …but an update-from before the release captures the result.
        let update = simple(
            1,
            vec![vec![Stmt::DataRegion {
                devices: vec![0],
                chunk: 16,
                a: 0,
                body_add: Some(5.0),
                update_from: true,
                exit_from: false,
            }]],
        );
        let e = predict(&update, None);
        assert_eq!(e.arrays[0][3], Program::initial(0, 3) + 5.0);
    }

    #[test]
    fn raw_overlap_is_extension_error() {
        let p = simple(
            1,
            vec![vec![
                Stmt::RawEnter {
                    device: 0,
                    a: 0,
                    start: 0,
                    len: 8,
                },
                Stmt::RawEnter {
                    device: 0,
                    a: 0,
                    start: 4,
                    len: 8,
                },
            ]],
        );
        let e = predict(&p, None);
        match e.error {
            Some(RtError::OverlapExtension {
                device, requested, ..
            }) => {
                assert_eq!(device, 0);
                assert_eq!(requested.start, 4);
            }
            other => panic!("expected extension error, got {other:?}"),
        }
    }

    #[test]
    fn raw_leak_predicts_mapping_snapshot() {
        let p = simple(
            2,
            vec![vec![
                Stmt::RawEnter {
                    device: 1,
                    a: 0,
                    start: 2,
                    len: 6,
                },
                Stmt::RawEnter {
                    device: 1,
                    a: 0,
                    start: 2,
                    len: 6,
                },
            ]],
        );
        let e = predict(&p, None);
        assert!(e.error.is_none());
        assert_eq!(e.mappings[0], vec![]);
        assert_eq!(e.mappings[1], vec![(0, 2, 6, 2)]);
    }

    #[test]
    fn resilient_loss_predicts_the_fault_free_state() {
        use crate::ast::{FaultMode, FaultSpec};
        let spread = Stmt::Spread {
            devices: vec![0, 1],
            sched: Sched::Static { chunk: 4 },
            nowait: false,
            op: KernelOp::AddConst { a: 0, c: 2.0 },
        };
        let clean = simple(2, vec![vec![spread.clone()]]);
        let mut faulted = clean.clone();
        faulted.fault = Some(FaultSpec {
            lost: Some(1),
            mode: FaultMode::Resilient,
            transients: vec![(0, 2)],
        });
        let a = predict(&clean, None);
        let b = predict(&faulted, None);
        assert!(b.error.is_none(), "{:?}", b.error);
        assert_eq!(a.arrays, b.arrays, "redistribution is bit-invisible");
        // …but the recovery canary diverges.
        let c = predict(&faulted, Some(Fault::RecoveryDropsLostChunk));
        assert_ne!(a.arrays, c.arrays, "canary must perturb the prediction");
        // The canary is inert without a resilient loss.
        let d = predict(&clean, Some(Fault::RecoveryDropsLostChunk));
        assert_eq!(a.arrays, d.arrays);
    }

    #[test]
    fn fail_stop_loss_predicts_device_lost() {
        use crate::ast::{FaultMode, FaultSpec};
        let mut p = simple(
            2,
            vec![vec![Stmt::Spread {
                devices: vec![1, 0],
                sched: Sched::Static { chunk: 4 },
                nowait: false,
                op: KernelOp::Scale { a: 0, c: 2.0 },
            }]],
        );
        p.fault = Some(FaultSpec {
            lost: Some(1),
            mode: FaultMode::FailStop,
            transients: vec![],
        });
        let e = predict(&p, None);
        assert!(
            matches!(e.error, Some(RtError::DeviceLost { device: 1, .. })),
            "{:?}",
            e.error
        );
        // A resilient construct with no survivor in its list also dies.
        p.fault.as_mut().unwrap().mode = FaultMode::Resilient;
        p.phases[0][0] = Stmt::Spread {
            devices: vec![1],
            sched: Sched::Static { chunk: 16 },
            nowait: false,
            op: KernelOp::Scale { a: 0, c: 2.0 },
        };
        let e = predict(&p, None);
        assert!(
            matches!(e.error, Some(RtError::DeviceLost { device: 1, .. })),
            "{:?}",
            e.error
        );
        // A loss nothing lands on is invisible.
        p.phases[0][0] = Stmt::Spread {
            devices: vec![0],
            sched: Sched::Static { chunk: 16 },
            nowait: false,
            op: KernelOp::Scale { a: 0, c: 2.0 },
        };
        assert!(predict(&p, None).error.is_none());
    }

    #[test]
    fn pressure_prediction_names_the_degradations() {
        use spread_core::PressurePolicy;
        use spread_rt::DegradationKind;
        // Two devices, chunk 8 ⇒ chunks [0,8) on d0 and [8,16) on d1,
        // 64 bytes each. Device 0 keeps 64 bytes of headroom, device 1
        // is squeezed to 24 — its chunk must move to device 0.
        let mk = |policy, sustained: Vec<(u32, u64)>| {
            let mut p = simple(
                2,
                vec![vec![Stmt::Spread {
                    devices: vec![0, 1],
                    sched: Sched::Static { chunk: 8 },
                    nowait: false,
                    op: KernelOp::AddConst { a: 0, c: 2.0 },
                }]],
            );
            p.pressure = Some(crate::ast::PressureSpec {
                policy,
                cap_bytes: 64,
                sustained,
            });
            p
        };
        let healthy = mk(PressurePolicy::Split, vec![]);
        let e = predict(&healthy, None);
        assert!(e.error.is_none());
        assert!(e.degradations.is_empty(), "{:?}", e.degradations);

        let shrunk = mk(PressurePolicy::Split, vec![(1, 40)]);
        let e = predict(&shrunk, None);
        assert!(e.error.is_none());
        assert_eq!(e.degradations.len(), 1, "{:?}", e.degradations);
        assert_eq!(e.degradations[0].kind, DegradationKind::AdmissionShrunk);
        assert_eq!(e.degradations[0].device, Some(0));
        assert_eq!(e.degradations[0].start, 8);
        assert_eq!(e.degradations[0].bytes, 64);
        // Values are placement-independent.
        assert_eq!(e.arrays, predict(&healthy, None).arrays);

        // Both devices hopeless: split fails Degraded, spill completes
        // through the host with the same values.
        let hopeless = vec![(0u32, 64u64), (1, 64)];
        let e = predict(&mk(PressurePolicy::Split, hopeless.clone()), None);
        assert!(
            matches!(e.error, Some(RtError::Degraded { .. })),
            "{:?}",
            e.error
        );
        let e = predict(&mk(PressurePolicy::Spill, hopeless), None);
        assert!(e.error.is_none(), "{:?}", e.error);
        assert_eq!(e.degradations.len(), 2);
        assert!(e
            .degradations
            .iter()
            .all(|d| d.kind == DegradationKind::Spilled && d.device.is_none() && d.bytes == 64));
        assert_eq!(e.arrays, predict(&healthy, None).arrays);
    }

    #[test]
    fn reduce_fault_changes_prediction() {
        let stmt = Stmt::Reduce {
            devices: vec![0],
            sched: Sched::Static { chunk: 8 },
            a: 0,
            partials: 1,
            alpha: 2.0,
            op: ReduceOp::Sum,
        };
        let p = simple(1, vec![vec![stmt]]);
        let honest = predict(&p, None);
        let faulty = predict(&p, Some(Fault::ReduceSkipsLast));
        assert_ne!(honest.reduces, faulty.reduces);
    }
}
