//! The sequential oracle, as a thin driver over the `spread-semantics`
//! small-step machine: each statement is *lowered* to the spec's
//! [`Directive`] alphabet and [`spread_semantics::step`] predicts what
//! the runtime must produce for a [`Program`] — final host arrays,
//! reduction values, leaked mappings, degradation events, peer routes —
//! or the exact [`RtError`] it must raise.
//!
//! The prediction rules themselves (presence reuse vs the §V-B
//! extension error, last-release copy-out, fail-stop vs redistribution,
//! peer-route eligibility, …) live in `spread-semantics`, one named
//! transition rule each; this module owns only the *lowering* — how the
//! fuzzer's surface statements decompose into enter/construct/update/
//! exit directives — and the vocabulary conversions back to `RtError`
//! and [`DegradationEvent`] at the boundary. The first error poisons
//! the program: nothing after it is interpreted.
//!
//! When the program carries a [`crate::ast::FaultSpec`], the lost
//! device is dead on arrival in the machine's initial [`State`], which
//! keeps the prediction closed-form: a resilient spread construct with
//! a survivor redistributes bit-invisibly (rule `S-Redistribute`); any
//! other work landing on the corpse poisons the program with
//! `DeviceLost` naming that device (`S-FailStop` / `S-Lost`).
//! Transient copy bursts are absorbed by retry and ignored entirely.
//!
//! Statements are interpreted in program order, chunks in chunk order.
//! That is sound because the generator guarantees statements inside one
//! phase touch disjoint arrays and each statement's chunks commute (the
//! fuzzer then *checks* that claim against the runtime under permuted
//! schedules).

use std::collections::HashMap;
use std::ops::Range;

use spread_core::schedule::distribute;
use spread_core::{spec_admission, IntegrityMode};
use spread_rt::section::ArrayId;
use spread_rt::{DegradationEvent, DegradationKind, RtError, Section};
use spread_semantics::{
    step, AbsSection, DegKind, Degradation, Directive, FoldOp, IntegritySem, KernelSem, Leg,
    MapKind, Perturb, Piece, SemError, State, UpdateLeg,
};

use crate::ast::{KernelOp, Program, Sched, Stmt};
use crate::Fault;

/// What the runtime must observe at the end of the program.
#[derive(Clone, Debug, PartialEq)]
pub struct Expectation {
    /// Final host arrays (index = array number).
    pub arrays: Vec<Vec<f64>>,
    /// Reduction results in statement order.
    pub reduces: Vec<f64>,
    /// Per-device mapped sections at quiescence:
    /// `(array, start, len, refcount)` sorted — the shape of
    /// [`spread_rt::Runtime::mapping_snapshot`].
    pub mappings: Vec<Vec<(u32, usize, usize, u32)>>,
    /// The exact degradation-event sequence the runtime must record,
    /// in program order (pressure programs; empty otherwise).
    pub degradations: Vec<DegradationEvent>,
    /// The first error, if the program is illegal.
    pub error: Option<RtError>,
}

/// The loss error, compared by `device` only (`what` names whichever
/// task happened to surface the loss first).
fn lost_err(device: u32) -> RtError {
    RtError::DeviceLost {
        device,
        what: String::new(),
    }
}

/// The spec's section for `array[r]`.
fn sec(a: usize, r: Range<usize>) -> AbsSection {
    AbsSection::from_range(a as u32, r)
}

/// The spec's section back in the runtime's vocabulary.
fn rt_section(s: AbsSection) -> Section {
    Section::new(ArrayId(s.array), s.start, s.len)
}

/// Lift the machine's predicted error into the exact [`RtError`] the
/// executor compares (`InvalidDirective` by variant, `DeviceLost` by
/// device — see `errors_match`).
fn rt_err(e: SemError) -> RtError {
    match e {
        SemError::OverlapExtension {
            device,
            requested,
            present,
        } => RtError::OverlapExtension {
            device,
            requested: rt_section(requested),
            present: rt_section(present),
        },
        SemError::NotMapped { device, requested } => RtError::NotMapped {
            device,
            requested: rt_section(requested),
        },
        SemError::DeviceLost { device } => lost_err(device),
        SemError::Invalid => RtError::InvalidDirective(String::new()),
        // Compared by device only (`errors_match`): the runtime's
        // section names whichever tainted drain surfaced first.
        SemError::IntegrityViolation { device } => RtError::IntegrityViolation {
            device,
            section: Section::new(ArrayId(0), 0, 0),
        },
        SemError::Degraded {
            device,
            what,
            bytes,
        } => RtError::Degraded {
            device,
            what,
            bytes,
        },
    }
}

/// The spec's degradation record in the runtime's event vocabulary.
fn deg_event(d: &Degradation) -> DegradationEvent {
    DegradationEvent {
        kind: match d.kind {
            DegKind::AdmissionShrunk => DegradationKind::AdmissionShrunk,
            DegKind::ChunkSplit => DegradationKind::ChunkSplit,
            DegKind::Spilled => DegradationKind::Spilled,
        },
        device: d.device,
        start: d.start,
        len: d.len,
        bytes: d.bytes,
    }
}

/// The machine perturbation of an injected oracle canary.
/// `SpillDropsSlice`, `PeerCorrupt`, `RescueDoubleCommit`,
/// `IntegrityCorrupt` and `OverlapLeak` perturb the *runtime*, not the
/// oracle, so they map to `None` and leave the spec honest.
fn perturb_of(fault: Option<Fault>) -> Option<Perturb> {
    match fault? {
        Fault::StencilDropsLeftHalo => Some(Perturb::StencilDropsLeftHalo),
        Fault::ReduceSkipsLast => Some(Perturb::ReduceSkipsLast),
        Fault::RecoveryDropsLostChunk => Some(Perturb::RecoveryDropsLostChunk),
        Fault::SpillDropsSlice
        | Fault::PeerCorrupt
        | Fault::RescueDoubleCommit
        | Fault::IntegrityCorrupt
        | Fault::OverlapLeak => None,
    }
}

/// The spec's `spread_integrity(…)` clause for the program's spread
/// statements (data-region and halo helper constructs never carry the
/// clause, matching the executor).
fn integrity_sem(p: &Program) -> IntegritySem {
    match p.integrity_mode() {
        None | Some(IntegrityMode::Off) => IntegritySem::Off,
        Some(IntegrityMode::Verify) => IntegritySem::Verify,
        Some(IntegrityMode::Heal) => IntegritySem::Heal,
    }
}

/// The spec kernel of a spread statement's [`KernelOp`].
fn kernel_of(op: &KernelOp) -> KernelSem {
    match *op {
        KernelOp::AddConst { a, c } => KernelSem::AddConst { a: a as u32, c },
        KernelOp::Scale { a, c } => KernelSem::Scale { a: a as u32, c },
        KernelOp::Saxpy { x, y, alpha } => KernelSem::Saxpy {
            x: x as u32,
            y: y as u32,
            alpha,
        },
        KernelOp::Stencil3 { src, dst } => KernelSem::Stencil3 {
            src: src as u32,
            dst: dst as u32,
        },
    }
}

/// The map clauses of a spread kernel for one chunk range — the same
/// shapes `build_target` derives from the statement (halo arithmetic
/// included).
fn op_maps(op: &KernelOp, r: &Range<usize>) -> Vec<(MapKind, AbsSection)> {
    match *op {
        KernelOp::AddConst { a, .. } | KernelOp::Scale { a, .. } => {
            vec![(MapKind::ToFrom, sec(a, r.clone()))]
        }
        KernelOp::Saxpy { x, y, .. } => vec![
            (MapKind::To, sec(x, r.clone())),
            (MapKind::ToFrom, sec(y, r.clone())),
        ],
        KernelOp::Stencil3 { src, dst } => vec![
            (MapKind::To, sec(src, r.start - 1..r.end + 1)),
            (MapKind::From, sec(dst, r.clone())),
        ],
    }
}

/// The device-footprint of one piece of a spread kernel: the mapped
/// section lengths (halo arithmetic included) in bytes — exactly what
/// `TargetSpread::footprint_bytes` computes from its map clauses, so
/// the oracle's admission call sees the same numbers as the runtime's.
fn op_footprint(op: &KernelOp, start: usize, len: usize) -> u64 {
    op_maps(op, &(start..start + len))
        .iter()
        .map(|(_, s)| s.len as u64 * 8)
        .sum()
}

/// Lower one statement to the machine's directive sequence.
///
/// This is the whole surface-syntax-to-spec translation: every
/// prediction the old per-mode oracle code computed ad hoc now falls
/// out of stepping these directives through `spread-semantics`.
fn lower_stmt(p: &Program, stmt: &Stmt) -> Vec<Directive> {
    match stmt {
        Stmt::Spread {
            devices, sched, op, ..
        } => {
            let chunks = distribute(
                op.range(p.n),
                devices,
                &sched.oracle_schedule(p.n, devices.len()),
            );
            // The launch-time admission verdict under `spread_pressure`:
            // same planner, same closed-form headroom (blocking
            // constructs release every mapping before the next launch,
            // so headroom is `cap − sustained` at every construct),
            // same footprint arithmetic as the runtime.
            let admission = p.pressure.as_ref().map(|ps| {
                let headroom: HashMap<u32, u64> =
                    devices.iter().map(|&d| (d, ps.headroom(d))).collect();
                let footprint = |start: usize, len: usize| op_footprint(op, start, len);
                spec_admission(&chunks, devices, &headroom, &footprint, ps.policy)
            });
            let pieces = chunks
                .iter()
                .map(|c| Piece {
                    // Dynamic chunks carry no device; any placement
                    // yields the same host state (fresh-in, fresh-out,
                    // disjoint sections), so model them on the list
                    // head.
                    device: c.device.unwrap_or(devices[0]),
                    start: c.start,
                    len: c.len,
                    maps: op_maps(op, &c.range()),
                    kernel: kernel_of(op),
                })
                .collect();
            vec![Directive::SpreadConstruct {
                devices: devices.clone(),
                resilient: p.resilient(),
                admission,
                integrity: integrity_sem(p),
                pieces,
            }]
        }
        Stmt::Reduce {
            devices,
            sched,
            a,
            partials,
            alpha,
            op,
        } => {
            let chunks = distribute(0..p.n, devices, &sched.oracle_schedule(p.n, devices.len()));
            let pieces = chunks
                .iter()
                .map(|c| Piece {
                    device: c.device.unwrap_or(devices[0]),
                    start: c.start,
                    len: c.len,
                    maps: vec![
                        (MapKind::To, sec(*a, c.range())),
                        (MapKind::From, sec(*partials, c.range())),
                    ],
                    kernel: KernelSem::Partials {
                        a: *a as u32,
                        partials: *partials as u32,
                        alpha: *alpha,
                    },
                })
                .collect();
            vec![
                Directive::SpreadConstruct {
                    devices: devices.clone(),
                    resilient: p.resilient(),
                    admission: None,
                    integrity: IntegritySem::Off,
                    pieces,
                },
                Directive::HostFold {
                    partials: *partials as u32,
                    start: 0,
                    end: p.n,
                    op: match op {
                        spread_core::reduction::ReduceOp::Sum => FoldOp::Sum,
                        spread_core::reduction::ReduceOp::Max => FoldOp::Max,
                        spread_core::reduction::ReduceOp::Min => FoldOp::Min,
                    },
                },
            ]
        }
        Stmt::DataRegion {
            devices,
            chunk,
            a,
            body_add,
            update_from,
            exit_from,
        } => {
            let sched = Sched::Static { chunk: *chunk };
            let chunks = distribute(0..p.n, devices, &sched.to_schedule());
            let mut out = vec![Directive::EnterData(
                chunks
                    .iter()
                    .map(|c| Leg {
                        device: c.device.unwrap(),
                        kind: MapKind::To,
                        section: sec(*a, c.range()),
                    })
                    .collect(),
            )];
            if let Some(cv) = body_add {
                let op = KernelOp::AddConst { a: *a, c: *cv };
                out.push(Directive::SpreadConstruct {
                    devices: devices.clone(),
                    resilient: false,
                    admission: None,
                    integrity: IntegritySem::Off,
                    pieces: chunks
                        .iter()
                        .map(|c| Piece {
                            device: c.device.unwrap(),
                            start: c.start,
                            len: c.len,
                            maps: op_maps(&op, &c.range()),
                            kernel: kernel_of(&op),
                        })
                        .collect(),
                });
            }
            if *update_from {
                out.push(Directive::UpdateData(
                    chunks
                        .iter()
                        .map(|c| UpdateLeg {
                            device: c.device.unwrap(),
                            from_device: true,
                            exchange: false,
                            section: sec(*a, c.range()),
                        })
                        .collect(),
                ));
            }
            let emt = if *exit_from {
                MapKind::From
            } else {
                MapKind::Release
            };
            out.push(Directive::ExitData(
                chunks
                    .iter()
                    .map(|c| Leg {
                        device: c.device.unwrap(),
                        kind: emt,
                        section: sec(*a, c.range()),
                    })
                    .collect(),
            ));
            out
        }
        Stmt::Halo {
            devices,
            chunk,
            a,
            dst,
            bump,
        } => {
            let n = p.n;
            let sched = Sched::Static { chunk: *chunk };
            let chunks = distribute(0..n, devices, &sched.to_schedule());
            let halo = |r: &Range<usize>| r.start.saturating_sub(1)..(r.end + 1).min(n);
            // Enter-spread `to` of the halo'd chunks.
            let mut out = vec![Directive::EnterData(
                chunks
                    .iter()
                    .map(|c| Leg {
                        device: c.device.unwrap(),
                        kind: MapKind::To,
                        section: sec(*a, halo(&c.range())),
                    })
                    .collect(),
            )];
            // Optional body bump on the device images: the reuse path —
            // refcount 2, no copies — so the host keeps the old values
            // and every sibling copy goes stale (which is what makes
            // every halo ineligible for a peer route below).
            if let Some(cv) = bump {
                let op = KernelOp::AddConst { a: *a, c: *cv };
                out.push(Directive::SpreadConstruct {
                    devices: devices.clone(),
                    resilient: false,
                    admission: None,
                    integrity: IntegritySem::Off,
                    pieces: chunks
                        .iter()
                        .map(|c| Piece {
                            device: c.device.unwrap(),
                            start: c.start,
                            len: c.len,
                            maps: op_maps(&op, &c.range()),
                            kernel: kernel_of(&op),
                        })
                        .collect(),
                });
            }
            // The halo refresh under `exchange(…)`: rule `S-Exchange`
            // records a peer route exactly when the sibling's bytes
            // equal the host image — so the copied *values* are
            // host-identical either way, and [`predict_peer_copies`]
            // reads the recorded route set for the differential peer
            // harness.
            out.push(Directive::UpdateData(
                chunks
                    .iter()
                    .flat_map(|c| {
                        let r = c.range();
                        let d = c.device.unwrap();
                        [
                            UpdateLeg {
                                device: d,
                                from_device: false,
                                exchange: true,
                                section: sec(*a, r.start.saturating_sub(1)..r.start),
                            },
                            UpdateLeg {
                                device: d,
                                from_device: false,
                                exchange: true,
                                section: sec(*a, r.end..(r.end + 1).min(n)),
                            },
                        ]
                    })
                    .collect(),
            ));
            // Clamped 3-point stencil over the refreshed window: reuses
            // the halo'd `a` mapping, allocates `dst`, copies the body
            // out on exit — halo bytes land in the final host state.
            out.push(Directive::SpreadConstruct {
                devices: devices.clone(),
                resilient: false,
                admission: None,
                integrity: IntegritySem::Off,
                pieces: chunks
                    .iter()
                    .map(|c| {
                        let r = c.range();
                        Piece {
                            device: c.device.unwrap(),
                            start: c.start,
                            len: c.len,
                            maps: vec![
                                (MapKind::To, sec(*a, halo(&r))),
                                (MapKind::From, sec(*dst, r)),
                            ],
                            kernel: KernelSem::Stencil3Clamped {
                                src: *a as u32,
                                dst: *dst as u32,
                                n,
                            },
                        }
                    })
                    .collect(),
            });
            // Exit-spread release of the halo'd region.
            out.push(Directive::ExitData(
                chunks
                    .iter()
                    .map(|c| Leg {
                        device: c.device.unwrap(),
                        kind: MapKind::Release,
                        section: sec(*a, halo(&c.range())),
                    })
                    .collect(),
            ));
            out
        }
        Stmt::RawEnter {
            device,
            a,
            start,
            len,
        } => vec![Directive::EnterData(vec![Leg {
            device: *device,
            kind: MapKind::To,
            section: sec(*a, *start..start + len),
        }])],
        Stmt::RawExit {
            device,
            a,
            start,
            len,
            delete,
        } => vec![Directive::ExitData(vec![Leg {
            device: *device,
            kind: if *delete {
                MapKind::Delete
            } else {
                MapKind::From
            },
            section: sec(*a, *start..start + len),
        }])],
        Stmt::RawUpdate {
            device,
            a,
            start,
            len,
            from,
        } => vec![Directive::UpdateData(vec![UpdateLeg {
            device: *device,
            from_device: *from,
            exchange: false,
            section: sec(*a, *start..start + len),
        }])],
        // The executor compares `InvalidDirective` by variant only, so
        // the spec does not reproduce the message.
        Stmt::Bad { .. } => vec![Directive::Invalid],
    }
}

/// Lower `p` statement by statement and fold [`step`] over the
/// directive sequence. Returns the final (possibly poisoned-mid-
/// directive) machine state and the first error.
fn interpret(p: &Program, fault: Option<Fault>) -> (State, Option<SemError>) {
    let host = (0..p.n_arrays)
        .map(|k| (0..p.n).map(|i| Program::initial(k, i)).collect())
        .collect();
    let mut st = State::new(host, p.n_devices, p.lost_device());
    st.perturb = perturb_of(fault);
    let mut error = None;
    // A straggler program's slowdowns land before any statement runs
    // (the windows open at time zero). `S-Slow` is state-invisible —
    // stepping it here asserts exactly that: the prediction for a
    // slowed machine IS the fault-free prediction.
    if let Some(ss) = &p.straggler {
        for &(device, factor) in &ss.slow {
            step(
                &mut st,
                &Directive::Slowdown {
                    device,
                    factor: factor as f64,
                },
            )
            .expect("generated slowdowns are well-formed");
        }
    }
    // An integrity program's flip bursts likewise arm before any
    // statement runs (`S-Flip` at time zero). Under `heal` the tokens
    // are burned value-invisibly at the commit boundary (`S-Heal`), so
    // the prediction for a flipped machine IS the flip-blind fault-free
    // prediction — exactly what the runtime's detect→discard→redo
    // rounds must reproduce bit for bit.
    if let Some(is) = &p.integrity {
        for &(device, count) in &is.flips {
            step(&mut st, &Directive::Flip { device, count })
                .expect("generated flips are well-formed");
        }
    }
    'outer: for stmt in p.phases.iter().flatten() {
        for d in lower_stmt(p, stmt) {
            if let Err(e) = step(&mut st, &d) {
                error = Some(e);
                break 'outer;
            }
        }
    }
    (st, error)
}

/// Interpret `p` through the `spread-semantics` machine and predict the
/// runtime-observable outcome. `fault` perturbs the spec deliberately
/// (see [`Fault`]) so the harness can prove to itself that
/// disagreements are detected, shrunk and replayed.
pub fn predict(p: &Program, fault: Option<Fault>) -> Expectation {
    let (st, error) = interpret(p, fault);
    Expectation {
        arrays: st.host,
        reduces: st.reduces,
        mappings: st.devices.iter().map(|d| d.snapshot()).collect(),
        degradations: st.degradations.iter().map(deg_event).collect(),
        error: error.map(rt_err),
    }
}

/// The exact multiset of peer copies an `exchange(auto)` execution of
/// `p` must perform, as sorted `(src, dst, array, start, len)` tuples —
/// the route set rule `S-Exchange` records while interpreting `p`.
///
/// Deterministic because the generator's halo invariants leave the
/// planner no choice: `chunk = ⌈n/k⌉ ≥ 2` gives each device at most one
/// chunk, so a one-element halo is bit-equal to the host image on
/// exactly one sibling — the neighbouring chunk's device. With a
/// `bump`, every sibling body byte diverges from the host image, so
/// *no* halo may route peer; without one, *every* non-empty halo must.
pub fn predict_peer_copies(p: &Program) -> Vec<(u32, u32, u32, usize, usize)> {
    let (st, _) = interpret(p, None);
    let mut want = st.routes;
    want.sort_unstable();
    want
}

#[cfg(test)]
mod tests {
    use super::*;
    use spread_core::reduction::ReduceOp;

    fn simple(n_devices: usize, phases: Vec<Vec<Stmt>>) -> Program {
        Program {
            n_devices,
            n: 16,
            n_arrays: 2,
            phases,
            fault: None,
            pressure: None,
            straggler: None,
            integrity: None,
            overlap: None,
        }
    }

    #[test]
    fn addconst_adds_everywhere() {
        let p = simple(
            2,
            vec![vec![Stmt::Spread {
                devices: vec![0, 1],
                sched: Sched::Static { chunk: 4 },
                nowait: false,
                op: KernelOp::AddConst { a: 0, c: 2.0 },
            }]],
        );
        let e = predict(&p, None);
        assert!(e.error.is_none());
        for i in 0..16 {
            assert_eq!(e.arrays[0][i], Program::initial(0, i) + 2.0);
            assert_eq!(e.arrays[1][i], Program::initial(1, i));
        }
        assert!(e.mappings.iter().all(|d| d.is_empty()));
    }

    #[test]
    fn stencil_matches_reference() {
        let p = simple(
            2,
            vec![vec![Stmt::Spread {
                devices: vec![0, 1],
                sched: Sched::Static { chunk: 4 },
                nowait: false,
                op: KernelOp::Stencil3 { src: 0, dst: 1 },
            }]],
        );
        let e = predict(&p, None);
        for i in 1..15 {
            let want =
                Program::initial(0, i - 1) + Program::initial(0, i) + Program::initial(0, i + 1);
            assert_eq!(e.arrays[1][i], want);
        }
        // Boundary elements keep their initial values.
        assert_eq!(e.arrays[1][0], Program::initial(1, 0));
    }

    #[test]
    fn region_release_discards_and_update_preserves() {
        // Body adds 5, exit releases: host unchanged…
        let discard = simple(
            1,
            vec![vec![Stmt::DataRegion {
                devices: vec![0],
                chunk: 16,
                a: 0,
                body_add: Some(5.0),
                update_from: false,
                exit_from: false,
            }]],
        );
        let e = predict(&discard, None);
        assert_eq!(e.arrays[0][3], Program::initial(0, 3));
        // …but an update-from before the release captures the result.
        let update = simple(
            1,
            vec![vec![Stmt::DataRegion {
                devices: vec![0],
                chunk: 16,
                a: 0,
                body_add: Some(5.0),
                update_from: true,
                exit_from: false,
            }]],
        );
        let e = predict(&update, None);
        assert_eq!(e.arrays[0][3], Program::initial(0, 3) + 5.0);
    }

    #[test]
    fn raw_overlap_is_extension_error() {
        let p = simple(
            1,
            vec![vec![
                Stmt::RawEnter {
                    device: 0,
                    a: 0,
                    start: 0,
                    len: 8,
                },
                Stmt::RawEnter {
                    device: 0,
                    a: 0,
                    start: 4,
                    len: 8,
                },
            ]],
        );
        let e = predict(&p, None);
        match e.error {
            Some(RtError::OverlapExtension {
                device, requested, ..
            }) => {
                assert_eq!(device, 0);
                assert_eq!(requested.start, 4);
            }
            other => panic!("expected extension error, got {other:?}"),
        }
    }

    #[test]
    fn raw_leak_predicts_mapping_snapshot() {
        let p = simple(
            2,
            vec![vec![
                Stmt::RawEnter {
                    device: 1,
                    a: 0,
                    start: 2,
                    len: 6,
                },
                Stmt::RawEnter {
                    device: 1,
                    a: 0,
                    start: 2,
                    len: 6,
                },
            ]],
        );
        let e = predict(&p, None);
        assert!(e.error.is_none());
        assert_eq!(e.mappings[0], vec![]);
        assert_eq!(e.mappings[1], vec![(0, 2, 6, 2)]);
    }

    #[test]
    fn resilient_loss_predicts_the_fault_free_state() {
        use crate::ast::{FaultMode, FaultSpec};
        let spread = Stmt::Spread {
            devices: vec![0, 1],
            sched: Sched::Static { chunk: 4 },
            nowait: false,
            op: KernelOp::AddConst { a: 0, c: 2.0 },
        };
        let clean = simple(2, vec![vec![spread.clone()]]);
        let mut faulted = clean.clone();
        faulted.fault = Some(FaultSpec {
            lost: Some(1),
            mode: FaultMode::Resilient,
            transients: vec![(0, 2)],
        });
        let a = predict(&clean, None);
        let b = predict(&faulted, None);
        assert!(b.error.is_none(), "{:?}", b.error);
        assert_eq!(a.arrays, b.arrays, "redistribution is bit-invisible");
        // …but the recovery canary diverges.
        let c = predict(&faulted, Some(Fault::RecoveryDropsLostChunk));
        assert_ne!(a.arrays, c.arrays, "canary must perturb the prediction");
        // The canary is inert without a resilient loss.
        let d = predict(&clean, Some(Fault::RecoveryDropsLostChunk));
        assert_eq!(a.arrays, d.arrays);
    }

    #[test]
    fn fail_stop_loss_predicts_device_lost() {
        use crate::ast::{FaultMode, FaultSpec};
        let mut p = simple(
            2,
            vec![vec![Stmt::Spread {
                devices: vec![1, 0],
                sched: Sched::Static { chunk: 4 },
                nowait: false,
                op: KernelOp::Scale { a: 0, c: 2.0 },
            }]],
        );
        p.fault = Some(FaultSpec {
            lost: Some(1),
            mode: FaultMode::FailStop,
            transients: vec![],
        });
        let e = predict(&p, None);
        assert!(
            matches!(e.error, Some(RtError::DeviceLost { device: 1, .. })),
            "{:?}",
            e.error
        );
        // A resilient construct with no survivor in its list also dies.
        p.fault.as_mut().unwrap().mode = FaultMode::Resilient;
        p.phases[0][0] = Stmt::Spread {
            devices: vec![1],
            sched: Sched::Static { chunk: 16 },
            nowait: false,
            op: KernelOp::Scale { a: 0, c: 2.0 },
        };
        let e = predict(&p, None);
        assert!(
            matches!(e.error, Some(RtError::DeviceLost { device: 1, .. })),
            "{:?}",
            e.error
        );
        // A loss nothing lands on is invisible.
        p.phases[0][0] = Stmt::Spread {
            devices: vec![0],
            sched: Sched::Static { chunk: 16 },
            nowait: false,
            op: KernelOp::Scale { a: 0, c: 2.0 },
        };
        assert!(predict(&p, None).error.is_none());
    }

    #[test]
    fn pressure_prediction_names_the_degradations() {
        use spread_core::PressurePolicy;
        use spread_rt::DegradationKind;
        // Two devices, chunk 8 ⇒ chunks [0,8) on d0 and [8,16) on d1,
        // 64 bytes each. Device 0 keeps 64 bytes of headroom, device 1
        // is squeezed to 24 — its chunk must move to device 0.
        let mk = |policy, sustained: Vec<(u32, u64)>| {
            let mut p = simple(
                2,
                vec![vec![Stmt::Spread {
                    devices: vec![0, 1],
                    sched: Sched::Static { chunk: 8 },
                    nowait: false,
                    op: KernelOp::AddConst { a: 0, c: 2.0 },
                }]],
            );
            p.pressure = Some(crate::ast::PressureSpec {
                policy,
                cap_bytes: 64,
                sustained,
            });
            p
        };
        let healthy = mk(PressurePolicy::Split, vec![]);
        let e = predict(&healthy, None);
        assert!(e.error.is_none());
        assert!(e.degradations.is_empty(), "{:?}", e.degradations);

        let shrunk = mk(PressurePolicy::Split, vec![(1, 40)]);
        let e = predict(&shrunk, None);
        assert!(e.error.is_none());
        assert_eq!(e.degradations.len(), 1, "{:?}", e.degradations);
        assert_eq!(e.degradations[0].kind, DegradationKind::AdmissionShrunk);
        assert_eq!(e.degradations[0].device, Some(0));
        assert_eq!(e.degradations[0].start, 8);
        assert_eq!(e.degradations[0].bytes, 64);
        // Values are placement-independent.
        assert_eq!(e.arrays, predict(&healthy, None).arrays);

        // Both devices hopeless: split fails Degraded, spill completes
        // through the host with the same values.
        let hopeless = vec![(0u32, 64u64), (1, 64)];
        let e = predict(&mk(PressurePolicy::Split, hopeless.clone()), None);
        assert!(
            matches!(e.error, Some(RtError::Degraded { .. })),
            "{:?}",
            e.error
        );
        let e = predict(&mk(PressurePolicy::Spill, hopeless), None);
        assert!(e.error.is_none(), "{:?}", e.error);
        assert_eq!(e.degradations.len(), 2);
        assert!(e
            .degradations
            .iter()
            .all(|d| d.kind == DegradationKind::Spilled && d.device.is_none() && d.bytes == 64));
        assert_eq!(e.arrays, predict(&healthy, None).arrays);
    }

    #[test]
    fn reduce_fault_changes_prediction() {
        let stmt = Stmt::Reduce {
            devices: vec![0],
            sched: Sched::Static { chunk: 8 },
            a: 0,
            partials: 1,
            alpha: 2.0,
            op: ReduceOp::Sum,
        };
        let p = simple(1, vec![vec![stmt]]);
        let honest = predict(&p, None);
        let faulty = predict(&p, Some(Fault::ReduceSkipsLast));
        assert_ne!(honest.reduces, faulty.reduces);
    }
}
