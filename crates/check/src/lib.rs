//! # spread-check
//!
//! Model-based conformance harness for the `target spread` directive
//! set, with a semantic oracle and deterministic schedule fuzzing.
//!
//! The pieces:
//!
//! * [`ast`] — a small directive-program AST over the spread builder
//!   surface (spread kernels with static/weighted/dynamic schedules and
//!   `nowait`, halo'd stencils, cross-device reductions, data regions,
//!   raw enter/exit/update statements — including illegal ones);
//! * [`gen`] — a seeded generator: one `u64` ⇒ one program, forever
//!   (optionally with a seeded fault plan: a device dead on arrival
//!   under fail-stop or `spread_resilience(redistribute)`, plus
//!   retry-absorbable transient copy bursts);
//! * [`oracle`] — a thin lowering from programs onto the
//!   `spread-semantics` small-step machine, predicting the final host
//!   state (or the exact `RtError`) from the paper's mapping rules;
//! * [`enumerate`] — bounded model checking: every program up to a
//!   small statement bound over a fixed alphabet, checked exhaustively
//!   instead of sampled;
//! * [`run`] — the executor lowering a program onto the real
//!   [`spread_rt::Runtime`] under a chosen [`TieBreak`] policy;
//! * [`shrink`] — deterministic greedy minimization of failures;
//! * [`pretty`] — paper-listing pseudocode rendering.
//!
//! [`check_seed`] is the heart: generate the program for a seed, predict
//! with the oracle, then execute it under FIFO *plus* several seeded
//! tie-break permutations of the simulator's event queue — every legal
//! interleaving of same-instant events must reproduce the oracle's
//! host arrays, reduction values and mapping tables bit-for-bit, with
//! zero race reports.
//!
//! Pressure mode ([`CheckConfig::pressure`]) swaps the fault plans for
//! seeded memory-pressure scenarios — tiny device capacities plus
//! sustained OOM windows — and additionally requires the runtime's
//! recorded [`spread_rt::DegradationEvent`] sequence (admission
//! shrinks, chunk splits, host spills) to equal the oracle's exact
//! prediction, while results stay bit-identical.
//!
//! Auto mode ([`CheckConfig::auto`]) generates `spread_schedule(auto)`
//! programs — blocking, placement-independent kernels with repeated
//! construct keys — and checks the final state against an equal-weight
//! oracle stand-in while requiring every realized adaptive split
//! (recorded as a [`spread_trace::ConstructProfile`]) to be a valid
//! `StaticWeighted` plan.
//!
//! Peer mode ([`CheckConfig::peer`]) generates halo-exchange programs
//! ([`ast::Stmt::Halo`]) and checks them *differentially*: every
//! interleaving first runs with the exchange forced through the host
//! (the paper's round-trip — it must match the oracle and perform zero
//! peer copies), then one `exchange(auto)` run must reproduce the same
//! bits end to end while performing **exactly** the closed-form
//! device-to-device route set [`oracle::predict_peer_copies`] derives
//! from the generator's halo invariants — no diverted copy, none
//! missing, none extra.
//!
//! Integrity mode ([`CheckConfig::integrity`]) generates
//! `spread_integrity(heal)` programs with seeded silent-flip bursts
//! armed from time zero ([`ast::IntegritySpec`]): results must match
//! the flip-blind oracle bit-for-bit while the runtime's recorded
//! [`spread_rt::IntegrityEvent`]s equal the closed-form healed-commit
//! ledger — exactly `count` healed commits per flipped device that
//! performs a committing drain.
//!
//! Overlap mode ([`CheckConfig::overlap`]) generates
//! `spread_overlap(depth)` programs ([`ast::OverlapSpec`]): the
//! pipeline is a pure latency optimization, so the oracle stays
//! overlap-blind and results must match the un-pipelined prediction
//! bit-for-bit, while the recorded [`spread_rt::OverlapRecord`]s match
//! the closed-form piece count with every staged sub-slice committing
//! exactly at the whole-piece boundary and nothing escaping early.
//!
//! ```
//! use spread_check::{check_seed, CheckConfig};
//! assert!(check_seed(1, &CheckConfig::default()).is_ok());
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod enumerate;
pub mod gen;
pub mod oracle;
pub mod pretty;
pub mod run;
pub mod shrink;

pub use ast::Program;
pub use spread_sim::TieBreak;

use spread_rt::RtError;

/// A deliberate perturbation injected into one side of the comparison,
/// used to prove the harness catches disagreements (and to exercise
/// replay + shrinking on a reproducible failure). The first three
/// perturb the *oracle*; the spill canary perturbs the *runtime*, so it
/// doubles as proof that a real silent-truncation bug in the spill
/// executor would be flagged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The oracle "forgets" the left halo element of the stencil.
    StencilDropsLeftHalo,
    /// The oracle's host-side reduction fold skips the last element.
    ReduceSkipsLast,
    /// The oracle pretends `spread_resilience(redistribute)` silently
    /// drops the lost device's chunks instead of replaying them — the
    /// canary proving the harness catches recovery divergence.
    RecoveryDropsLostChunk,
    /// The *runtime* silently drops the writes of the last slice of
    /// every host-spilled piece — the canary proving the harness
    /// catches a truncated spill (pressure mode).
    SpillDropsSlice,
    /// The *runtime* perturbs one element of the first device-to-device
    /// copy it completes — the canary proving the differential peer
    /// harness really watches the peer route: the host-forced runs stay
    /// bit-clean and only the `exchange(auto)` run diverges (peer
    /// mode).
    PeerCorrupt,
    /// The *runtime* lets the losing copy of every straggler rescue
    /// commit its staged writes anyway, first element perturbed — the
    /// canary proving the harness catches a broken first-commit-wins
    /// gate (straggler mode).
    RescueDoubleCommit,
    /// The *runtime* downgrades every construct's `spread_integrity(…)`
    /// clause to `off` while the program's silent flips stay armed —
    /// the corruption reaches the host unnoticed, and the flip-blind
    /// oracle comparison must catch the bit divergence. The canary
    /// proving the harness would flag a checksum layer that silently
    /// stopped checking (integrity mode).
    IntegrityCorrupt,
    /// The *runtime* commits one staged sub-slice of every pipelined
    /// piece to host memory *before* the whole-piece commit point,
    /// first element perturbed — the canary proving the harness catches
    /// a pipeline whose staged writes become externally visible early
    /// (overlap mode).
    OverlapLeak,
}

impl Fault {
    /// Parse a `--inject` argument.
    pub fn parse(s: &str) -> Option<Fault> {
        match s {
            "stencil" => Some(Fault::StencilDropsLeftHalo),
            "reduce" => Some(Fault::ReduceSkipsLast),
            "recovery" => Some(Fault::RecoveryDropsLostChunk),
            "spill" => Some(Fault::SpillDropsSlice),
            "peer" => Some(Fault::PeerCorrupt),
            "rescue" => Some(Fault::RescueDoubleCommit),
            "integrity" => Some(Fault::IntegrityCorrupt),
            "overlap" => Some(Fault::OverlapLeak),
            _ => None,
        }
    }
}

/// How to check a program.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Number of interleavings per program: FIFO plus
    /// `interleavings − 1` seeded tie-break permutations.
    pub interleavings: usize,
    /// Optional oracle perturbation.
    pub fault: Option<Fault>,
    /// Generate programs with seeded fault plans (device loss at time
    /// zero, retry-absorbable transient bursts) — see
    /// [`ast::FaultSpec`].
    pub faults: bool,
    /// Generate memory-pressure programs (spread-only, blocking, static
    /// distributions) with seeded [`ast::PressureSpec`]s: tiny device
    /// capacities plus sustained OOM windows. The oracle then predicts
    /// the exact degradation-event sequence (admission shrinks, chunk
    /// splits, host spills) or the exact `Degraded` error, alongside
    /// bit-identical results. Mutually exclusive with `faults`.
    pub pressure: bool,
    /// Generate `spread_schedule(auto)` programs: spread-only blocking
    /// constructs over placement-independent kernels with repeated
    /// construct keys, so the runtime's profile-guided adaptation
    /// actually kicks in across launches. The oracle predicts the final
    /// state from an equal-weight stand-in split (valid because the
    /// kernels are placement-independent), and [`run::Observed`]
    /// additionally carries the realized per-launch
    /// [`spread_trace::ConstructProfile`]s, which must form valid
    /// `StaticWeighted` plans. Mutually exclusive with `faults` and
    /// `pressure`.
    pub auto: bool,
    /// Generate halo-exchange programs ([`ast::Stmt::Halo`]) and check
    /// them differentially: host-forced runs (which must match the
    /// oracle with zero peer copies) against one `exchange(auto)` run
    /// that must match the same oracle bits while performing exactly
    /// the closed-form D2D route set
    /// ([`oracle::predict_peer_copies`]), with no diverted copy.
    /// Mutually exclusive with `faults`, `pressure` and `auto`.
    pub peer: bool,
    /// Generate straggler programs ([`ast::StragglerSpec`]): blocking
    /// spread-only statements under `spread_straggler(steal|replicate)`
    /// with one device's compute slowed 10–16× from time zero. The
    /// oracle's prediction is the *fault-free* one — slowdowns stretch
    /// durations only, and rescues are first-commit-wins
    /// value-invisible — so results must stay bit-identical while every
    /// recorded [`spread_rt::RescueRecord`] is structurally sound
    /// (exactly one commit, healthy in-range target, never rescuing
    /// onto the straggler itself). Mutually exclusive with `faults`,
    /// `pressure`, `auto` and `peer`.
    pub stragglers: bool,
    /// Generate integrity programs ([`ast::IntegritySpec`]): blocking
    /// spread-only statements under `spread_integrity(heal)` with
    /// seeded silent-flip bursts armed from time zero (counts far below
    /// the mismatch breaker, so healing never escalates to quarantine).
    /// The oracle's prediction is the *flip-blind* fault-free one
    /// (`S-Flip`/`S-Heal`: detect→discard→redo rounds are
    /// value-invisible), so results must stay bit-identical while the
    /// recorded [`spread_rt::IntegrityEvent`]s match the closed-form
    /// expectation — exactly `count` healed commits per flipped device
    /// that drains at all. Mutually exclusive with every other mode.
    pub integrity: bool,
    /// Generate pipelined-overlap programs ([`ast::OverlapSpec`]):
    /// blocking spread-only statements under `spread_overlap(depth)`
    /// with `2 ≤ depth ≤ 4`. The pipeline is a pure latency
    /// optimization, so the oracle stays *overlap-blind*: results must
    /// match the un-pipelined prediction bit-for-bit while the recorded
    /// [`spread_rt::OverlapRecord`]s match the closed-form piece count
    /// (one per multi-iteration chunk of the static distribution) with
    /// `staged == committed` on every record and nothing leaked before
    /// the whole-piece commit point. Mutually exclusive with every
    /// other mode.
    pub overlap: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            interleavings: 4,
            fault: None,
            faults: false,
            pressure: false,
            auto: false,
            peer: false,
            stragglers: false,
            integrity: false,
            overlap: false,
        }
    }
}

/// A conformance violation: which interleaving disagreed, and how.
#[derive(Clone, Debug)]
pub struct CheckFailure {
    /// The tie-break policy that exposed it.
    pub tie: TieBreak,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:?}] {}", self.tie, self.detail)
    }
}

/// The tie-break policies checked for a program seed: FIFO first, then
/// seeded permutations derived from the seed (so the whole run is
/// reproducible from the program seed alone).
pub fn tie_breaks(seed: u64, interleavings: usize) -> Vec<TieBreak> {
    let mut v = vec![TieBreak::Fifo];
    for k in 1..interleavings.max(1) as u64 {
        v.push(TieBreak::Seeded(spread_prng::mix(seed, k)));
    }
    v
}

/// `InvalidDirective` carries a free-form message the oracle does not
/// reproduce, and `DeviceLost`'s `what` names whichever task happened
/// to surface the loss first (interleaving-dependent) — both compare
/// structurally. `OverlapExtension` likewise: when several pieces of
/// one construct each trip the §V-B rule (bounded model checking
/// reaches this by sequencing a raw enter *before* a multi-piece
/// spread), the named window is whichever faulting piece won the race,
/// so it compares by device. Every other error must match exactly.
fn errors_match(want: &RtError, got: &RtError) -> bool {
    match (want, got) {
        (RtError::InvalidDirective(_), RtError::InvalidDirective(_)) => true,
        (RtError::DeviceLost { device: w, .. }, RtError::DeviceLost { device: g, .. }) => w == g,
        (
            RtError::OverlapExtension { device: w, .. },
            RtError::OverlapExtension { device: g, .. },
        ) => w == g,
        // The section names whichever tainted drain surfaced first
        // (interleaving-dependent); the offending device is pinned.
        (
            RtError::IntegrityViolation { device: w, .. },
            RtError::IntegrityViolation { device: g, .. },
        ) => w == g,
        _ => want == got,
    }
}

fn compare(want: &oracle::Expectation, got: &run::Observed) -> Option<String> {
    match (&want.error, &got.error) {
        (Some(w), Some(g)) => {
            if !errors_match(w, g) {
                return Some(format!("predicted error `{w}`, runtime raised `{g}`"));
            }
            // Poisoned program: intermediate state is unspecified.
            return None;
        }
        (Some(w), None) => return Some(format!("predicted error `{w}`, runtime succeeded")),
        (None, Some(g)) => return Some(format!("runtime raised unpredicted error `{g}`")),
        (None, None) => {}
    }
    if got.races != 0 {
        return Some(format!(
            "{} race report(s) on a race-free program",
            got.races
        ));
    }
    // Straggler rescues and healed corruptions are timing-dependent
    // runtime events the oracle never predicts (slowdowns and heal
    // redos are value-invisible); they are checked structurally in
    // `check_program` instead.
    let got_degradations: Vec<_> = got
        .degradations
        .iter()
        .filter(|e| {
            e.kind != spread_rt::DegradationKind::StragglerRescued
                && e.kind != spread_rt::DegradationKind::CorruptionHealed
        })
        .cloned()
        .collect();
    if want.degradations != got_degradations {
        return Some(format!(
            "degradation events: oracle predicted {:?}, runtime recorded {:?}",
            want.degradations, got_degradations
        ));
    }
    for (k, (w, g)) in want.arrays.iter().zip(&got.arrays).enumerate() {
        if let Some(i) = (0..w.len()).find(|&i| w[i].to_bits() != g[i].to_bits()) {
            return Some(format!(
                "array A{k}[{i}]: oracle {} vs runtime {}",
                w[i], g[i]
            ));
        }
    }
    if want.reduces.len() != got.reduces.len() {
        return Some(format!(
            "oracle predicted {} reduction(s), runtime produced {}",
            want.reduces.len(),
            got.reduces.len()
        ));
    }
    for (i, (w, g)) in want.reduces.iter().zip(&got.reduces).enumerate() {
        if w.to_bits() != g.to_bits() {
            return Some(format!("reduction #{i}: oracle {w} vs runtime {g}"));
        }
    }
    if want.mappings != got.mappings {
        return Some(format!(
            "mapping tables at quiescence: oracle {:?} vs runtime {:?}",
            want.mappings, got.mappings
        ));
    }
    // spread_schedule(auto) programs: whatever split the runtime
    // realized must have been a *valid* StaticWeighted plan. (Empty for
    // every other program kind, so the checks are vacuous there.)
    for prof in &got.profiles {
        if prof.weights.len() != prof.devices.len() {
            return Some(format!(
                "profile `{}` launch {}: {} weight(s) for {} device(s)",
                prof.key,
                prof.launch,
                prof.weights.len(),
                prof.devices.len()
            ));
        }
        if prof.weights.iter().any(|w| !w.is_finite() || *w <= 0.0) {
            return Some(format!(
                "profile `{}` launch {}: realized weights {:?} are not a \
                 valid StaticWeighted plan",
                prof.key, prof.launch, prof.weights
            ));
        }
        if prof.round == 0 {
            return Some(format!(
                "profile `{}` launch {}: realized round is zero",
                prof.key, prof.launch
            ));
        }
    }
    None
}

/// Structural soundness of the rescues a run performed: the bits are
/// already pinned by [`compare`], so this checks the first-commit-wins
/// bookkeeping — exactly one commit per rescued piece, a recorded
/// winner, and an in-range rescue target distinct from the straggler.
/// Which pieces straggle is *not* pinned: a healthy device whose chunk
/// is several times longer than the first finisher's legitimately blows
/// the relative deadline too, and such speculative duplicates must be
/// just as value-invisible as rescues of genuinely slowed devices.
/// Rescues outside straggler mode are themselves a violation.
fn validate_rescues(p: &Program, got: &run::Observed) -> Option<String> {
    if p.straggler.is_none() {
        return (!got.rescues.is_empty()).then(|| {
            format!(
                "{} rescue(s) recorded without a straggler spec",
                got.rescues.len()
            )
        });
    }
    for r in &got.rescues {
        if r.commits != 1 {
            return Some(format!(
                "rescued piece [{}..{}): {} commits (first-commit-wins demands exactly one)",
                r.start,
                r.start + r.len,
                r.commits
            ));
        }
        if r.winner.is_none() {
            return Some(format!(
                "rescued piece [{}..{}): no winner recorded at quiescence",
                r.start,
                r.start + r.len
            ));
        }
        if r.to == r.from || (r.to as usize) >= p.n_devices {
            return Some(format!(
                "rescued piece [{}..{}): straggler {} rescued onto device {}",
                r.start,
                r.start + r.len,
                r.from,
                r.to
            ));
        }
    }
    None
}

/// The closed-form integrity-event expectation. Flip bursts arm at
/// time zero and a device's tokens are all burned by detect→discard→
/// redo rounds at its *first* committing drain, so a flipped device
/// that receives at least one chunk of any spread statement records
/// exactly `count` healed commits — and one that never drains records
/// none. Failed/quarantined actions never appear (burst counts stay
/// far below the mismatch breaker), and integrity events outside
/// integrity mode are themselves a violation.
fn validate_integrity(p: &Program, got: &run::Observed) -> Option<String> {
    let Some(is) = &p.integrity else {
        return (!got.integrity_events.is_empty()).then(|| {
            format!(
                "{} integrity event(s) recorded without an integrity spec",
                got.integrity_events.len()
            )
        });
    };
    if let Some(e) = got.integrity_events.iter().find(|e| {
        e.action != spread_rt::IntegrityAction::Healed
            || e.boundary != spread_rt::IntegrityBoundary::Commit
    }) {
        return Some(format!(
            "unexpected integrity event {:?}/{:?} on device {} (healed commits only)",
            e.action, e.boundary, e.device
        ));
    }
    // Devices that perform at least one committing drain: every
    // generated spread kernel commits (tofrom/from maps), so any
    // device the static distribution hands a non-empty chunk drains.
    let mut drains = std::collections::BTreeSet::new();
    for stmt in p.phases.iter().flatten() {
        if let ast::Stmt::Spread {
            devices, sched, op, ..
        } = stmt
        {
            for c in spread_core::schedule::distribute(
                op.range(p.n),
                devices,
                &sched.oracle_schedule(p.n, devices.len()),
            ) {
                if c.len > 0 {
                    if let Some(d) = c.device {
                        drains.insert(d);
                    }
                }
            }
        }
    }
    let mut want: Vec<u32> = is
        .flips
        .iter()
        .filter(|(d, _)| drains.contains(d))
        .flat_map(|&(d, count)| std::iter::repeat_n(d, count as usize))
        .collect();
    want.sort_unstable();
    let mut got_devs: Vec<u32> = got.integrity_events.iter().map(|e| e.device).collect();
    got_devs.sort_unstable();
    if want != got_devs {
        return Some(format!(
            "healed commits per device: flips {:?} predict {want:?}, runtime recorded {got_devs:?}",
            is.flips
        ));
    }
    None
}

/// Structural soundness of the pipelined pieces a run recorded: the
/// bits are already pinned by [`compare`] (the oracle is
/// overlap-blind), so this checks the pipeline's ledger — nothing
/// leaked before the whole-piece commit point, every staged sub-slice
/// of a non-bypassed piece committed exactly once at the boundary, the
/// per-piece stage count equals `min(depth, len)`, and the record count
/// equals the closed-form piece count of the program's static
/// distributions (pieces of a single iteration take the classic path
/// and record nothing). Overlap records outside overlap mode are
/// themselves a violation.
fn validate_overlap(p: &Program, got: &run::Observed) -> Option<String> {
    let Some(os) = &p.overlap else {
        return (!got.overlap.is_empty()).then(|| {
            format!(
                "{} overlap record(s) without an overlap spec",
                got.overlap.len()
            )
        });
    };
    for r in &got.overlap {
        if r.leaked {
            return Some(format!(
                "device {}: a staged sub-slice of piece [{}..{}) was committed before \
                 the whole-piece boundary",
                r.device,
                r.start,
                r.start + r.len
            ));
        }
        if !r.bypassed {
            if r.staged != r.committed {
                return Some(format!(
                    "device {} piece [{}..{}): {} staged sub-slice(s) but {} commit(s)",
                    r.device,
                    r.start,
                    r.start + r.len,
                    r.staged,
                    r.committed
                ));
            }
            let want_depth = os.depth.min(r.len as u32);
            if r.depth != want_depth {
                return Some(format!(
                    "device {} piece [{}..{}): {} pipeline stage(s), expected {}",
                    r.device,
                    r.start,
                    r.start + r.len,
                    r.depth,
                    want_depth
                ));
            }
        }
    }
    // Closed form: the runtime pipelines exactly the multi-iteration
    // pieces of each spread statement's static distribution (depth ≥ 2
    // always holds for generated specs).
    let mut want = 0usize;
    for stmt in p.phases.iter().flatten() {
        if let ast::Stmt::Spread {
            devices, sched, op, ..
        } = stmt
        {
            want += spread_core::schedule::distribute(op.range(p.n), devices, &sched.to_schedule())
                .iter()
                .filter(|c| c.len >= 2 && c.device.is_some())
                .count();
        }
    }
    if got.overlap.len() != want {
        return Some(format!(
            "overlap ledger: the static distributions predict {want} pipelined piece(s), \
             runtime recorded {}",
            got.overlap.len()
        ));
    }
    None
}

/// Check one program under every tie-break policy for `seed`.
///
/// Under [`CheckConfig::peer`] the check is differential: the per-tie
/// runs force every halo exchange through the host (zero peer copies
/// allowed), then one extra FIFO `exchange(auto)` run must reproduce
/// the same oracle bits while performing exactly the predicted
/// device-to-device route set, with nothing diverted.
pub fn check_program(p: &Program, seed: u64, cfg: &CheckConfig) -> Result<(), CheckFailure> {
    let want = oracle::predict(p, cfg.fault);
    for tie in tie_breaks(seed, cfg.interleavings) {
        let got = run::execute(p, tie, cfg.fault);
        if let Some(detail) = compare(&want, &got) {
            return Err(CheckFailure { tie, detail });
        }
        if want.error.is_none() {
            if let Some(detail) = validate_rescues(p, &got) {
                return Err(CheckFailure { tie, detail });
            }
            if let Some(detail) = validate_integrity(p, &got) {
                return Err(CheckFailure { tie, detail });
            }
            if let Some(detail) = validate_overlap(p, &got) {
                return Err(CheckFailure { tie, detail });
            }
        }
        if !got.peer_copies.is_empty() {
            return Err(CheckFailure {
                tie,
                detail: format!(
                    "exchange(host) run performed {} peer copies",
                    got.peer_copies.len()
                ),
            });
        }
    }
    if cfg.peer {
        let tie = TieBreak::Fifo;
        let got = run::execute_ex(p, tie, cfg.fault, spread_core::ExchangeMode::Auto);
        if let Some(detail) = compare(&want, &got) {
            return Err(CheckFailure {
                tie,
                detail: format!("exchange(auto): {detail}"),
            });
        }
        // The route set is only pinned down for a legal program — after
        // a predicted error, what ran before the poison is unspecified.
        if want.error.is_none() {
            if let Some(r) = got.peer_copies.iter().find(|r| r.5) {
                return Err(CheckFailure {
                    tie,
                    detail: format!(
                        "exchange(auto): peer copy {}→{} of A{}[{}..{}] diverted to the \
                         host on a fault-free program",
                        r.0,
                        r.1,
                        r.2,
                        r.3,
                        r.3 + r.4
                    ),
                });
            }
            let mut routed: Vec<(u32, u32, u32, usize, usize)> = got
                .peer_copies
                .iter()
                .map(|r| (r.0, r.1, r.2, r.3, r.4))
                .collect();
            routed.sort_unstable();
            let predicted = oracle::predict_peer_copies(p);
            if routed != predicted {
                return Err(CheckFailure {
                    tie,
                    detail: format!(
                        "exchange(auto) route set: predicted {predicted:?}, runtime \
                         performed {routed:?}"
                    ),
                });
            }
        }
    }
    Ok(())
}

/// The program a configuration generates for `seed`: a pressure
/// program under `cfg.pressure`, an adaptive-schedule program under
/// `cfg.auto`, a halo-exchange program under `cfg.peer`, a straggler
/// program under `cfg.stragglers`, an integrity program under
/// `cfg.integrity`, a pipelined-overlap program under `cfg.overlap`, a
/// faulted program under `cfg.faults`, a plain program otherwise.
pub fn gen_for(seed: u64, cfg: &CheckConfig) -> Program {
    if cfg.pressure {
        gen::gen_program_pressure(seed)
    } else if cfg.auto {
        gen::gen_program_auto(seed)
    } else if cfg.peer {
        gen::gen_program_peer(seed)
    } else if cfg.stragglers {
        gen::gen_program_straggler(seed)
    } else if cfg.integrity {
        gen::gen_program_integrity(seed)
    } else if cfg.overlap {
        gen::gen_program_overlap(seed)
    } else {
        gen::gen_program_cfg(seed, cfg.faults)
    }
}

/// Generate and check the program for `seed` (with a fault plan when
/// `cfg.faults` is set, or a pressure scenario when `cfg.pressure`).
pub fn check_seed(seed: u64, cfg: &CheckConfig) -> Result<(), CheckFailure> {
    check_program(&gen_for(seed, cfg), seed, cfg)
}

/// The first observable on which a cold-planner run and a warm-cache
/// run of the same program disagreed, or `None` when they matched
/// everywhere — including the merged span timeline, byte for byte.
fn diff_cache_runs(cold: &run::CacheRun, warm: &run::CacheRun) -> Option<String> {
    let a = &cold.observed;
    let b = &warm.observed;
    let fields: [(&str, bool); 12] = [
        ("final arrays", a.arrays != b.arrays),
        ("reduction values", a.reduces != b.reduces),
        ("mapping snapshot", a.mappings != b.mappings),
        ("degradation ledger", a.degradations != b.degradations),
        ("adaptive profiles", a.profiles != b.profiles),
        ("race count", a.races != b.races),
        ("peer-copy ledger", a.peer_copies != b.peer_copies),
        ("rescue ledger", a.rescues != b.rescues),
        ("integrity ledger", a.integrity_events != b.integrity_events),
        ("overlap ledger", a.overlap != b.overlap),
        ("first error", a.error != b.error),
        ("span timeline", cold.timeline != warm.timeline),
    ];
    fields
        .iter()
        .find(|(_, differs)| *differs)
        .map(|(name, _)| format!("cold planner vs warm cache diverged on the {name}"))
}

/// The cold-vs-warm differential for one generated program: execute it
/// twice through [`run::execute_cached`] — once with the launch-plan
/// cache disabled (every construct plans from scratch) and once with it
/// enabled — and demand every observable identical: final arrays,
/// reduction values, `RtError`s, the degradation / rescue / integrity /
/// overlap / peer ledgers, adaptive profiles, mapping snapshots, and
/// the merged span timeline byte for byte. Returns the warm leg's
/// cache counters so a sweep can assert the cache actually served hits.
pub fn cache_parity_seed(
    seed: u64,
    cfg: &CheckConfig,
) -> Result<spread_rt::PlanCacheStats, CheckFailure> {
    let p = gen_for(seed, cfg);
    let exchange = if cfg.peer {
        spread_core::ExchangeMode::Auto
    } else {
        spread_core::ExchangeMode::Host
    };
    let tie = TieBreak::Fifo;
    let cold = run::execute_cached(&p, tie, cfg.fault, exchange, false);
    let warm = run::execute_cached(&p, tie, cfg.fault, exchange, true);
    if cold.plan.hits != 0 || cold.plan.misses != 0 {
        return Err(CheckFailure {
            tie,
            detail: format!(
                "disabled cache still counted {} hit(s) / {} miss(es)",
                cold.plan.hits, cold.plan.misses
            ),
        });
    }
    if let Some(detail) = diff_cache_runs(&cold, &warm) {
        return Err(CheckFailure { tie, detail });
    }
    Ok(warm.plan)
}

/// Summary of a cache-parity sweep.
#[derive(Clone, Debug, Default)]
pub struct ParityReport {
    /// Programs diffed (two executions each).
    pub programs: usize,
    /// Warm-leg cache hits across the sweep.
    pub hits: u64,
    /// Warm-leg cache misses across the sweep.
    pub misses: u64,
    /// Warm-leg epoch invalidations across the sweep.
    pub invalidations: u64,
    /// Failing seeds (empty when cold and warm agree everywhere).
    pub failures: Vec<FuzzFailure>,
}

/// Sweep `programs` seeds derived from `seed0` through
/// [`cache_parity_seed`], aggregating the warm-leg cache counters.
pub fn cache_parity(seed0: u64, programs: usize, cfg: &CheckConfig) -> ParityReport {
    let mut report = ParityReport::default();
    for i in 0..programs {
        let seed = spread_prng::mix(seed0, i as u64);
        match cache_parity_seed(seed, cfg) {
            Ok(stats) => {
                report.hits += stats.hits;
                report.misses += stats.misses;
                report.invalidations += stats.invalidations;
            }
            Err(failure) => report.failures.push(FuzzFailure { seed, failure }),
        }
        report.programs += 1;
    }
    report
}

/// One failing seed of a fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The program seed.
    pub seed: u64,
    /// What went wrong.
    pub failure: CheckFailure,
}

/// Summary of a fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Programs checked.
    pub programs: usize,
    /// Total runtime executions (programs × interleavings).
    pub executions: usize,
    /// Failing seeds (empty on a healthy runtime).
    pub failures: Vec<FuzzFailure>,
}

/// Check `programs` seeds derived from `seed0` (`mix(seed0, i)`), each
/// under `cfg.interleavings` interleavings. `progress` is called after
/// every program with `(done, failures_so_far)`.
pub fn fuzz(
    seed0: u64,
    programs: usize,
    cfg: &CheckConfig,
    mut progress: impl FnMut(usize, usize),
) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..programs {
        let seed = spread_prng::mix(seed0, i as u64);
        if let Err(failure) = check_seed(seed, cfg) {
            report.failures.push(FuzzFailure { seed, failure });
        }
        report.programs += 1;
        report.executions += cfg.interleavings.max(1);
        progress(report.programs, report.failures.len());
    }
    report
}

/// Re-check a failing seed and shrink its program to a minimal
/// counterexample (deterministically).
pub fn shrink_seed(seed: u64, cfg: &CheckConfig) -> Option<(Program, CheckFailure)> {
    let p = gen_for(seed, cfg);
    check_program(&p, seed, cfg).err()?;
    let mut fails = |q: &Program| check_program(q, seed, cfg).is_err();
    let minimal = shrink::shrink(&p, &mut fails);
    let failure = check_program(&minimal, seed, cfg).expect_err("shrink keeps the program failing");
    Some((minimal, failure))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tie_breaks_are_reproducible_and_start_with_fifo() {
        let a = tie_breaks(7, 4);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0], TieBreak::Fifo);
        assert_eq!(a, tie_breaks(7, 4));
        assert_ne!(tie_breaks(7, 4)[1], tie_breaks(8, 4)[1]);
    }

    #[test]
    fn a_legal_seed_checks_clean() {
        check_seed(0, &CheckConfig::default()).unwrap();
    }

    #[test]
    fn fault_parsing() {
        assert_eq!(Fault::parse("stencil"), Some(Fault::StencilDropsLeftHalo));
        assert_eq!(Fault::parse("reduce"), Some(Fault::ReduceSkipsLast));
        assert_eq!(
            Fault::parse("recovery"),
            Some(Fault::RecoveryDropsLostChunk)
        );
        assert_eq!(Fault::parse("spill"), Some(Fault::SpillDropsSlice));
        assert_eq!(Fault::parse("peer"), Some(Fault::PeerCorrupt));
        assert_eq!(Fault::parse("rescue"), Some(Fault::RescueDoubleCommit));
        assert_eq!(Fault::parse("integrity"), Some(Fault::IntegrityCorrupt));
        assert_eq!(Fault::parse("overlap"), Some(Fault::OverlapLeak));
        assert_eq!(Fault::parse("nope"), None);
    }

    #[test]
    fn a_faulted_seed_checks_clean() {
        let cfg = CheckConfig {
            interleavings: 2,
            faults: true,
            ..CheckConfig::default()
        };
        check_seed(0, &cfg).unwrap();
    }

    #[test]
    fn pressure_seeds_check_clean() {
        let cfg = CheckConfig {
            interleavings: 2,
            pressure: true,
            ..CheckConfig::default()
        };
        for seed in 0..8u64 {
            if let Err(f) = check_seed(seed, &cfg) {
                panic!("pressure seed {seed}: {f}");
            }
        }
    }

    #[test]
    fn auto_seeds_check_clean() {
        let cfg = CheckConfig {
            interleavings: 2,
            auto: true,
            ..CheckConfig::default()
        };
        for seed in 0..8u64 {
            if let Err(f) = check_seed(seed, &cfg) {
                panic!("auto seed {seed}: {f}");
            }
        }
    }

    #[test]
    fn straggler_seeds_check_clean_and_some_rescue() {
        let cfg = CheckConfig {
            interleavings: 2,
            stragglers: true,
            ..CheckConfig::default()
        };
        let mut rescued = 0;
        for seed in 0..8u64 {
            if let Err(f) = check_seed(seed, &cfg) {
                panic!("straggler seed {seed}: {f}");
            }
            let got = run::execute(&gen_for(seed, &cfg), TieBreak::Fifo, None);
            rescued += got.rescues.len();
        }
        assert!(rescued > 0, "no straggler seed in 0..8 ever rescued");
    }

    #[test]
    fn integrity_seeds_check_clean_and_some_heal() {
        let cfg = CheckConfig {
            interleavings: 2,
            integrity: true,
            ..CheckConfig::default()
        };
        let mut healed = 0;
        for seed in 0..8u64 {
            if let Err(f) = check_seed(seed, &cfg) {
                panic!("integrity seed {seed}: {f}");
            }
            let got = run::execute(&gen_for(seed, &cfg), TieBreak::Fifo, None);
            healed += got.integrity_events.len();
        }
        assert!(healed > 0, "no integrity seed in 0..8 ever healed");
    }

    #[test]
    fn overlap_seeds_check_clean_and_some_pipeline() {
        let cfg = CheckConfig {
            interleavings: 2,
            overlap: true,
            ..CheckConfig::default()
        };
        let mut piped = 0;
        for seed in 0..8u64 {
            if let Err(f) = check_seed(seed, &cfg) {
                panic!("overlap seed {seed}: {f}");
            }
            let got = run::execute(&gen_for(seed, &cfg), TieBreak::Fifo, None);
            piped += got.overlap.len();
        }
        assert!(piped > 0, "no overlap seed in 0..8 ever pipelined");
    }

    #[test]
    fn peer_seeds_check_clean() {
        let cfg = CheckConfig {
            interleavings: 2,
            peer: true,
            ..CheckConfig::default()
        };
        for seed in 0..8u64 {
            if let Err(f) = check_seed(seed, &cfg) {
                panic!("peer seed {seed}: {f}");
            }
        }
    }

    #[test]
    fn oracle_canaries_are_caught_and_shrink() {
        // The three oracle-side canaries, re-run against the
        // semantics-backed oracle: each perturbs one rule of the
        // `spread-semantics` machine (stencil halo, host fold,
        // redistribute recovery), and some seed in a bounded scan must
        // expose the divergence and keep failing through shrinking.
        // (The runtime-side canaries — spill and peer — have their own
        // mode-specific tests below.)
        for (fault, faults_mode, seeds) in [
            (Fault::StencilDropsLeftHalo, false, 0..40u64),
            (Fault::ReduceSkipsLast, false, 0..40u64),
            (Fault::RecoveryDropsLostChunk, true, 0..80u64),
        ] {
            let cfg = CheckConfig {
                interleavings: 1,
                fault: Some(fault),
                faults: faults_mode,
                ..CheckConfig::default()
            };
            let seed = seeds
                .clone()
                .find(|&s| check_seed(s, &cfg).is_err())
                .unwrap_or_else(|| panic!("{fault:?}: no seed in {seeds:?} trips the canary"));
            let (minimal, failure) =
                shrink_seed(seed, &cfg).unwrap_or_else(|| panic!("{fault:?}: failure must shrink"));
            assert!(
                !minimal.phases.is_empty(),
                "{fault:?}: shrank to an empty program"
            );
            assert!(
                check_program(&minimal, seed, &cfg).is_err(),
                "{fault:?}: minimal program stopped failing: {failure}"
            );
        }
    }

    #[test]
    fn peer_canary_is_caught_and_shrinks() {
        let cfg = CheckConfig {
            interleavings: 1,
            fault: Some(Fault::PeerCorrupt),
            peer: true,
            ..CheckConfig::default()
        };
        // Find a seed whose `exchange(auto)` run actually routes a halo
        // device-to-device (a `bump`-free Halo with interior chunks),
        // so the corrupted byte reaches the final host state. The
        // host-forced runs must stay clean — the canary is inert there
        // — which is exactly what proves the differential leg watches
        // the peer route.
        let seed = (0..50u64)
            .find(|&s| check_seed(s, &cfg).is_err())
            .expect("some peer seed must route D2D and catch the corruption");
        let (minimal, failure) = shrink_seed(seed, &cfg).expect("canary failure shrinks");
        assert!(failure.detail.contains("array"), "{failure}");
        assert!(
            minimal
                .phases
                .iter()
                .flatten()
                .any(|s| matches!(s, ast::Stmt::Halo { .. })),
            "the halo exchange is load-bearing for the divergence"
        );
    }

    #[test]
    fn rescue_canary_is_caught_and_shrinks() {
        let cfg = CheckConfig {
            interleavings: 1,
            fault: Some(Fault::RescueDoubleCommit),
            stragglers: true,
            ..CheckConfig::default()
        };
        // Find a seed whose run actually rescues a piece: the forced
        // duplicate commit perturbs the losing copy's first staged
        // element, and the harness must flag the divergence from
        // first-commit-wins and keep it failing through shrinking.
        let seed = (0..50u64)
            .find(|&s| check_seed(s, &cfg).is_err())
            .expect("some straggler seed must rescue and catch the double commit");
        let (minimal, failure) = shrink_seed(seed, &cfg).expect("canary failure shrinks");
        // Replicate programs surface as bit divergence (the loser
        // drains last, perturbed); steal programs surface as a
        // commit-count violation (the perturbed drain lands first and
        // the winner overwrites it, but the gate counted two commits).
        assert!(
            failure.detail.contains("array") || failure.detail.contains("commit"),
            "{failure}"
        );
        assert!(
            minimal.straggler.is_some(),
            "the straggler spec is load-bearing for the divergence"
        );
        assert!(!minimal.phases.is_empty());
    }

    #[test]
    fn integrity_canary_is_caught_and_shrinks() {
        let cfg = CheckConfig {
            interleavings: 1,
            fault: Some(Fault::IntegrityCorrupt),
            integrity: true,
            ..CheckConfig::default()
        };
        // With the checks silently disabled, the armed flips either rot
        // the final host state (bit divergence from the flip-blind
        // oracle) or — when a later statement overwrites the rotten
        // element — leave the predicted healed-commit ledger empty.
        // Some seed in a bounded scan must be caught either way and
        // keep failing through shrinking.
        let seed = (0..50u64)
            .find(|&s| check_seed(s, &cfg).is_err())
            .expect("some integrity seed must surface the disabled checks");
        let (minimal, failure) = shrink_seed(seed, &cfg).expect("canary failure shrinks");
        assert!(
            failure.detail.contains("array") || failure.detail.contains("healed"),
            "{failure}"
        );
        assert!(
            minimal.integrity.is_some(),
            "the integrity spec is load-bearing for the divergence"
        );
        assert!(!minimal.phases.is_empty());
    }

    #[test]
    fn overlap_canary_is_caught_and_shrinks() {
        let cfg = CheckConfig {
            interleavings: 1,
            fault: Some(Fault::OverlapLeak),
            overlap: true,
            ..CheckConfig::default()
        };
        // The leaked sub-slice is value-visible (first element
        // perturbed before the early commit), so the harness flags it
        // as a bit divergence — or, when a later statement overwrites
        // the rotten element, as a `leaked` record in the ledger.
        let seed = (0..50u64)
            .find(|&s| check_seed(s, &cfg).is_err())
            .expect("some overlap seed must leak and be caught");
        let (minimal, failure) = shrink_seed(seed, &cfg).expect("canary failure shrinks");
        assert!(
            failure.detail.contains("array") || failure.detail.contains("boundary"),
            "{failure}"
        );
        assert!(
            minimal.overlap.is_some(),
            "the overlap spec is load-bearing for the divergence"
        );
        assert!(!minimal.phases.is_empty());
    }

    #[test]
    fn spill_canary_is_caught_and_shrinks() {
        let cfg = CheckConfig {
            interleavings: 1,
            fault: Some(Fault::SpillDropsSlice),
            pressure: true,
            ..CheckConfig::default()
        };
        // Find a seed whose program actually spills (Spill policy with a
        // visibly-perturbed kernel), then require the harness to flag it
        // and keep it failing through shrinking.
        let spilled = (0..200u64).find(|&seed| check_seed(seed, &cfg).is_err());
        let seed = spilled.expect("some pressure seed must spill and diverge");
        let (minimal, failure) = shrink_seed(seed, &cfg).expect("canary failure shrinks");
        assert!(failure.detail.contains("array"), "{failure}");
        assert!(
            minimal.pressure.is_some(),
            "the pressure spec is load-bearing for the spill divergence"
        );
        assert!(!minimal.phases.is_empty());
    }
}
