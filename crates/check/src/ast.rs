//! The conformance harness's program representation.
//!
//! A [`Program`] is a small directive program over the spread builder
//! surface: a set of host arrays (all the same length, filled by a fixed
//! deterministic rule) and a sequence of *phases*. Statements inside one
//! phase touch pairwise disjoint arrays, so `nowait` statements may
//! interleave freely without racing and the sequential oracle stays
//! exact; a `drain_all` barrier separates phases.
//!
//! The final phase may consist of *raw* data-mapping statements
//! (unpaired enter/exit/update, possibly illegal). Those exercise the
//! presence-table rules directly: the oracle predicts either the leaked
//! mapping state or the exact [`spread_rt::RtError`] they must produce.
//!
//! A program may also carry a [`FaultSpec`]: a device lost at virtual
//! time zero plus retry-absorbable transient copy bursts. Under
//! [`FaultMode::Resilient`] every spread construct runs with
//! `spread_resilience(redistribute)` and must still match the
//! fault-free prediction bit-for-bit; under [`FaultMode::FailStop`] the
//! oracle predicts the exact `DeviceLost` poisoning.

use spread_core::reduction::ReduceOp;
use spread_core::schedule::SpreadSchedule;
use spread_core::{IntegrityMode, PressurePolicy, StragglerPolicy};

/// A complete directive program.
#[derive(Clone, Debug)]
pub struct Program {
    /// Number of devices in the machine.
    pub n_devices: usize,
    /// Common length of every host array.
    pub n: usize,
    /// Number of host arrays (`A0 … A{n_arrays-1}`).
    pub n_arrays: usize,
    /// Phases; statements within a phase touch disjoint arrays.
    pub phases: Vec<Vec<Stmt>>,
    /// Seeded fault plan injected into the machine, if any.
    pub fault: Option<FaultSpec>,
    /// Memory-pressure scenario, if the program runs in pressure mode.
    pub pressure: Option<PressureSpec>,
    /// Straggler scenario, if the program runs in straggler mode.
    pub straggler: Option<StragglerSpec>,
    /// Silent-corruption scenario, if the program runs in integrity
    /// mode.
    pub integrity: Option<IntegritySpec>,
    /// Pipelined-overlap scenario, if the program runs in overlap mode.
    pub overlap: Option<OverlapSpec>,
}

impl Program {
    /// The deterministic initial value of element `i` of array `k` —
    /// shared by the executor's `fill_host` and the oracle.
    pub fn initial(k: usize, i: usize) -> f64 {
        ((i * 7 + k * 13) % 23) as f64 - 11.0
    }

    /// The permanently lost device, if the fault plan names one.
    pub fn lost_device(&self) -> Option<u32> {
        self.fault.as_ref().and_then(|f| f.lost)
    }

    /// True when spread constructs run under
    /// `spread_resilience(redistribute)`.
    pub fn resilient(&self) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|f| f.mode == FaultMode::Resilient)
    }

    /// The `spread_pressure(…)` policy every spread construct carries,
    /// when the program runs in pressure mode.
    pub fn pressure_policy(&self) -> Option<PressurePolicy> {
        self.pressure.as_ref().map(|ps| ps.policy)
    }

    /// The `spread_straggler(…)` policy every spread construct carries,
    /// when the program runs in straggler mode.
    pub fn straggler_policy(&self) -> Option<StragglerPolicy> {
        self.straggler.as_ref().map(|ss| ss.policy)
    }

    /// The `spread_integrity(…)` mode every spread construct carries,
    /// when the program runs in integrity mode.
    pub fn integrity_mode(&self) -> Option<IntegrityMode> {
        self.integrity.as_ref().map(|is| is.mode)
    }

    /// The `spread_overlap(…)` depth every spread construct carries,
    /// when the program runs in overlap mode.
    pub fn overlap_depth(&self) -> Option<u32> {
        self.overlap.as_ref().map(|os| os.depth)
    }

    /// True when any statement uses `spread_schedule(auto)` — the
    /// executor then runs with tracing on, so the runtime's profile
    /// layer has spans to learn from.
    pub fn uses_auto(&self) -> bool {
        self.phases.iter().flatten().any(|s| {
            matches!(
                s,
                Stmt::Spread {
                    sched: Sched::Auto { .. },
                    ..
                } | Stmt::Reduce {
                    sched: Sched::Auto { .. },
                    ..
                }
            )
        })
    }
}

/// The memory-pressure scenario attached to a [`Program`].
///
/// Every device's capacity is capped at `cap_bytes`, and the fault plan
/// opens a *sustained* OOM-pressure window (never released) on each
/// device in `sustained` at virtual time **zero** — so the headroom the
/// admission planner sees at every construct launch is exactly
/// `cap_bytes − sustained(d)`, independent of timing. That closed form
/// is what lets the oracle predict the exact
/// [`spread_rt::DegradationEvent`] sequence (or the exact
/// [`spread_rt::RtError::Degraded`]) for static schedules.
///
/// Caps and window sizes are multiples of 8 (one pool element), so the
/// advisory headroom equals the physical contiguous hole and the
/// runtime's reactive OOM-recovery rung never fires — every degradation
/// is an admission-time decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PressureSpec {
    /// `spread_pressure(split)` or `spread_pressure(spill)`.
    pub policy: PressurePolicy,
    /// Per-device memory capacity in bytes (multiple of 8).
    pub cap_bytes: u64,
    /// Sustained pressure windows `(device, bytes)`, opened at time
    /// zero and never released (bytes are multiples of 8).
    pub sustained: Vec<(u32, u64)>,
}

impl PressureSpec {
    /// The admission headroom of `device`: capacity minus every
    /// sustained window held against it.
    pub fn headroom(&self, device: u32) -> u64 {
        let held: u64 = self
            .sustained
            .iter()
            .filter(|&&(d, _)| d == device)
            .map(|&(_, b)| b)
            .sum();
        self.cap_bytes.saturating_sub(held)
    }
}

/// The straggler scenario attached to a [`Program`].
///
/// Every slowed device's compute-slowdown window opens at virtual time
/// **zero** and never closes, so whether a piece straggles depends only
/// on the program (which device its chunk lands on), never on event
/// timing — the same dead-on-arrival discipline as [`FaultSpec`].
/// Slowdowns stretch modeled kernel *durations* only; the slowed
/// kernels still compute the same bits, so the oracle's prediction is
/// unchanged and the rescue machinery must be value-invisible: results
/// bit-identical, exactly one commit per rescued piece.
#[derive(Clone, Debug, PartialEq)]
pub struct StragglerSpec {
    /// `spread_straggler(steal)` or `spread_straggler(replicate)`.
    pub policy: StragglerPolicy,
    /// Slowed devices `(device, factor)`; factors are large enough
    /// (≥ 8) that a straggling piece always blows the default
    /// 4× progress deadline.
    pub slow: Vec<(u32, u32)>,
}

/// The silent-corruption scenario attached to a [`Program`].
///
/// Every flip burst arms at virtual time **zero** — the same
/// dead-on-arrival discipline as [`FaultSpec`] — so which drains rot
/// depends only on the program (how many committing drains each device
/// performs, in what per-device order), never on event timing. Counts
/// stay under the runtime's default mismatch breaker (8), so healing
/// never escalates to quarantine and the oracle's prediction is purely
/// the flip-blind fault-free state: under
/// [`IntegrityMode::Heal`](spread_core::IntegrityMode::Heal) results
/// must be bit-identical with exactly `count` healed commits per
/// flipped device that drains at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntegritySpec {
    /// `spread_integrity(heal)` (the fuzz mode; `verify` is covered by
    /// directed tests since it poisons at the first drain).
    pub mode: IntegrityMode,
    /// Flip bursts `(device, count)`, `1 ≤ count ≤ 3` — far below the
    /// default breaker streak of 8.
    pub flips: Vec<(u32, u32)>,
}

/// The pipelined-overlap scenario attached to a [`Program`].
///
/// Every spread statement carries `spread_overlap(depth)`: the runtime
/// splits each device's chunk into up to `depth` balanced sub-slices
/// and pipelines copy-in → sub-kernel → staged copy-out. The pipeline
/// is a pure latency optimization — the oracle stays *overlap-blind*
/// and predicts the same host state as the un-pipelined run — so the
/// harness requires bit-identical results plus a structurally sound
/// [`spread_rt::OverlapRecord`] ledger: one record per piece of two or
/// more iterations, stage count `min(depth, len)`, every staged
/// sub-slice committed exactly at the whole-piece boundary, nothing
/// leaked early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OverlapSpec {
    /// The pipeline depth every spread construct requests (`2 ≤ depth
    /// ≤ 4`; the runtime clamps per piece to the piece length).
    pub depth: u32,
}

/// How the program's spread constructs respond to permanent device
/// loss.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultMode {
    /// The default: the loss poisons the program with
    /// [`spread_rt::RtError::DeviceLost`].
    #[default]
    FailStop,
    /// Every `target spread` carries `spread_resilience(redistribute)`:
    /// the lost device's chunks are rebuilt on the survivors and the
    /// final host state is bit-identical to the fault-free run.
    Resilient,
}

/// The fault plan attached to a [`Program`].
///
/// The lost device dies at virtual time **zero** — dead on arrival — so
/// the outcome is independent of schedule timing: every task targeting
/// it faults, under every interleaving. (The runtime's own tests cover
/// mid-run losses; the conformance oracle needs a prediction that does
/// not depend on when work lands.) Transient copy bursts are sized
/// under the default retry budget, so retry + backoff absorbs them and
/// the final state is unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Device permanently lost at time zero, if any.
    pub lost: Option<u32>,
    /// Fail-stop or redistribute.
    pub mode: FaultMode,
    /// Transient copy-fault bursts `(device, count)`, `count ≤ 3`
    /// (the default `RetryPolicy` budget).
    pub transients: Vec<(u32, u32)>,
}

/// A `spread_schedule(…)` clause (mirror of
/// [`spread_core::schedule::SpreadSchedule`] with integer weights so it
/// can be generated, printed and shrunk losslessly).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Sched {
    /// `spread_schedule(static, chunk)`.
    Static {
        /// Chunk size.
        chunk: usize,
    },
    /// `spread_schedule(weighted, round)` with per-device weights.
    Weighted {
        /// Iterations per round.
        round: usize,
        /// One positive weight per device in the list.
        weights: Vec<u32>,
    },
    /// `spread_schedule(dynamic, chunk)` (§IX extension).
    Dynamic {
        /// Chunk size.
        chunk: usize,
    },
    /// `spread_schedule(auto)` (§IX extension): profile-guided. The
    /// runtime resolves it per launch into a `StaticWeighted` plan from
    /// the weights learned under `key`; statements sharing a key share
    /// a learned weight vector.
    Auto {
        /// Construct key (lowered to the runtime key `auto-{key}`).
        key: u32,
    },
}

impl Sched {
    /// Convert into the runtime's schedule type.
    pub fn to_schedule(&self) -> SpreadSchedule {
        match self {
            Sched::Static { chunk } => SpreadSchedule::Static { chunk: *chunk },
            Sched::Weighted { round, weights } => SpreadSchedule::StaticWeighted {
                round: *round,
                weights: weights.iter().map(|&w| w as f64).collect(),
            },
            Sched::Dynamic { chunk } => SpreadSchedule::Dynamic { chunk: *chunk },
            Sched::Auto { key } => SpreadSchedule::auto(format!("auto-{key}")),
        }
    }

    /// The schedule the *oracle* interprets. `Auto` becomes an
    /// equal-weight `StaticWeighted` stand-in: auto programs restrict
    /// themselves to placement-independent kernels (no stencils, no
    /// pressure), so the predicted host state is the same for every
    /// valid static split — including whatever adapted split the
    /// runtime actually realizes.
    pub fn oracle_schedule(&self, n: usize, k: usize) -> SpreadSchedule {
        match self {
            Sched::Auto { .. } => SpreadSchedule::StaticWeighted {
                round: n.max(1),
                weights: vec![1.0; k.max(1)],
            },
            other => other.to_schedule(),
        }
    }
}

/// The kernel run by a [`Stmt::Spread`] statement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KernelOp {
    /// `a[i] += c` over `0..n` (`map(spread_tofrom: a[chunk])`).
    AddConst {
        /// Target array.
        a: usize,
        /// Constant.
        c: f64,
    },
    /// `a[i] *= c` over `0..n` (`map(spread_tofrom: a[chunk])`).
    Scale {
        /// Target array.
        a: usize,
        /// Factor.
        c: f64,
    },
    /// `y[i] += alpha * x[i]` over `0..n`
    /// (`map(spread_to: x[chunk]) map(spread_tofrom: y[chunk])`).
    Saxpy {
        /// Read-only input.
        x: usize,
        /// In/out array.
        y: usize,
        /// Factor.
        alpha: f64,
    },
    /// `dst[i] = src[i-1] + src[i] + src[i+1]` over `1..n-1` with the
    /// paper's halo maps (`map(spread_to: src[ss-1:sz+2])
    /// map(spread_from: dst[chunk])`). Static schedules only, subject to
    /// the §V-B gap rule.
    Stencil3 {
        /// Read-only input.
        src: usize,
        /// Write-only output.
        dst: usize,
    },
}

impl KernelOp {
    /// Arrays this kernel touches.
    pub fn arrays(&self) -> Vec<usize> {
        match *self {
            KernelOp::AddConst { a, .. } | KernelOp::Scale { a, .. } => vec![a],
            KernelOp::Saxpy { x, y, .. } => vec![x, y],
            KernelOp::Stencil3 { src, dst } => vec![src, dst],
        }
    }

    /// The iteration range for arrays of length `n`.
    pub fn range(&self, n: usize) -> std::ops::Range<usize> {
        match self {
            KernelOp::Stencil3 { .. } => 1..n - 1,
            _ => 0..n,
        }
    }
}

/// An intentionally malformed directive (each maps to a specific
/// [`spread_rt::RtError::InvalidDirective`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BadKind {
    /// `target enter data spread` with a `dynamic` schedule — data
    /// directives require a static distribution.
    DynamicDataSchedule,
    /// `target enter data spread` without the `chunk_size` clause.
    MissingChunkSize,
    /// `target spread` with an empty `devices(…)` list.
    EmptyDevices,
}

/// One statement of a phase.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `#pragma omp target spread … [nowait]` + kernel.
    Spread {
        /// `devices(…)`, in distribution order.
        devices: Vec<u32>,
        /// `spread_schedule(…)`.
        sched: Sched,
        /// `nowait`.
        nowait: bool,
        /// The kernel.
        op: KernelOp,
    },
    /// The §IX cross-device reduction: `partials[i] = alpha * a[i]`
    /// spread over the devices, folded on the host with `op`.
    Reduce {
        /// `devices(…)`.
        devices: Vec<u32>,
        /// `spread_schedule(…)`.
        sched: Sched,
        /// Input array.
        a: usize,
        /// Per-iteration partials array (`map(spread_from: …)`).
        partials: usize,
        /// Kernel factor.
        alpha: f64,
        /// Host-side combiner.
        op: ReduceOp,
    },
    /// An unstructured data region over one array: enter-spread `to`,
    /// optional `tofrom` kernel body (reuse path: refcount 2, no
    /// copies), optional `update from`, then exit-spread `from` or
    /// `release`.
    DataRegion {
        /// `devices(…)`.
        devices: Vec<u32>,
        /// `chunk_size(…)` used by every leg.
        chunk: usize,
        /// The array.
        a: usize,
        /// Body kernel: `a[i] += c` with the same chunking.
        body_add: Option<f64>,
        /// `target update spread from(a[chunk])` after the body.
        update_from: bool,
        /// Exit with `from` (copy-out) instead of `release` (discard).
        exit_from: bool,
    },
    /// A peer-mode halo-exchange region over one array (see
    /// [`crate::CheckConfig::peer`]): enter-spread `to` of halo'd
    /// chunks `[start−1, end+1)∩[0, n)` (one chunk per device, so the
    /// overlapping halos land on *sibling* presence tables), an
    /// optional in-place body bump on the device images (reuse path —
    /// the host keeps the stale values, so every sibling copy stops
    /// being bit-identical to the host image), a `target update
    /// spread` of each chunk's one-element halos whose `exchange(…)`
    /// mode the executor chooses per run, a clamped 3-point stencil
    /// reading the refreshed window into `dst` (propagating the halo
    /// bytes into the final host state), and an exit-spread release.
    ///
    /// The must-peer set is closed-form: with `bump: None` every
    /// interior halo element is held bit-identical by exactly one
    /// sibling (the neighbouring chunk's device — `chunk ≥ 2` keeps it
    /// unique), so `exchange(auto)` must pull it device-to-device;
    /// with `bump: Some(_)` every sibling image is stale and every
    /// halo must take the host route.
    Halo {
        /// `devices(…)`, in distribution order. At least two; the
        /// generator sizes `chunk` so each gets at most one chunk
        /// (same-device halo'd chunks would overlap-extend).
        devices: Vec<u32>,
        /// `chunk_size(…)` of every leg (`⌈n/k⌉ ≥ 2`).
        chunk: usize,
        /// The exchanged array.
        a: usize,
        /// Stencil output array.
        dst: usize,
        /// Device-side body bump applied after the enter: `Some(c)`
        /// forces every halo onto the host route.
        bump: Option<f64>,
    },
    /// Raw single-chunk `target enter data spread devices(d)
    /// map(spread_to: a[start:len])` — may legally leak a mapping or
    /// produce an `OverlapExtension`/`OutOfMemory` error.
    RawEnter {
        /// Device.
        device: u32,
        /// Array.
        a: usize,
        /// Section start.
        start: usize,
        /// Section length.
        len: usize,
    },
    /// Raw single-chunk `target exit data spread` with `from` (or
    /// `delete`) — `NotMapped` when nothing contains the section.
    RawExit {
        /// Device.
        device: u32,
        /// Array.
        a: usize,
        /// Section start.
        start: usize,
        /// Section length.
        len: usize,
        /// `map(delete: …)` instead of `map(from: …)`.
        delete: bool,
    },
    /// Raw single-chunk `target update spread` — `NotMapped` when the
    /// section is absent.
    RawUpdate {
        /// Device.
        device: u32,
        /// Array.
        a: usize,
        /// Section start.
        start: usize,
        /// Section length.
        len: usize,
        /// `from(…)` (device→host) instead of `to(…)`.
        from: bool,
    },
    /// A malformed directive with a predictable `InvalidDirective`.
    Bad {
        /// The array it names.
        a: usize,
        /// What is wrong with it.
        kind: BadKind,
    },
}

impl Stmt {
    /// Arrays this statement touches (used for the per-phase
    /// disjointness discipline).
    pub fn arrays(&self) -> Vec<usize> {
        match self {
            Stmt::Spread { op, .. } => op.arrays(),
            Stmt::Reduce { a, partials, .. } => vec![*a, *partials],
            Stmt::DataRegion { a, .. } => vec![*a],
            Stmt::Halo { a, dst, .. } => vec![*a, *dst],
            Stmt::RawEnter { a, .. }
            | Stmt::RawExit { a, .. }
            | Stmt::RawUpdate { a, .. }
            | Stmt::Bad { a, .. } => vec![*a],
        }
    }

    /// True for the raw / malformed statements that only appear in the
    /// final phase.
    pub fn is_raw(&self) -> bool {
        matches!(
            self,
            Stmt::RawEnter { .. }
                | Stmt::RawExit { .. }
                | Stmt::RawUpdate { .. }
                | Stmt::Bad { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_fill_is_deterministic_and_varied() {
        assert_eq!(Program::initial(0, 0), Program::initial(0, 0));
        let distinct: std::collections::BTreeSet<i64> =
            (0..64).map(|i| Program::initial(1, i) as i64).collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn sched_converts() {
        assert_eq!(
            Sched::Static { chunk: 4 }.to_schedule(),
            SpreadSchedule::Static { chunk: 4 }
        );
        let weighted = Sched::Weighted {
            round: 8,
            weights: vec![1, 3],
        };
        match weighted.to_schedule() {
            SpreadSchedule::StaticWeighted { round, weights } => {
                assert_eq!(round, 8);
                assert_eq!(weights, vec![1.0, 3.0]);
            }
            other => panic!("wrong schedule {other:?}"),
        }
    }

    #[test]
    fn op_ranges_and_arrays() {
        let st = KernelOp::Stencil3 { src: 0, dst: 1 };
        assert_eq!(st.range(10), 1..9);
        assert_eq!(st.arrays(), vec![0, 1]);
        let sx = KernelOp::Saxpy {
            x: 2,
            y: 0,
            alpha: 0.5,
        };
        assert_eq!(sx.range(10), 0..10);
        assert_eq!(sx.arrays(), vec![2, 0]);
    }
}
