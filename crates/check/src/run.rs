//! The executor: lowers a [`Program`] onto the real runtime and runs it
//! under a chosen event-queue tie-break policy, collecting everything
//! the oracle predicts — final host arrays, reduction values, the
//! mapping-table snapshot, race reports, and the first error.

use spread_core::spread_map::SpreadMap;
use spread_core::testing::TargetSpreadTestingExt;
use spread_core::{
    spread_from, spread_to, spread_tofrom, ExchangeMode, IntegrityMode, OverlapPolicy,
    PressurePolicy, ResiliencePolicy, SpreadClausesExt, SpreadSchedule, TargetEnterDataSpread,
    TargetExitDataSpread, TargetSpread, TargetUpdateSpread,
};
use spread_devices::{DeviceSpec, Topology};
use spread_rt::kernel::KernelArg;
use spread_rt::{
    DegradationEvent, HostArray, IntegrityEvent, KernelSpec, MapType, RtError, Runtime,
    RuntimeConfig, Scope,
};
use spread_sim::{FaultPlan, SimTime, TieBreak};
use spread_trace::ConstructProfile;

use crate::ast::{
    BadKind, FaultSpec, IntegritySpec, KernelOp, PressureSpec, Program, Stmt, StragglerSpec,
};
use crate::{oracle, Fault};
use spread_core::StragglerPolicy;
use spread_rt::{OverlapRecord, RescueRecord};

/// The host staging-buffer bound the executor configures for pressure
/// programs: 8 pool elements, small enough that most spilled pieces
/// stream through in several map→compute→unmap slices.
pub const SPILL_STAGING_BYTES: u64 = 64;

/// Everything observed from one execution.
#[derive(Clone, Debug, PartialEq)]
pub struct Observed {
    /// Final host arrays.
    pub arrays: Vec<Vec<f64>>,
    /// Reduction results in statement order.
    pub reduces: Vec<f64>,
    /// `(array, start, len, refcount)` per device, sorted — from
    /// [`Runtime::mapping_snapshot`].
    pub mappings: Vec<Vec<(u32, usize, usize, u32)>>,
    /// Degradation events in program order, from
    /// [`Runtime::degradations`].
    pub degradations: Vec<DegradationEvent>,
    /// Per-construct adaptive profiles in launch order, from
    /// [`Runtime::profiles`] — non-empty only for
    /// `spread_schedule(auto)` programs (which run with tracing on).
    pub profiles: Vec<ConstructProfile>,
    /// Number of race reports.
    pub races: usize,
    /// Every peer copy the runtime performed, in enqueue order:
    /// `(src, dst, array, start, len, diverted)` — from
    /// [`Runtime::peer_copies`]. Empty unless the program carries
    /// [`Stmt::Halo`] statements executed under `exchange(auto)`.
    pub peer_copies: Vec<(u32, u32, u32, usize, usize, bool)>,
    /// Every straggler rescue the runtime performed, in detection
    /// order — from [`Runtime::rescues`]. Empty unless the program
    /// carries a [`StragglerSpec`].
    pub rescues: Vec<RescueRecord>,
    /// Every caught corruption, in detection order — from
    /// [`Runtime::integrity_events`]. Empty unless the program carries
    /// an [`IntegritySpec`] (or the peer canary arms a flip).
    pub integrity_events: Vec<IntegrityEvent>,
    /// Every pipelined piece the runtime ran, in completion order —
    /// from [`Runtime::overlap_records`]. Empty unless the program
    /// carries an [`crate::ast::OverlapSpec`].
    pub overlap: Vec<OverlapRecord>,
    /// The first error, if any.
    pub error: Option<RtError>,
}

/// One [`execute_cached`] run: the ordinary observables plus the two
/// things the cache-parity suite additionally diffs — the full span
/// timeline and the plan-cache counters.
#[derive(Clone, Debug)]
pub struct CacheRun {
    /// Everything [`execute_ex`] observes.
    pub observed: Observed,
    /// The merged span timeline (tracing is forced on for both parity
    /// legs so the comparison covers it byte for byte).
    pub timeline: Vec<spread_trace::Span>,
    /// Hit/miss/invalidation counters and planning-time totals.
    pub plan: spread_rt::PlanCacheStats,
}

/// Build the harness's machine: uniform devices with ample memory, two
/// team threads, tracing off unless the program uses
/// `spread_schedule(auto)` (the conformance assertions do not need span
/// records — `tests/determinism.rs` covers the timeline — but the
/// adaptive profile layer learns from spans, so auto programs trace).
/// The program's [`FaultSpec`], if any, is lowered to a [`FaultPlan`]:
/// the loss fires at time zero and transient bursts start failing
/// copies immediately, so the outcome is the same under every
/// tie-break.
#[allow(clippy::too_many_arguments)]
fn runtime(
    n_devices: usize,
    tie: TieBreak,
    fault: Option<&FaultSpec>,
    pressure: Option<&PressureSpec>,
    straggler: Option<&StragglerSpec>,
    integrity: Option<&IntegritySpec>,
    peer_flip: Option<u32>,
    trace: bool,
    plan_cache: Option<bool>,
) -> Runtime {
    // Pressure programs run on their spec's tiny capacity; everything
    // else gets ample memory so admission never interferes.
    let mem_bytes = pressure.map_or(1 << 22, |ps| ps.cap_bytes);
    let topo = Topology::uniform(
        n_devices,
        DeviceSpec::v100().with_mem_bytes(mem_bytes),
        1e9,
        1.6e9,
    );
    let mut cfg = RuntimeConfig::new(topo)
        .with_team_threads(2)
        .with_trace(trace)
        .with_tie_break(tie);
    if let Some(on) = plan_cache {
        cfg = cfg.with_plan_cache(on);
    }
    // A fixed plan seed: it only feeds retry-backoff jitter, which
    // shifts virtual timing, never results.
    let mut plan = FaultPlan::new(0xFA17);
    if let Some(f) = fault {
        if let Some(d) = f.lost {
            plan = plan.lose_device(d, SimTime::ZERO);
        }
        for &(d, count) in &f.transients {
            plan = plan.transient_copies(d, SimTime::ZERO, count);
        }
    }
    if let Some(ps) = pressure {
        cfg = cfg.with_spill_staging_bytes(SPILL_STAGING_BYTES);
        for &(d, bytes) in &ps.sustained {
            plan = plan.sustain_pressure(d, SimTime::ZERO, bytes);
        }
    }
    if let Some(ss) = straggler {
        for &(d, factor) in &ss.slow {
            plan = plan.slow_compute(d, SimTime::ZERO, SimTime::MAX, factor as f64);
        }
    }
    if let Some(is) = integrity {
        // Flip bursts arm at time zero — like every other spec fault —
        // so which committing drains rot is a pure function of the
        // program, not of event timing.
        for &(d, count) in &is.flips {
            plan = plan.silent_flips(d, SimTime::ZERO, count);
        }
    }
    if let Some(d) = peer_flip {
        // The `--inject peer` canary: one in-flight flip armed against
        // the destination device of the first predicted peer route.
        plan = plan.silent_flips(d, SimTime::ZERO, 1);
    }
    if !plan.is_empty() {
        cfg = cfg.with_fault_plan(plan);
    }
    Runtime::new(cfg)
}

#[allow(clippy::too_many_arguments)]
fn issue_spread(
    s: &mut Scope<'_>,
    handles: &[HostArray],
    n: usize,
    devices: &[u32],
    sched: SpreadSchedule,
    nowait: bool,
    resilience: ResiliencePolicy,
    pressure: Option<PressurePolicy>,
    drop_spill: bool,
    straggler: Option<StragglerPolicy>,
    force_rescue: bool,
    integrity: Option<IntegrityMode>,
    overlap: Option<u32>,
    leak_overlap: bool,
    plan_key: bool,
    op: &KernelOp,
) -> Result<(), RtError> {
    let range = op.range(n);
    let mut b = TargetSpread::devices(devices.iter().copied())
        .with_schedule(sched.clone())
        .with_resilience(resilience);
    // Parity mode: key every static-schedule construct by its kernel-op
    // shape. One op variant ⇔ one closure shape, so the
    // `spread_plan_cache` one-key-one-construct contract holds; the
    // fingerprint separates everything else (devices, schedule, arrays).
    if plan_key
        && matches!(
            sched,
            SpreadSchedule::Static { .. } | SpreadSchedule::StaticWeighted { .. }
        )
    {
        b = b.with_plan_cache(match op {
            KernelOp::AddConst { .. } => "addc",
            KernelOp::Scale { .. } => "scale",
            KernelOp::Saxpy { .. } => "saxpy",
            KernelOp::Stencil3 { .. } => "stencil",
        });
    }
    if let Some(mode) = integrity {
        b = b.with_integrity(mode);
    }
    if let Some(depth) = overlap {
        b = b.with_overlap(OverlapPolicy::Depth(depth));
        if leak_overlap {
            // The `--inject overlap` canary: the *runtime* commits one
            // staged sub-slice to host memory before the whole-piece
            // commit point, first element perturbed, and the harness
            // must catch the escape (bit divergence or a `leaked`
            // record).
            b = b.inject_overlap_leak();
        }
    }
    if let Some(policy) = pressure {
        b = b.with_pressure(policy);
        if drop_spill {
            // The `--inject spill` canary: the *runtime* silently drops
            // the last slice of every spilled piece, and the harness
            // must catch the divergence from the (correct) oracle.
            b = b.inject_drop_last_spill_slice();
        }
    }
    // Straggler programs run serial lanes with a 2000× per-iteration
    // cost, so kernel work dominates the progress window and a slowed
    // piece reliably blows the 4× deadline (launch latency and the
    // enter copies would otherwise hide the slowdown).
    let cost = if straggler.is_some() { 2000.0 } else { 1.0 };
    if let Some(policy) = straggler {
        b = b.with_straggler(policy).num_teams(1).num_threads(1);
        if force_rescue {
            // The `--inject rescue` canary: the *runtime* lets the
            // losing copy of every rescue commit its staged writes
            // anyway (first element perturbed), and the harness must
            // catch the divergence from first-commit-wins.
            b = b.inject_rescue_double_commit();
        }
    }
    if nowait {
        b = b.nowait();
    }
    match *op {
        KernelOp::AddConst { a, c } => {
            let h = handles[a];
            b.map(spread_tofrom(h, |c| c.range())).parallel_for(
                s,
                range,
                KernelSpec::new("addc", cost, move |r, v| {
                    for i in r {
                        v.set(0, i, v.get(0, i) + c);
                    }
                })
                .arg(KernelArg::read_write(h, |r| r)),
            )?;
        }
        KernelOp::Scale { a, c } => {
            let h = handles[a];
            b.map(spread_tofrom(h, |c| c.range())).parallel_for(
                s,
                range,
                KernelSpec::new("scale", cost, move |r, v| {
                    for i in r {
                        v.set(0, i, v.get(0, i) * c);
                    }
                })
                .arg(KernelArg::read_write(h, |r| r)),
            )?;
        }
        KernelOp::Saxpy { x, y, alpha } => {
            let hx = handles[x];
            let hy = handles[y];
            b.map(spread_to(hx, |c| c.range()))
                .map(spread_tofrom(hy, |c| c.range()))
                .parallel_for(
                    s,
                    range,
                    KernelSpec::new("saxpy", cost, move |r, v| {
                        for i in r {
                            v.set(1, i, v.get(1, i) + alpha * v.get(0, i));
                        }
                    })
                    .arg(KernelArg::read(hx, |r| r))
                    .arg(KernelArg::read_write(hy, |r| r)),
                )?;
        }
        KernelOp::Stencil3 { src, dst } => {
            let hs = handles[src];
            let hd = handles[dst];
            b.map(spread_to(hs, |c| c.start() - 1..c.end() + 1))
                .map(spread_from(hd, |c| c.range()))
                .parallel_for(
                    s,
                    range,
                    KernelSpec::new("stencil", 2.0 * cost, move |r, v| {
                        for i in r {
                            let sum = v.get(0, i - 1) + v.get(0, i) + v.get(0, i + 1);
                            v.set(1, i, sum);
                        }
                    })
                    .arg(KernelArg::read(hs, |r| r.start - 1..r.end + 1))
                    .arg(KernelArg::write(hd, |r| r)),
                )?;
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn issue(
    s: &mut Scope<'_>,
    p: &Program,
    handles: &[HostArray],
    reduces: &mut Vec<f64>,
    drop_spill: bool,
    force_rescue: bool,
    exchange: ExchangeMode,
    integrity: Option<IntegrityMode>,
    leak_overlap: bool,
    plan_key: bool,
    stmt: &Stmt,
) -> Result<(), RtError> {
    let resilience = if p.resilient() {
        ResiliencePolicy::Redistribute
    } else {
        ResiliencePolicy::FailStop
    };
    match stmt {
        Stmt::Spread {
            devices,
            sched,
            nowait,
            op,
        } => issue_spread(
            s,
            handles,
            p.n,
            devices,
            sched.to_schedule(),
            *nowait,
            resilience,
            p.pressure_policy(),
            drop_spill,
            p.straggler_policy(),
            force_rescue,
            integrity,
            p.overlap_depth(),
            leak_overlap,
            plan_key,
            op,
        ),
        Stmt::Reduce {
            devices,
            sched,
            a,
            partials,
            alpha,
            op,
        } => {
            let ha = handles[*a];
            let hp = handles[*partials];
            let alpha = *alpha;
            let mut b = TargetSpread::devices(devices.iter().copied())
                .with_schedule(sched.to_schedule())
                .with_resilience(resilience);
            if plan_key
                && matches!(
                    sched.to_schedule(),
                    SpreadSchedule::Static { .. } | SpreadSchedule::StaticWeighted { .. }
                )
            {
                b = b.with_plan_cache("reduce");
            }
            let value = b.map(spread_to(ha, |c| c.range())).parallel_for_reduce(
                s,
                0..p.n,
                KernelSpec::new("partials", 1.0, move |r, v| {
                    for i in r {
                        v.set(1, i, alpha * v.get(0, i));
                    }
                })
                .arg(KernelArg::read(ha, |r| r))
                .arg(KernelArg::write(hp, |r| r)),
                hp,
                *op,
            )?;
            reduces.push(value);
            Ok(())
        }
        Stmt::DataRegion {
            devices,
            chunk,
            a,
            body_add,
            update_from,
            exit_from,
        } => {
            let h = handles[*a];
            TargetEnterDataSpread::devices(devices.iter().copied())
                .range(0, p.n)
                .chunk_size(*chunk)
                .map(spread_to(h, |c| c.range()))
                .launch(s)?;
            if let Some(cv) = *body_add {
                issue_spread(
                    s,
                    handles,
                    p.n,
                    devices,
                    SpreadSchedule::static_chunk(*chunk),
                    false,
                    resilience,
                    None,
                    false,
                    None,
                    false,
                    None,
                    None,
                    false,
                    plan_key,
                    &KernelOp::AddConst { a: *a, c: cv },
                )?;
            }
            if *update_from {
                TargetUpdateSpread::devices(devices.iter().copied())
                    .range(0, p.n)
                    .chunk_size(*chunk)
                    .from(h, |c| c.range())
                    .launch(s)?;
            }
            let exit_map = if *exit_from {
                spread_from(h, |c| c.range())
            } else {
                SpreadMap::new(MapType::Release, h, |c| c.range())
            };
            TargetExitDataSpread::devices(devices.iter().copied())
                .range(0, p.n)
                .chunk_size(*chunk)
                .map(exit_map)
                .launch(s)?;
            Ok(())
        }
        Stmt::Halo {
            devices,
            chunk,
            a,
            dst,
            bump,
        } => {
            let n = p.n;
            let h = handles[*a];
            let hd = handles[*dst];
            let halo =
                move |c: spread_core::ChunkCtx| c.start().saturating_sub(1)..(c.end() + 1).min(n);
            TargetEnterDataSpread::devices(devices.iter().copied())
                .range(0, n)
                .chunk_size(*chunk)
                .map(spread_to(h, halo))
                .launch(s)?;
            if let Some(cv) = *bump {
                // Reuses the persistent mapping (exact-body containment)
                // so the bumped bytes never reach the host: every
                // sibling image goes stale and the exchange planner must
                // route each halo through the host.
                issue_spread(
                    s,
                    handles,
                    n,
                    devices,
                    SpreadSchedule::static_chunk(*chunk),
                    false,
                    resilience,
                    None,
                    false,
                    None,
                    false,
                    None,
                    None,
                    false,
                    plan_key,
                    &KernelOp::AddConst { a: *a, c: cv },
                )?;
            }
            TargetUpdateSpread::devices(devices.iter().copied())
                .range(0, n)
                .chunk_size(*chunk)
                .to(h, |c| c.start().saturating_sub(1)..c.start())
                .to(h, move |c| c.end()..(c.end() + 1).min(n))
                .exchange(exchange)
                .launch(s)?;
            // Clamped 3-point stencil over the refreshed window: the
            // `to` map is the exact halo'd section (pure reuse, no
            // copy), and the `from` map carries the freshly exchanged
            // halo bytes into the final host state of `dst`.
            let n1 = n - 1;
            let mut b = TargetSpread::devices(devices.iter().copied())
                .with_schedule(SpreadSchedule::static_chunk(*chunk));
            if plan_key {
                b = b.with_plan_cache("halo-stencil");
            }
            b.map(spread_to(h, halo))
                .map(spread_from(hd, |c| c.range()))
                .parallel_for(
                    s,
                    0..n,
                    KernelSpec::new("halo-stencil", 2.0, move |r, v| {
                        for i in r {
                            let l = if i == 0 { i } else { i - 1 };
                            let rr = if i == n1 { i } else { i + 1 };
                            v.set(1, i, v.get(0, l) + v.get(0, i) + v.get(0, rr));
                        }
                    })
                    .arg(KernelArg::read(h, move |r| {
                        r.start.saturating_sub(1)..(r.end + 1).min(n)
                    }))
                    .arg(KernelArg::write(hd, |r| r)),
                )?;
            TargetExitDataSpread::devices(devices.iter().copied())
                .range(0, n)
                .chunk_size(*chunk)
                .map(SpreadMap::new(MapType::Release, h, halo))
                .launch(s)?;
            Ok(())
        }
        Stmt::RawEnter {
            device,
            a,
            start,
            len,
        } => {
            TargetEnterDataSpread::devices([*device])
                .range(*start, *len)
                .chunk_size(*len)
                .map(spread_to(handles[*a], |c| c.range()))
                .launch(s)?;
            Ok(())
        }
        Stmt::RawExit {
            device,
            a,
            start,
            len,
            delete,
        } => {
            let mt = if *delete {
                MapType::Delete
            } else {
                MapType::From
            };
            TargetExitDataSpread::devices([*device])
                .range(*start, *len)
                .chunk_size(*len)
                .map(SpreadMap::new(mt, handles[*a], |c| c.range()))
                .launch(s)?;
            Ok(())
        }
        Stmt::RawUpdate {
            device,
            a,
            start,
            len,
            from,
        } => {
            let mut b = TargetUpdateSpread::devices([*device])
                .range(*start, *len)
                .chunk_size(*len);
            if *from {
                b = b.from(handles[*a], |c| c.range());
            } else {
                b = b.to(handles[*a], |c| c.range());
            }
            b.launch(s)?;
            Ok(())
        }
        Stmt::Bad { a, kind } => {
            let h = handles[*a];
            match kind {
                BadKind::DynamicDataSchedule => {
                    TargetEnterDataSpread::devices([0])
                        .with_schedule(SpreadSchedule::dynamic(4))
                        .range(0, p.n)
                        .chunk_size(4)
                        .map(spread_to(h, |c| c.range()))
                        .launch(s)?;
                }
                BadKind::MissingChunkSize => {
                    TargetEnterDataSpread::devices([0])
                        .range(0, p.n)
                        .map(spread_to(h, |c| c.range()))
                        .launch(s)?;
                }
                BadKind::EmptyDevices => {
                    TargetSpread::devices([]).parallel_for(
                        s,
                        0..p.n,
                        KernelSpec::new("noop", 1.0, |_, _| {}),
                    )?;
                }
            }
            Ok(())
        }
    }
}

/// Execute `p` under `tie` and report what the runtime observed.
/// `inject` perturbs the *runtime* when it is the spill canary
/// ([`Fault::SpillDropsSlice`]); every other fault perturbs the oracle
/// instead and is ignored here. [`Stmt::Halo`] exchanges run through
/// the host — see [`execute_ex`] for the peer route.
pub fn execute(p: &Program, tie: TieBreak, inject: Option<Fault>) -> Observed {
    execute_ex(p, tie, inject, ExchangeMode::Host)
}

/// [`execute`] with an explicit `exchange(…)` route for every
/// [`Stmt::Halo`] refresh in the program (other statements never
/// exchange). Under [`Fault::PeerCorrupt`] the fault plan arms one
/// in-flight [`spread_sim::PlannedFault::SilentFlip`] against the
/// destination device of the first predicted peer route — and only
/// when `exchange` takes the peer path, so the host-forced legs stay
/// bit-clean. That asymmetry is exactly what makes the canary a proof
/// that the differential harness watches the peer route. Under
/// [`Fault::IntegrityCorrupt`] the program's flip bursts stay armed but
/// every construct's `spread_integrity(…)` clause is downgraded to
/// `off`, so the rot reaches the host silently and the flip-blind
/// oracle comparison must catch it.
pub fn execute_ex(
    p: &Program,
    tie: TieBreak,
    inject: Option<Fault>,
    exchange: ExchangeMode,
) -> Observed {
    execute_impl(p, tie, inject, exchange, None).observed
}

/// The cache-parity executor: lowers `p` exactly like [`execute_ex`]
/// but attaches a `spread_plan_cache(…)` key to every static-schedule
/// construct and forces tracing on, so two runs — `cache_on = false`
/// (the cold planner) and `cache_on = true` (the warm cache) — can be
/// diffed observable-for-observable, timeline included. The *only*
/// difference between the legs is the runtime's cache flag.
pub fn execute_cached(
    p: &Program,
    tie: TieBreak,
    inject: Option<Fault>,
    exchange: ExchangeMode,
    cache_on: bool,
) -> CacheRun {
    execute_impl(p, tie, inject, exchange, Some(cache_on))
}

fn execute_impl(
    p: &Program,
    tie: TieBreak,
    inject: Option<Fault>,
    exchange: ExchangeMode,
    parity: Option<bool>,
) -> CacheRun {
    let drop_spill = inject == Some(Fault::SpillDropsSlice) && p.pressure.is_some();
    let force_rescue = inject == Some(Fault::RescueDoubleCommit) && p.straggler.is_some();
    let leak_overlap = inject == Some(Fault::OverlapLeak) && p.overlap.is_some();
    let peer_flip = (inject == Some(Fault::PeerCorrupt) && exchange != ExchangeMode::Host)
        .then(|| oracle::predict_peer_copies(p).first().map(|r| r.1))
        .flatten();
    let blind = inject == Some(Fault::IntegrityCorrupt) && p.integrity.is_some();
    let integrity = if blind { None } else { p.integrity_mode() };
    let trace = p.uses_auto() || parity.is_some();
    let mut rt = runtime(
        p.n_devices,
        tie,
        p.fault.as_ref(),
        p.pressure.as_ref(),
        p.straggler.as_ref(),
        p.integrity.as_ref(),
        peer_flip,
        trace,
        parity,
    );
    let handles: Vec<HostArray> = (0..p.n_arrays)
        .map(|k| rt.host_array(format!("A{k}"), p.n))
        .collect();
    for (k, &h) in handles.iter().enumerate() {
        rt.fill_host(h, move |i| Program::initial(k, i));
    }
    let mut reduces = Vec::new();
    // Parity mode replays the whole phase list a second time inside the
    // same runtime: fuzz programs execute each statement once, so only
    // a repeat pass makes the warm leg actually *replay* cached plans
    // (the cold leg re-plans the identical launches). Both legs repeat
    // identically, so the differential still compares like with like.
    let passes = if parity.is_some() { 2 } else { 1 };
    let result = rt.run(|s| {
        for _ in 0..passes {
            for phase in &p.phases {
                for stmt in phase {
                    issue(
                        s,
                        p,
                        &handles,
                        &mut reduces,
                        drop_spill,
                        force_rescue,
                        exchange,
                        integrity,
                        leak_overlap,
                        parity.is_some(),
                        stmt,
                    )?;
                }
                // Phase barrier: everything `nowait` drains here.
                s.drain_all()?;
            }
        }
        Ok(())
    });
    let mappings = rt
        .mapping_snapshot()
        .into_iter()
        .map(|per_dev| {
            per_dev
                .into_iter()
                .map(|(sec, rc)| (sec.array.0, sec.start, sec.len, rc))
                .collect()
        })
        .collect();
    let observed = Observed {
        arrays: handles.iter().map(|&h| rt.snapshot_host(h)).collect(),
        reduces,
        mappings,
        degradations: rt.degradations(),
        profiles: rt.profiles(),
        races: rt.races().len(),
        rescues: rt.rescues(),
        integrity_events: rt.integrity_events(),
        overlap: rt.overlap_records(),
        peer_copies: rt
            .peer_copies()
            .iter()
            .map(|r| {
                (
                    r.src,
                    r.dst,
                    r.section.array.0,
                    r.section.start,
                    r.section.len,
                    r.diverted,
                )
            })
            .collect(),
        error: result.err(),
    };
    CacheRun {
        observed,
        timeline: if trace {
            rt.trace().snapshot()
        } else {
            Vec::new()
        },
        plan: rt.plan_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Sched;

    #[test]
    fn executor_matches_a_hand_prediction() {
        let p = Program {
            n_devices: 2,
            n: 12,
            n_arrays: 1,
            phases: vec![vec![Stmt::Spread {
                devices: vec![1, 0],
                sched: Sched::Static { chunk: 3 },
                nowait: false,
                op: KernelOp::AddConst { a: 0, c: 1.5 },
            }]],
            fault: None,
            pressure: None,
            straggler: None,
            integrity: None,
            overlap: None,
        };
        let o = execute(&p, TieBreak::Fifo, None);
        assert!(o.error.is_none(), "{:?}", o.error);
        assert_eq!(o.races, 0);
        for i in 0..12 {
            assert_eq!(o.arrays[0][i], Program::initial(0, i) + 1.5);
        }
        assert!(o.mappings.iter().all(|d| d.is_empty()));
        assert!(o.degradations.is_empty());
    }

    #[test]
    fn auto_program_records_one_profile_per_launch() {
        let stmt = |c: f64| Stmt::Spread {
            devices: vec![0, 1],
            sched: Sched::Auto { key: 3 },
            nowait: false,
            op: KernelOp::AddConst { a: 0, c },
        };
        let p = Program {
            n_devices: 2,
            n: 24,
            n_arrays: 1,
            phases: vec![vec![stmt(1.0)], vec![stmt(0.5)]],
            fault: None,
            pressure: None,
            straggler: None,
            integrity: None,
            overlap: None,
        };
        let o = execute(&p, TieBreak::Fifo, None);
        assert!(o.error.is_none(), "{:?}", o.error);
        assert_eq!(o.races, 0);
        assert_eq!(o.profiles.len(), 2);
        assert_eq!(o.profiles[0].key, "auto-3");
        assert_eq!(o.profiles[0].launch, 0);
        assert_eq!(o.profiles[1].launch, 1);
        assert_eq!(o.profiles[0].weights.len(), 2);
        for i in 0..24 {
            assert_eq!(o.arrays[0][i], Program::initial(0, i) + 1.5);
        }
    }

    #[test]
    fn raw_leak_shows_in_snapshot() {
        let p = Program {
            n_devices: 1,
            n: 12,
            n_arrays: 1,
            phases: vec![vec![Stmt::RawEnter {
                device: 0,
                a: 0,
                start: 2,
                len: 5,
            }]],
            fault: None,
            pressure: None,
            straggler: None,
            integrity: None,
            overlap: None,
        };
        let o = execute(&p, TieBreak::Fifo, None);
        assert!(o.error.is_none(), "{:?}", o.error);
        assert_eq!(o.mappings[0], vec![(0, 2, 5, 1)]);
    }

    #[test]
    fn lowered_fault_plan_kills_and_recovers() {
        use crate::ast::{FaultMode, FaultSpec};
        let mut p = Program {
            n_devices: 2,
            n: 12,
            n_arrays: 1,
            phases: vec![vec![Stmt::Spread {
                devices: vec![0, 1],
                sched: Sched::Static { chunk: 3 },
                nowait: false,
                op: KernelOp::AddConst { a: 0, c: 1.5 },
            }]],
            fault: Some(FaultSpec {
                lost: Some(1),
                mode: FaultMode::FailStop,
                transients: vec![],
            }),
            pressure: None,
            straggler: None,
            integrity: None,
            overlap: None,
        };
        let o = execute(&p, TieBreak::Fifo, None);
        assert!(
            matches!(o.error, Some(RtError::DeviceLost { device: 1, .. })),
            "{:?}",
            o.error
        );
        // The same loss under redistribute completes with the right values.
        p.fault.as_mut().unwrap().mode = FaultMode::Resilient;
        let o = execute(&p, TieBreak::Fifo, None);
        assert!(o.error.is_none(), "{:?}", o.error);
        for i in 0..12 {
            assert_eq!(o.arrays[0][i], Program::initial(0, i) + 1.5);
        }
    }

    #[test]
    fn lowered_pressure_spec_degrades_and_the_canary_truncates() {
        // One device whose 64 bytes are fully held by a sustained
        // window: the single 12-iteration chunk (96 B) is hopeless on
        // every device and spills through the host staging buffer in
        // two 64-byte slices.
        let p = Program {
            n_devices: 1,
            n: 12,
            n_arrays: 1,
            phases: vec![vec![Stmt::Spread {
                devices: vec![0],
                sched: Sched::Static { chunk: 12 },
                nowait: false,
                op: KernelOp::AddConst { a: 0, c: 1.5 },
            }]],
            fault: None,
            pressure: Some(PressureSpec {
                policy: PressurePolicy::Spill,
                cap_bytes: 64,
                sustained: vec![(0, 64)],
            }),
            straggler: None,
            integrity: None,
            overlap: None,
        };
        let o = execute(&p, TieBreak::Fifo, None);
        assert!(o.error.is_none(), "{:?}", o.error);
        assert_eq!(o.races, 0);
        assert_eq!(o.degradations.len(), 1, "{:?}", o.degradations);
        assert!(o.degradations[0].device.is_none(), "spilled to the host");
        for i in 0..12 {
            assert_eq!(o.arrays[0][i], Program::initial(0, i) + 1.5);
        }
        // The spill canary silently drops the last slice's writes.
        let o = execute(&p, TieBreak::Fifo, Some(Fault::SpillDropsSlice));
        assert!(o.error.is_none(), "{:?}", o.error);
        assert_ne!(
            o.arrays[0][11],
            Program::initial(0, 11) + 1.5,
            "the dropped slice must be observable"
        );
    }
}
