//! Paper-listing-style pretty printer: renders a [`Program`] as the
//! pragmas of the source paper so a shrunk counterexample reads like one
//! of its listings.

use std::fmt::Write;

use crate::ast::{BadKind, FaultMode, KernelOp, Program, Sched, Stmt};

fn devices(d: &[u32]) -> String {
    let items: Vec<String> = d.iter().map(|x| x.to_string()).collect();
    format!("devices({})", items.join(","))
}

fn sched(s: &Sched) -> String {
    match s {
        Sched::Static { chunk } => format!("spread_schedule(static, {chunk})"),
        Sched::Weighted { round, weights } => {
            let ws: Vec<String> = weights.iter().map(|w| w.to_string()).collect();
            format!("spread_schedule(weighted, {round}; w=[{}])", ws.join(","))
        }
        Sched::Dynamic { chunk } => format!("spread_schedule(dynamic, {chunk})"),
        Sched::Auto { key } => format!("spread_schedule(auto, key=auto-{key})"),
    }
}

/// The `spread_resilience(…)` clause every spread construct carries
/// when the program runs in resilient mode.
fn resilience(p: &Program) -> &'static str {
    if p.resilient() {
        " spread_resilience(redistribute)"
    } else {
        ""
    }
}

/// The `spread_integrity(…)` clause every spread construct carries when
/// the program runs in integrity mode.
fn integrity(p: &Program) -> &'static str {
    match p.integrity_mode() {
        Some(spread_core::IntegrityMode::Verify) => " spread_integrity(verify)",
        Some(spread_core::IntegrityMode::Heal) => " spread_integrity(heal)",
        _ => "",
    }
}

/// The `spread_overlap(…)` clause every spread construct carries when
/// the program runs in overlap mode.
fn overlap(p: &Program) -> String {
    match p.overlap_depth() {
        Some(d) => format!(" spread_overlap({d})"),
        None => String::new(),
    }
}

/// The `spread_pressure(…)` clause every spread construct carries when
/// the program runs in pressure mode.
fn pressure(p: &Program) -> &'static str {
    match p.pressure_policy() {
        Some(spread_core::PressurePolicy::Split) => " spread_pressure(split)",
        Some(spread_core::PressurePolicy::Spill) => " spread_pressure(spill)",
        _ => "",
    }
}

fn push_stmt(out: &mut String, p: &Program, stmt: &Stmt) {
    let n = p.n;
    match stmt {
        Stmt::Spread {
            devices: d,
            sched: sc,
            nowait,
            op,
        } => {
            let nw = if *nowait { " nowait" } else { "" };
            let res = resilience(p);
            let pres = pressure(p);
            let integ = integrity(p);
            let ov = overlap(p);
            let (maps, body) = match *op {
                KernelOp::AddConst { a, c } => (
                    format!("map(spread_tofrom: A{a}[ss:sz])"),
                    format!("for (i in 0..{n}) A{a}[i] += {c};"),
                ),
                KernelOp::Scale { a, c } => (
                    format!("map(spread_tofrom: A{a}[ss:sz])"),
                    format!("for (i in 0..{n}) A{a}[i] *= {c};"),
                ),
                KernelOp::Saxpy { x, y, alpha } => (
                    format!("map(spread_to: A{x}[ss:sz]) map(spread_tofrom: A{y}[ss:sz])"),
                    format!("for (i in 0..{n}) A{y}[i] += {alpha} * A{x}[i];"),
                ),
                KernelOp::Stencil3 { src, dst } => (
                    format!("map(spread_to: A{src}[ss-1:sz+2]) map(spread_from: A{dst}[ss:sz])"),
                    format!(
                        "for (i in 1..{}) A{dst}[i] = A{src}[i-1] + A{src}[i] + A{src}[i+1];",
                        n - 1
                    ),
                ),
            };
            let _ = writeln!(
                out,
                "#pragma omp target spread {} {}{res}{pres}{integ}{ov} {maps}{nw}\n    {body}",
                devices(d),
                sched(sc)
            );
        }
        Stmt::Reduce {
            devices: d,
            sched: sc,
            a,
            partials,
            alpha,
            op,
        } => {
            let res = resilience(p);
            let _ = writeln!(
                out,
                "#pragma omp target spread {} {}{res} map(spread_to: A{a}[ss:sz]) \
                 map(spread_from: A{partials}[ss:sz]) reduction({op:?})\n    \
                 for (i in 0..{n}) A{partials}[i] = {alpha} * A{a}[i];  // fold on host",
                devices(d),
                sched(sc)
            );
        }
        Stmt::DataRegion {
            devices: d,
            chunk,
            a,
            body_add,
            update_from,
            exit_from,
        } => {
            let _ = writeln!(
                out,
                "#pragma omp target enter data spread {} range(A{a}[0:{n}]) chunk_size({chunk}) \
                 map(spread_to: A{a}[ss:sz])",
                devices(d)
            );
            if let Some(c) = body_add {
                let _ = writeln!(
                    out,
                    "#pragma omp target spread {} spread_schedule(static, {chunk}) \
                     map(spread_tofrom: A{a}[ss:sz])\n    for (i in 0..{n}) A{a}[i] += {c};",
                    devices(d)
                );
            }
            if *update_from {
                let _ = writeln!(
                    out,
                    "#pragma omp target update spread {} range(A{a}[0:{n}]) chunk_size({chunk}) \
                     from(A{a}[ss:sz])",
                    devices(d)
                );
            }
            let mt = if *exit_from { "spread_from" } else { "release" };
            let _ = writeln!(
                out,
                "#pragma omp target exit data spread {} range(A{a}[0:{n}]) chunk_size({chunk}) \
                 map({mt}: A{a}[ss:sz])",
                devices(d)
            );
        }
        Stmt::Halo {
            devices: d,
            chunk,
            a,
            dst,
            bump,
        } => {
            let _ = writeln!(
                out,
                "#pragma omp target enter data spread {} range(A{a}[0:{n}]) chunk_size({chunk}) \
                 map(spread_to: A{a}[ss-1:sz+2])",
                devices(d)
            );
            if let Some(c) = bump {
                let _ = writeln!(
                    out,
                    "#pragma omp target spread {} spread_schedule(static, {chunk}) \
                     map(spread_tofrom: A{a}[ss:sz])\n    for (i in 0..{n}) A{a}[i] += {c};  \
                     // siblings go stale: every halo must take the host route",
                    devices(d)
                );
            }
            let _ = writeln!(
                out,
                "#pragma omp target update spread {} range(A{a}[0:{n}]) chunk_size({chunk}) \
                 to(A{a}[ss-1:1]) to(A{a}[ss+sz:1]) exchange(auto)",
                devices(d)
            );
            let _ = writeln!(
                out,
                "#pragma omp target spread {} spread_schedule(static, {chunk}) \
                 map(spread_to: A{a}[ss-1:sz+2]) map(spread_from: A{dst}[ss:sz])\n    \
                 for (i in 0..{n}) A{dst}[i] = A{a}[max(i-1,0)] + A{a}[i] + A{a}[min(i+1,{})];",
                devices(d),
                n - 1
            );
            let _ = writeln!(
                out,
                "#pragma omp target exit data spread {} range(A{a}[0:{n}]) chunk_size({chunk}) \
                 map(release: A{a}[ss-1:sz+2])",
                devices(d)
            );
        }
        Stmt::RawEnter {
            device,
            a,
            start,
            len,
        } => {
            let _ = writeln!(
                out,
                "#pragma omp target enter data spread devices({device}) range(A{a}[{start}:{len}]) \
                 chunk_size({len}) map(spread_to: A{a}[ss:sz])"
            );
        }
        Stmt::RawExit {
            device,
            a,
            start,
            len,
            delete,
        } => {
            let mt = if *delete { "delete" } else { "spread_from" };
            let _ = writeln!(
                out,
                "#pragma omp target exit data spread devices({device}) range(A{a}[{start}:{len}]) \
                 chunk_size({len}) map({mt}: A{a}[ss:sz])"
            );
        }
        Stmt::RawUpdate {
            device,
            a,
            start,
            len,
            from,
        } => {
            let dir = if *from { "from" } else { "to" };
            let _ = writeln!(
                out,
                "#pragma omp target update spread devices({device}) range(A{a}[{start}:{len}]) \
                 chunk_size({len}) {dir}(A{a}[ss:sz])"
            );
        }
        Stmt::Bad { a, kind } => {
            let what = match kind {
                BadKind::DynamicDataSchedule => format!(
                    "#pragma omp target enter data spread devices(0) \
                     spread_schedule(dynamic, 4) range(A{a}[0:{n}]) chunk_size(4)  // illegal"
                ),
                BadKind::MissingChunkSize => format!(
                    "#pragma omp target enter data spread devices(0) range(A{a}[0:{n}])  \
                     // illegal: no chunk_size"
                ),
                BadKind::EmptyDevices => {
                    format!("#pragma omp target spread devices() … A{a} …  // illegal: no devices")
                }
            };
            let _ = writeln!(out, "{what}");
        }
    }
}

/// Render `p` as a paper-style listing (`ss`/`sz` abbreviate
/// `omp_spread_start`/`omp_spread_size`).
pub fn listing(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// {} device(s), {} array(s) of {} doubles (A_k[i] = ((7i+13k) mod 23) - 11)",
        p.n_devices, p.n_arrays, p.n
    );
    if let Some(f) = &p.fault {
        let mode = match f.mode {
            FaultMode::FailStop => "fail-stop",
            FaultMode::Resilient => "resilient",
        };
        match f.lost {
            Some(d) => {
                let _ = writeln!(out, "// fault plan: device {d} lost at t=0 ({mode})");
            }
            None => {
                let _ = writeln!(out, "// fault plan: no loss ({mode})");
            }
        }
        for (d, count) in &f.transients {
            let _ = writeln!(
                out,
                "// fault plan: {count} transient copy failure(s) on device {d} (retried)"
            );
        }
    }
    if let Some(ps) = &p.pressure {
        let _ = writeln!(
            out,
            "// pressure: {:?} mode, every device capped at {} bytes",
            ps.policy, ps.cap_bytes
        );
        for (d, bytes) in &ps.sustained {
            let _ = writeln!(
                out,
                "// pressure: {bytes} bytes of sustained OOM pressure on device {d} from t=0"
            );
        }
    }
    if let Some(is) = &p.integrity {
        let _ = writeln!(out, "// integrity: {:?} mode", is.mode);
        for (d, count) in &is.flips {
            let _ = writeln!(
                out,
                "// integrity: {count} silent bit-flip token(s) armed on device {d} at t=0"
            );
        }
    }
    if let Some(os) = &p.overlap {
        let _ = writeln!(
            out,
            "// overlap: every spread construct pipelines its pieces at depth {}",
            os.depth
        );
    }
    for (i, phase) in p.phases.iter().enumerate() {
        let _ = writeln!(out, "// ---- phase {i} ----");
        for stmt in phase {
            push_stmt(&mut out, p, stmt);
        }
        let _ = writeln!(out, "#pragma omp taskwait");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_program;

    #[test]
    fn listings_render_and_are_deterministic() {
        for seed in 0..50u64 {
            let p = gen_program(seed);
            let a = listing(&p);
            assert!(a.contains("#pragma omp"), "seed {seed}:\n{a}");
            assert_eq!(a, listing(&p));
        }
    }
}
