//! Bounded model checker.
//!
//! ```text
//! cargo run --release -p spread-check --bin modelcheck -- \
//!     [--depth D] [--interleavings K]
//! ```
//!
//! Exhaustively checks **every** directive program of up to `D`
//! statements over the fixed enumeration alphabet (see
//! `spread_check::enumerate`), on one- and two-device machines, against
//! the `spread-semantics` small-step machine: final host arrays,
//! mapping tables and exact errors must agree bit-for-bit under FIFO
//! plus `K − 1` seeded tie-break permutations. No seeds to choose —
//! coverage of the bounded space is total and the sweep is
//! reproducible by construction. Exits non-zero on any disagreement,
//! printing the failing program as paper pseudocode.

use std::process::ExitCode;

use spread_check::{enumerate, pretty, CheckConfig};

struct Args {
    depth: usize,
    interleavings: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        depth: 3,
        interleavings: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--depth" => {
                args.depth = value("--depth")?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?
            }
            "--interleavings" => {
                args.interleavings = value("--interleavings")?
                    .parse()
                    .map_err(|e| format!("--interleavings: {e}"))?
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.depth == 0 {
        return Err("--depth must be at least 1".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("modelcheck: {e}");
            eprintln!("usage: modelcheck [--depth D] [--interleavings K]");
            return ExitCode::from(2);
        }
    };
    let cfg = CheckConfig {
        interleavings: args.interleavings,
        ..CheckConfig::default()
    };
    println!(
        "spread-check modelcheck: every program of <= {} statement(s) x {} interleaving(s)",
        args.depth, cfg.interleavings
    );
    let mut last_tenth = 0;
    let report = enumerate::model_check(args.depth, &cfg, |done, total, failed| {
        let tenth = done * 10 / total;
        if tenth > last_tenth || done == total {
            last_tenth = tenth;
            println!("  {done}/{total} checked, {failed} disagreement(s)");
        }
    });
    if report.failures.is_empty() {
        println!(
            "OK: {} program(s), {} execution(s) — the runtime and the \
             spread-semantics machine coincide on the bounded space",
            report.programs, report.executions
        );
        return ExitCode::SUCCESS;
    }
    for f in &report.failures {
        println!("\nFAIL program #{}: {}", f.index, f.failure);
        println!("{}", pretty::listing(&f.program));
    }
    println!(
        "\n{} of {} program(s) DISAGREE with the spec",
        report.failures.len(),
        report.programs
    );
    ExitCode::FAILURE
}
