//! Replay (and shrink) one fuzzer seed.
//!
//! ```text
//! cargo run -p spread-check --bin replay -- <seed> \
//!     [--interleavings K] [--faults] [--pressure] [--auto] [--peer] \
//!     [--stragglers] [--integrity] [--overlap] \
//!     [--inject stencil|reduce|recovery|spill|peer|rescue|integrity|overlap]
//! ```
//!
//! Regenerates the program for `<seed>`, prints it as a paper-style
//! listing, and re-checks it. On failure the program is shrunk to a
//! minimal counterexample (deterministically) and printed again.

use std::process::ExitCode;

use spread_check::{check_seed, pretty, shrink_seed, CheckConfig, Fault};

fn parse_args() -> Result<(u64, CheckConfig), String> {
    let mut seed = None;
    let mut cfg = CheckConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interleavings" => {
                cfg.interleavings = it
                    .next()
                    .ok_or("--interleavings needs a value")?
                    .parse()
                    .map_err(|e| format!("--interleavings: {e}"))?
            }
            "--inject" => {
                let f = it.next().ok_or("--inject needs a value")?;
                cfg.fault = Some(Fault::parse(&f).ok_or_else(|| format!("unknown fault `{f}`"))?);
            }
            "--faults" => cfg.faults = true,
            "--pressure" => cfg.pressure = true,
            "--auto" => cfg.auto = true,
            "--peer" => cfg.peer = true,
            "--stragglers" => cfg.stragglers = true,
            "--integrity" => cfg.integrity = true,
            "--overlap" => cfg.overlap = true,
            s if seed.is_none() && !s.starts_with('-') => {
                seed = Some(s.parse().map_err(|e| format!("seed: {e}"))?)
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if (cfg.faults as u8)
        + (cfg.pressure as u8)
        + (cfg.auto as u8)
        + (cfg.peer as u8)
        + (cfg.stragglers as u8)
        + (cfg.integrity as u8)
        + (cfg.overlap as u8)
        > 1
    {
        return Err(
            "--faults, --pressure, --auto, --peer, --stragglers, --integrity and --overlap \
             are mutually exclusive"
                .into(),
        );
    }
    Ok((seed.ok_or("missing <seed>")?, cfg))
}

fn main() -> ExitCode {
    let (seed, cfg) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("replay: {e}");
            eprintln!(
                "usage: replay <seed> [--interleavings K] [--faults] [--pressure] [--auto] \
                 [--peer] [--stragglers] [--integrity] [--overlap] \
                 [--inject stencil|reduce|recovery|spill|peer|rescue|integrity|overlap]"
            );
            return ExitCode::from(2);
        }
    };
    let p = spread_check::gen_for(seed, &cfg);
    println!("seed {seed} generates:\n");
    println!("{}", pretty::listing(&p));
    match check_seed(seed, &cfg) {
        Ok(()) => {
            println!(
                "OK: oracle agreement under all {} interleaving(s), 0 races",
                cfg.interleavings
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            println!("FAIL: {failure}\n");
            let (minimal, min_failure) =
                shrink_seed(seed, &cfg).expect("failing seed stays failing");
            println!("shrunk to minimal counterexample:\n");
            println!("{}", pretty::listing(&minimal));
            println!("minimal failure: {min_failure}");
            ExitCode::FAILURE
        }
    }
}
