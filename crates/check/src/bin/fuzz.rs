//! Deterministic conformance fuzzer.
//!
//! ```text
//! cargo run --release -p spread-check --bin fuzz -- \
//!     [--programs N] [--interleavings K] [--seed S] [--faults] \
//!     [--pressure] [--auto] [--peer] [--stragglers] [--integrity] [--overlap] \
//!     [--inject stencil|reduce|recovery|spill|peer|rescue|integrity|overlap]
//! ```
//!
//! Checks `N` generated programs (seeds `mix(S, 0..N)`), each under the
//! FIFO policy plus `K − 1` seeded tie-break permutations, against the
//! sequential oracle. `--faults` attaches seeded fault plans (device
//! loss at time zero under fail-stop or redistribute, transient copy
//! bursts). `--pressure` generates memory-pressure programs instead —
//! tiny device capacities plus sustained OOM windows — and checks the
//! exact degradation-event sequence against the oracle's admission
//! plan. `--auto` generates `spread_schedule(auto)` programs with
//! repeated construct keys and additionally requires every realized
//! adaptive split to be a valid `StaticWeighted` plan. `--peer`
//! generates halo-exchange programs and checks them differentially:
//! host-forced runs against one `exchange(auto)` run that must match
//! the oracle bit-for-bit while performing exactly the predicted
//! device-to-device route set. `--stragglers` generates programs with
//! one device's compute slowed 10-16x under
//! `spread_straggler(steal|replicate)`: results must stay bit-identical
//! to the fault-free oracle and every recorded rescue must be
//! structurally sound (exactly one commit, healthy target).
//! `--integrity` generates programs whose devices are armed with silent
//! bit-flip tokens under `spread_integrity(heal)`: results must stay
//! bit-identical to the fault-free oracle and the healed-commit ledger
//! must match the armed token count per device. `--overlap` generates
//! programs whose spread constructs all carry `spread_overlap(depth)`:
//! results must stay bit-identical to the overlap-blind oracle and the
//! recorded pipeline ledger must match the closed-form piece count with
//! every staged sub-slice committing at the whole-piece boundary. Exits
//! non-zero on any disagreement or
//! race report, printing the failing seed so `replay -- <seed>`
//! reproduces it.

use std::process::ExitCode;

use spread_check::{fuzz, pretty, CheckConfig, Fault};

struct Args {
    programs: usize,
    interleavings: usize,
    seed: u64,
    fault: Option<Fault>,
    faults: bool,
    pressure: bool,
    auto: bool,
    peer: bool,
    stragglers: bool,
    integrity: bool,
    overlap: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        programs: 200,
        interleavings: 4,
        seed: 1,
        fault: None,
        faults: false,
        pressure: false,
        auto: false,
        peer: false,
        stragglers: false,
        integrity: false,
        overlap: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--programs" => {
                args.programs = value("--programs")?
                    .parse()
                    .map_err(|e| format!("--programs: {e}"))?
            }
            "--interleavings" => {
                args.interleavings = value("--interleavings")?
                    .parse()
                    .map_err(|e| format!("--interleavings: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--inject" => {
                let f = value("--inject")?;
                args.fault = Some(Fault::parse(&f).ok_or_else(|| format!("unknown fault `{f}`"))?);
            }
            "--faults" => args.faults = true,
            "--pressure" => args.pressure = true,
            "--auto" => args.auto = true,
            "--peer" => args.peer = true,
            "--stragglers" => args.stragglers = true,
            "--integrity" => args.integrity = true,
            "--overlap" => args.overlap = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if (args.faults as u8)
        + (args.pressure as u8)
        + (args.auto as u8)
        + (args.peer as u8)
        + (args.stragglers as u8)
        + (args.integrity as u8)
        + (args.overlap as u8)
        > 1
    {
        return Err(
            "--faults, --pressure, --auto, --peer, --stragglers, --integrity and --overlap \
             are mutually exclusive"
                .into(),
        );
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            eprintln!(
                "usage: fuzz [--programs N] [--interleavings K] [--seed S] [--faults] \
                 [--pressure] [--auto] [--peer] [--stragglers] [--integrity] [--overlap] \
                 [--inject stencil|reduce|recovery|spill|peer|rescue|integrity|overlap]"
            );
            return ExitCode::from(2);
        }
    };
    let cfg = CheckConfig {
        interleavings: args.interleavings,
        fault: args.fault,
        faults: args.faults,
        pressure: args.pressure,
        auto: args.auto,
        peer: args.peer,
        stragglers: args.stragglers,
        integrity: args.integrity,
        overlap: args.overlap,
    };
    println!(
        "spread-check fuzz: {} program(s) x {} interleaving(s), seed {}{}{}{}{}{}{}{}{}",
        args.programs,
        cfg.interleavings,
        args.seed,
        if cfg.faults { ", with fault plans" } else { "" },
        if cfg.pressure {
            ", with memory-pressure scenarios"
        } else {
            ""
        },
        if cfg.auto {
            ", with adaptive (auto) schedules"
        } else {
            ""
        },
        if cfg.peer {
            ", with differential peer exchanges"
        } else {
            ""
        },
        if cfg.stragglers {
            ", with straggler rescues"
        } else {
            ""
        },
        if cfg.integrity {
            ", with silent-corruption healing"
        } else {
            ""
        },
        if cfg.overlap {
            ", with pipelined transfer/compute overlap"
        } else {
            ""
        },
        match cfg.fault {
            Some(f) => format!(", injected fault {f:?}"),
            None => String::new(),
        }
    );
    let step = (args.programs / 10).max(1);
    let report = fuzz(args.seed, args.programs, &cfg, |done, failed| {
        if done % step == 0 || done == args.programs {
            println!("  {done}/{} checked, {failed} failure(s)", args.programs);
        }
    });
    if report.failures.is_empty() {
        println!(
            "OK: {} program(s), {} execution(s), oracle agreement everywhere, 0 races",
            report.programs, report.executions
        );
        return ExitCode::SUCCESS;
    }
    for f in &report.failures {
        println!("\nFAIL seed {}: {}", f.seed, f.failure);
        println!("{}", pretty::listing(&spread_check::gen_for(f.seed, &cfg)));
        println!(
            "reproduce: cargo run -p spread-check --bin replay -- {}{}{}{}{}{}{}{}{}",
            f.seed,
            if cfg.faults { " --faults" } else { "" },
            if cfg.pressure { " --pressure" } else { "" },
            if cfg.auto { " --auto" } else { "" },
            if cfg.peer { " --peer" } else { "" },
            if cfg.stragglers { " --stragglers" } else { "" },
            if cfg.integrity { " --integrity" } else { "" },
            if cfg.overlap { " --overlap" } else { "" },
            match cfg.fault {
                Some(Fault::StencilDropsLeftHalo) => " --inject stencil",
                Some(Fault::ReduceSkipsLast) => " --inject reduce",
                Some(Fault::RecoveryDropsLostChunk) => " --inject recovery",
                Some(Fault::SpillDropsSlice) => " --inject spill",
                Some(Fault::PeerCorrupt) => " --inject peer",
                Some(Fault::RescueDoubleCommit) => " --inject rescue",
                Some(Fault::IntegrityCorrupt) => " --inject integrity",
                Some(Fault::OverlapLeak) => " --inject overlap",
                None => "",
            }
        );
    }
    println!(
        "\n{} of {} program(s) FAILED",
        report.failures.len(),
        report.programs
    );
    ExitCode::FAILURE
}
