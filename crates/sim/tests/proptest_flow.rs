//! Property tests for the max–min fair allocator and the flow network.

use proptest::prelude::*;
use spread_sim::flow::maxmin_rates;
use spread_sim::{SharedFlowNet, Simulator};

use std::cell::RefCell;
use std::rc::Rc;

/// Strategy: up to 6 constraints with capacities in [1, 1000], up to 12
/// flows each traversing a non-empty subset of the constraints.
fn scenario() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
    (1usize..=6).prop_flat_map(|n_caps| {
        let caps = proptest::collection::vec(1.0f64..1000.0, n_caps);
        let flows = proptest::collection::vec(
            proptest::collection::btree_set(0usize..n_caps, 1..=n_caps),
            0..12,
        )
        .prop_map(|sets| {
            sets.into_iter()
                .map(|s| s.into_iter().collect::<Vec<_>>())
                .collect::<Vec<_>>()
        });
        (caps, flows)
    })
}

proptest! {
    /// No constraint is ever oversubscribed.
    #[test]
    fn rates_respect_all_capacities((caps, flows) in scenario()) {
        let flow_refs: Vec<&[usize]> = flows.iter().map(|f| f.as_slice()).collect();
        let rates = maxmin_rates(&caps, &flow_refs);
        prop_assert_eq!(rates.len(), flows.len());
        for (c, &cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.contains(&c))
                .map(|(_, &r)| r)
                .sum();
            prop_assert!(used <= cap * (1.0 + 1e-9), "cap {c}: {used} > {cap}");
        }
    }

    /// Every flow gets a strictly positive rate.
    #[test]
    fn rates_are_positive((caps, flows) in scenario()) {
        let flow_refs: Vec<&[usize]> = flows.iter().map(|f| f.as_slice()).collect();
        let rates = maxmin_rates(&caps, &flow_refs);
        for (f, &r) in rates.iter().enumerate() {
            prop_assert!(r > 0.0, "flow {f} rate {r}");
        }
    }

    /// Work conservation: every flow is bottlenecked by at least one
    /// constraint that is (nearly) saturated — no one could be raised
    /// without violating a constraint.
    #[test]
    fn allocation_is_work_conserving((caps, flows) in scenario()) {
        let flow_refs: Vec<&[usize]> = flows.iter().map(|f| f.as_slice()).collect();
        let rates = maxmin_rates(&caps, &flow_refs);
        let usage: Vec<f64> = (0..caps.len())
            .map(|c| {
                flows
                    .iter()
                    .zip(&rates)
                    .filter(|(f, _)| f.contains(&c))
                    .map(|(_, &r)| r)
                    .sum()
            })
            .collect();
        for (f, fc) in flows.iter().enumerate() {
            let bottlenecked = fc
                .iter()
                .any(|&c| usage[c] >= caps[c] * (1.0 - 1e-9));
            prop_assert!(bottlenecked, "flow {f} has slack everywhere");
        }
    }

    /// Max–min dominance: no flow's rate can exceed the fair share of any
    /// of its saturated constraints by more than the share of another
    /// flow bottlenecked elsewhere — checked via the standard criterion:
    /// increasing one flow's rate requires decreasing a flow with a rate
    /// <= its own. We verify the weaker, exact property that equal-route
    /// flows get equal rates.
    #[test]
    fn identical_routes_get_identical_rates((caps, flows) in scenario()) {
        let flow_refs: Vec<&[usize]> = flows.iter().map(|f| f.as_slice()).collect();
        let rates = maxmin_rates(&caps, &flow_refs);
        for i in 0..flows.len() {
            for j in (i + 1)..flows.len() {
                if flows[i] == flows[j] {
                    let (a, b) = (rates[i], rates[j]);
                    prop_assert!((a - b).abs() <= 1e-9 * a.max(b).max(1.0));
                }
            }
        }
    }

    /// End-to-end: random flows through a random network all complete,
    /// and each flow's completion time is at least bytes / (its fastest
    /// constraint) — you cannot beat the physics.
    #[test]
    fn flows_complete_and_respect_physics(
        (caps, flows) in scenario(),
        sizes in proptest::collection::vec(1u64..100_000, 0..12),
    ) {
        let mut sim = Simulator::without_trace();
        let net = SharedFlowNet::new();
        let cap_ids: Vec<_> = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| net.add_capacity(format!("c{i}"), c))
            .collect();
        let done: Rc<RefCell<Vec<(usize, f64)>>> = Rc::new(RefCell::new(Vec::new()));
        let n = flows.len().min(sizes.len());
        for i in 0..n {
            let use_caps: Vec<_> = flows[i].iter().map(|&c| cap_ids[c]).collect();
            let done = done.clone();
            net.start_flow(&mut sim, sizes[i], use_caps, Box::new(move |s| {
                done.borrow_mut().push((i, s.now().as_secs_f64()));
            }));
        }
        sim.run_until_idle();
        let done = done.borrow();
        prop_assert_eq!(done.len(), n);
        for &(i, t) in done.iter() {
            let best_cap = flows[i].iter().map(|&c| caps[c]).fold(f64::MAX, f64::min);
            let lower_bound = sizes[i] as f64 / best_cap;
            prop_assert!(
                t >= lower_bound * (1.0 - 1e-6),
                "flow {i}: {t}s < physical minimum {lower_bound}s"
            );
        }
    }
}
