//! Seeded property tests for the max–min fair allocator and the flow
//! network (deterministic `spread_prng` loops; offline-friendly).

use spread_prng::Prng;
use spread_sim::flow::maxmin_rates;
use spread_sim::{SharedFlowNet, Simulator};

use std::cell::RefCell;
use std::rc::Rc;

/// Random scenario: up to 6 constraints with capacities in [1, 1000), up
/// to 12 flows each traversing a non-empty subset of the constraints.
fn scenario(r: &mut Prng) -> (Vec<f64>, Vec<Vec<usize>>) {
    let n_caps = r.range(1, 7);
    let caps: Vec<f64> = (0..n_caps).map(|_| 1.0 + 999.0 * r.f64()).collect();
    let n_flows = r.range(0, 12);
    let flows = (0..n_flows)
        .map(|_| {
            let k = r.range(1, n_caps + 1);
            let mut ids: Vec<usize> = (0..n_caps).collect();
            r.shuffle(&mut ids);
            ids.truncate(k);
            ids.sort_unstable();
            ids
        })
        .collect();
    (caps, flows)
}

/// No constraint is ever oversubscribed.
#[test]
fn rates_respect_all_capacities() {
    let mut r = Prng::new(0xf10f_0001);
    for case in 0..128 {
        let (caps, flows) = scenario(&mut r);
        let flow_refs: Vec<&[usize]> = flows.iter().map(|f| f.as_slice()).collect();
        let rates = maxmin_rates(&caps, &flow_refs);
        assert_eq!(rates.len(), flows.len());
        for (c, &cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.contains(&c))
                .map(|(_, &r)| r)
                .sum();
            assert!(
                used <= cap * (1.0 + 1e-9),
                "case {case} cap {c}: {used} > {cap}"
            );
        }
    }
}

/// Every flow gets a strictly positive rate.
#[test]
fn rates_are_positive() {
    let mut r = Prng::new(0xf10f_0002);
    for case in 0..128 {
        let (caps, flows) = scenario(&mut r);
        let flow_refs: Vec<&[usize]> = flows.iter().map(|f| f.as_slice()).collect();
        let rates = maxmin_rates(&caps, &flow_refs);
        for (f, &rate) in rates.iter().enumerate() {
            assert!(rate > 0.0, "case {case} flow {f} rate {rate}");
        }
    }
}

/// Work conservation: every flow is bottlenecked by at least one
/// constraint that is (nearly) saturated — no one could be raised
/// without violating a constraint.
#[test]
fn allocation_is_work_conserving() {
    let mut r = Prng::new(0xf10f_0003);
    for case in 0..128 {
        let (caps, flows) = scenario(&mut r);
        let flow_refs: Vec<&[usize]> = flows.iter().map(|f| f.as_slice()).collect();
        let rates = maxmin_rates(&caps, &flow_refs);
        let usage: Vec<f64> = (0..caps.len())
            .map(|c| {
                flows
                    .iter()
                    .zip(&rates)
                    .filter(|(f, _)| f.contains(&c))
                    .map(|(_, &r)| r)
                    .sum()
            })
            .collect();
        for (f, fc) in flows.iter().enumerate() {
            let bottlenecked = fc.iter().any(|&c| usage[c] >= caps[c] * (1.0 - 1e-9));
            assert!(bottlenecked, "case {case} flow {f} has slack everywhere");
        }
    }
}

/// Equal-route flows get equal rates (the exact, checkable corollary of
/// max–min fairness).
#[test]
fn identical_routes_get_identical_rates() {
    let mut r = Prng::new(0xf10f_0004);
    for case in 0..128 {
        let (caps, flows) = scenario(&mut r);
        let flow_refs: Vec<&[usize]> = flows.iter().map(|f| f.as_slice()).collect();
        let rates = maxmin_rates(&caps, &flow_refs);
        for i in 0..flows.len() {
            for j in (i + 1)..flows.len() {
                if flows[i] == flows[j] {
                    let (a, b) = (rates[i], rates[j]);
                    assert!(
                        (a - b).abs() <= 1e-9 * a.max(b).max(1.0),
                        "case {case}: flows {i},{j} same route, rates {a} vs {b}"
                    );
                }
            }
        }
    }
}

/// End-to-end: random flows through a random network all complete, and
/// each flow's completion time is at least bytes / (its fastest
/// constraint) — you cannot beat the physics.
#[test]
fn flows_complete_and_respect_physics() {
    let mut r = Prng::new(0xf10f_0005);
    for case in 0..64 {
        let (caps, flows) = scenario(&mut r);
        let sizes: Vec<u64> = (0..flows.len()).map(|_| 1 + r.below(99_999)).collect();
        let mut sim = Simulator::without_trace();
        let net = SharedFlowNet::new();
        let cap_ids: Vec<_> = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| net.add_capacity(format!("c{i}"), c))
            .collect();
        let done: Rc<RefCell<Vec<(usize, f64)>>> = Rc::new(RefCell::new(Vec::new()));
        let n = flows.len();
        for i in 0..n {
            let use_caps: Vec<_> = flows[i].iter().map(|&c| cap_ids[c]).collect();
            let done = done.clone();
            net.start_flow(
                &mut sim,
                sizes[i],
                use_caps,
                Box::new(move |s| {
                    done.borrow_mut().push((i, s.now().as_secs_f64()));
                }),
            );
        }
        sim.run_until_idle();
        let done = done.borrow();
        assert_eq!(done.len(), n, "case {case}");
        for &(i, t) in done.iter() {
            let best_cap = flows[i].iter().map(|&c| caps[c]).fold(f64::MAX, f64::min);
            let lower_bound = sizes[i] as f64 / best_cap;
            assert!(
                t >= lower_bound * (1.0 - 1e-6),
                "case {case} flow {i}: {t}s < physical minimum {lower_bound}s"
            );
        }
    }
}
