//! Deterministic fault plans and retry policies.
//!
//! A [`FaultPlan`] describes *what goes wrong* during a run, pinned to
//! virtual time so the same plan replayed under the same seed produces a
//! byte-identical event history. Four fault classes model the failure
//! modes of a real multi-GPU node:
//!
//! * **transient copy errors** — a DMA operation fails (ECC hiccup,
//!   retryable driver error) but the engine may try again;
//! * **link degradation** — a device's interconnect runs at a fraction
//!   of its bandwidth for a window (a straggler);
//! * **device-OOM spikes** — a slab of device memory disappears for a
//!   while (another tenant, fragmentation), pressuring the allocator;
//! * **permanent device loss** — the device falls off the bus and never
//!   comes back.
//!
//! Transient faults are *token-based*, not per-operation-probabilistic:
//! the plan grants a device a budget of `count` copy failures armed from
//! a virtual instant onward, and the device's engines consume the tokens
//! on their next attempts. A probabilistic per-op coin flip would make
//! the fault pattern depend on the event interleaving and break the
//! conformance oracle; tokens keep the *semantic* outcome
//! schedule-independent while the *timing* still varies.
//!
//! All randomness (plan generation, backoff jitter) flows through
//! [`spread_prng::Prng`] seeded from the plan, never from ambient
//! entropy — see [`RetryPolicy::backoff`].

use spread_prng::Prng;
use spread_trace::{SimDuration, SimTime};

/// One planned fault, pinned to virtual time.
#[derive(Clone, Debug, PartialEq)]
pub enum PlannedFault {
    /// Arm `count` transient copy failures on `device` from `after`
    /// onward: the next `count` DMA attempts on that device (in either
    /// direction) fail with a retryable error.
    TransientCopies {
        /// Target device.
        device: u32,
        /// Tokens are armed from this instant.
        after: SimTime,
        /// Number of attempts that will fail.
        count: u32,
    },
    /// Between `from` and `until`, `device`'s transfers move `factor`×
    /// as many modeled bytes (factor ≥ 1: a slowdown). Data still
    /// arrives intact — this is a timing-only fault.
    LinkDegrade {
        /// Target device.
        device: u32,
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
        /// Slowdown factor (≥ 1).
        factor: f64,
    },
    /// At `at`, `bytes` of `device`'s memory vanish (reserved by the
    /// fault injector) and come back after `duration`.
    OomSpike {
        /// Target device.
        device: u32,
        /// Spike start.
        at: SimTime,
        /// Bytes reserved.
        bytes: u64,
        /// Spike length.
        duration: SimDuration,
    },
    /// At `at`, `device` is permanently lost: every subsequent operation
    /// on it fails fatally and its memory contents are gone.
    DeviceLoss {
        /// Target device.
        device: u32,
        /// Instant of death.
        at: SimTime,
    },
    /// From `at` onward, `bytes` of `device`'s memory are reserved by
    /// the fault injector and never come back: sustained memory pressure
    /// (a co-tenant that stays), as opposed to the bounded
    /// [`PlannedFault::OomSpike`].
    OomSustained {
        /// Target device.
        device: u32,
        /// Pressure start.
        at: SimTime,
        /// Bytes reserved for the rest of the run.
        bytes: u64,
    },
    /// Between `from` and `until`, kernels on `device` take `factor`×
    /// their modeled duration (factor ≥ 1: a compute straggler — thermal
    /// throttling, a noisy co-tenant on the SMs). The compute-side
    /// analogue of [`PlannedFault::LinkDegrade`]: results are still
    /// correct, only timing suffers.
    ComputeSlowdown {
        /// Target device.
        device: u32,
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
        /// Slowdown factor (≥ 1).
        factor: f64,
    },
    /// Arm `count` *silent* payload corruptions on `device` from `after`
    /// onward: the next `count` outbound transfers sourced from that
    /// device (a staged D2H snapshot or a peer-copy payload) each have
    /// one bit flipped in flight, *without* any error being raised. The
    /// transfer status stays green — only an end-to-end digest (or the
    /// conformance oracle) can tell. Token-based like
    /// [`PlannedFault::TransientCopies`] so the semantic outcome stays
    /// schedule-independent.
    SilentFlip {
        /// Device whose outbound payloads are corrupted.
        device: u32,
        /// Tokens are armed from this instant.
        after: SimTime,
        /// Number of payloads that will be corrupted.
        count: u32,
    },
    /// At `at`, one bit flips in data *at rest*: a pending staged D2H
    /// commit buffer belonging to a construct on `device` is scribbled
    /// while it waits for its transfer to complete (host-DRAM rot in the
    /// commit staging area — the at-rest complement to the in-flight
    /// [`PlannedFault::SilentFlip`]). Inert if nothing is staged at
    /// `at`, exactly like a loss scheduled after the program ends.
    MemoryScribble {
        /// Device whose staged commits are scribbled.
        device: u32,
        /// Instant of the scribble.
        at: SimTime,
    },
}

impl PlannedFault {
    /// The device this fault targets.
    pub fn device(&self) -> u32 {
        match *self {
            PlannedFault::TransientCopies { device, .. }
            | PlannedFault::LinkDegrade { device, .. }
            | PlannedFault::OomSpike { device, .. }
            | PlannedFault::DeviceLoss { device, .. }
            | PlannedFault::OomSustained { device, .. }
            | PlannedFault::ComputeSlowdown { device, .. }
            | PlannedFault::SilentFlip { device, .. }
            | PlannedFault::MemoryScribble { device, .. } => device,
        }
    }
}

/// Why a [`FaultPlan`] failed validation. Malformed plans used to be
/// silently inert (an inverted window never matches, a zero-token burst
/// never fires); [`FaultPlan::validate`] rejects them at build time so a
/// typo'd experiment fails loudly instead of quietly testing nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A windowed fault closes before it opens (`until < from`).
    WindowInverted {
        /// Target device of the offending fault.
        device: u32,
        /// Index of the offending fault in [`FaultPlan::faults`].
        index: usize,
    },
    /// A token-based fault arms zero tokens and can never fire.
    ZeroCount {
        /// Target device of the offending fault.
        device: u32,
        /// Index of the offending fault in [`FaultPlan::faults`].
        index: usize,
    },
    /// A fault targets a device id the machine does not have.
    DeviceOutOfRange {
        /// The out-of-range device id.
        device: u32,
        /// Number of devices in the machine.
        n_devices: usize,
        /// Index of the offending fault in [`FaultPlan::faults`].
        index: usize,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultPlanError::WindowInverted { device, index } => write!(
                f,
                "fault plan: fault #{index} on device {device} has an inverted window (until < from)"
            ),
            FaultPlanError::ZeroCount { device, index } => write!(
                f,
                "fault plan: fault #{index} on device {device} arms zero tokens and can never fire"
            ),
            FaultPlanError::DeviceOutOfRange {
                device,
                n_devices,
                index,
            } => write!(
                f,
                "fault plan: fault #{index} targets device {device} but the machine has {n_devices}"
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A seeded, fully deterministic fault schedule.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every random draw the fault machinery makes (backoff
    /// jitter, generated plans). Two runs with the same plan are
    /// byte-identical.
    pub seed: u64,
    /// The planned faults, in no particular order.
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan (nothing fails) with the given jitter seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Add armed transient copy failures.
    pub fn transient_copies(mut self, device: u32, after: SimTime, count: u32) -> Self {
        self.faults.push(PlannedFault::TransientCopies {
            device,
            after,
            count,
        });
        self
    }

    /// Add a link-degradation window.
    pub fn degrade_link(mut self, device: u32, from: SimTime, until: SimTime, factor: f64) -> Self {
        assert!(factor >= 1.0, "degradation factor must be >= 1");
        self.faults.push(PlannedFault::LinkDegrade {
            device,
            from,
            until,
            factor,
        });
        self
    }

    /// Add a device-OOM spike.
    pub fn oom_spike(
        mut self,
        device: u32,
        at: SimTime,
        bytes: u64,
        duration: SimDuration,
    ) -> Self {
        self.faults.push(PlannedFault::OomSpike {
            device,
            at,
            bytes,
            duration,
        });
        self
    }

    /// Add a permanent device loss.
    pub fn lose_device(mut self, device: u32, at: SimTime) -> Self {
        self.faults.push(PlannedFault::DeviceLoss { device, at });
        self
    }

    /// Add sustained memory pressure: `bytes` of `device`'s memory
    /// vanish at `at` and never return.
    pub fn sustain_pressure(mut self, device: u32, at: SimTime, bytes: u64) -> Self {
        self.faults
            .push(PlannedFault::OomSustained { device, at, bytes });
        self
    }

    /// Add a compute-slowdown window: kernels on `device` between `from`
    /// and `until` take `factor`× their modeled duration.
    pub fn slow_compute(mut self, device: u32, from: SimTime, until: SimTime, factor: f64) -> Self {
        assert!(factor >= 1.0, "slowdown factor must be >= 1");
        self.faults.push(PlannedFault::ComputeSlowdown {
            device,
            from,
            until,
            factor,
        });
        self
    }

    /// Add armed silent payload corruptions: the next `count` outbound
    /// payloads sourced from `device` after `after` each have one bit
    /// flipped in flight, with no error raised.
    pub fn silent_flips(mut self, device: u32, after: SimTime, count: u32) -> Self {
        self.faults.push(PlannedFault::SilentFlip {
            device,
            after,
            count,
        });
        self
    }

    /// Add an at-rest scribble: at `at`, one bit flips in a pending
    /// staged commit buffer belonging to a construct on `device`.
    pub fn scribble(mut self, device: u32, at: SimTime) -> Self {
        self.faults
            .push(PlannedFault::MemoryScribble { device, at });
        self
    }

    /// Check the plan against an `n_devices` machine: every fault must
    /// target an existing device, windowed faults must close no earlier
    /// than they open, and token-based faults must arm at least one
    /// token. Returns the first offence found, in fault order.
    pub fn validate(&self, n_devices: usize) -> Result<(), FaultPlanError> {
        for (index, fault) in self.faults.iter().enumerate() {
            let device = fault.device();
            if device as usize >= n_devices {
                return Err(FaultPlanError::DeviceOutOfRange {
                    device,
                    n_devices,
                    index,
                });
            }
            match *fault {
                PlannedFault::LinkDegrade { from, until, .. }
                | PlannedFault::ComputeSlowdown { from, until, .. } => {
                    if until < from {
                        return Err(FaultPlanError::WindowInverted { device, index });
                    }
                }
                PlannedFault::TransientCopies { count, .. }
                | PlannedFault::SilentFlip { count, .. } => {
                    if count == 0 {
                        return Err(FaultPlanError::ZeroCount { device, index });
                    }
                }
                PlannedFault::OomSpike { .. }
                | PlannedFault::DeviceLoss { .. }
                | PlannedFault::OomSustained { .. }
                | PlannedFault::MemoryScribble { .. } => {}
            }
        }
        Ok(())
    }

    /// The silent-flip bursts of this plan as `(device, after, count)`.
    pub fn flips(&self) -> Vec<(u32, SimTime, u32)> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                PlannedFault::SilentFlip {
                    device,
                    after,
                    count,
                } => Some((device, after, count)),
                _ => None,
            })
            .collect()
    }

    /// The at-rest scribbles of this plan as `(device, at)`.
    pub fn scribbles(&self) -> Vec<(u32, SimTime)> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                PlannedFault::MemoryScribble { device, at } => Some((device, at)),
                _ => None,
            })
            .collect()
    }

    /// The memory-pressure windows of this plan as
    /// `(device, start, end, bytes)`, with `end = None` for sustained
    /// pressure. This is the forecast admission control consults.
    pub fn pressure_windows(&self) -> Vec<(u32, SimTime, Option<SimTime>, u64)> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                PlannedFault::OomSpike {
                    device,
                    at,
                    bytes,
                    duration,
                } => Some((device, at, Some(at + duration), bytes)),
                PlannedFault::OomSustained { device, at, bytes } => Some((device, at, None, bytes)),
                _ => None,
            })
            .collect()
    }

    /// True if the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Devices permanently lost by this plan, with their loss instants.
    pub fn losses(&self) -> Vec<(u32, SimTime)> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                PlannedFault::DeviceLoss { device, at } => Some((device, at)),
                _ => None,
            })
            .collect()
    }

    /// Derive a random plan for an `n_devices` machine from a seed: a
    /// few transient bursts and degradation windows inside `horizon`,
    /// and (with probability ½) one device lost mid-run. Fully
    /// deterministic in `seed`.
    pub fn generate(seed: u64, n_devices: usize, horizon: SimDuration) -> Self {
        assert!(n_devices > 0, "generate needs at least one device");
        let mut r = Prng::new(seed);
        let mut plan = FaultPlan::new(seed);
        let ns = horizon.as_nanos().max(1);
        let instant = |r: &mut Prng| SimTime::from_nanos(r.below(ns));
        for _ in 0..r.range(0, 3) {
            let d = r.below(n_devices as u64) as u32;
            let at = instant(&mut r);
            plan = plan.transient_copies(d, at, r.range(1, 4) as u32);
        }
        for _ in 0..r.range(0, 2) {
            let d = r.below(n_devices as u64) as u32;
            let from = instant(&mut r);
            let until = from + SimDuration::from_nanos(r.below(ns));
            plan = plan.degrade_link(d, from, until, 1.0 + 3.0 * r.f64());
        }
        if n_devices > 1 && r.chance(0.5) {
            let d = r.below(n_devices as u64) as u32;
            plan = plan.lose_device(d, instant(&mut r));
        }
        plan
    }
}

/// Bounded-retry policy with deterministic exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail immediately).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base: SimDuration,
    /// Backoff ceiling.
    pub cap: SimDuration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a factor
    /// drawn uniformly from `[1 − jitter/2, 1 + jitter/2]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: SimDuration::from_micros(20),
            cap: SimDuration::from_millis(10),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..Default::default()
        }
    }

    /// The backoff before retry number `attempt` (0-based), without
    /// jitter: `base · 2^attempt`, capped at `cap`. Both the
    /// exponentiation and the multiplication saturate instead of
    /// overflowing, so the cap applies to the mathematically intended
    /// value for every `attempt` up to `u32::MAX`.
    pub fn backoff_unjittered(&self, attempt: u32) -> SimDuration {
        let pow = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        let ns = self.base.as_nanos().saturating_mul(pow);
        SimDuration::from_nanos(ns).min(self.cap)
    }

    /// The backoff before retry number `attempt` (0-based): exponential
    /// in `attempt`, capped, jittered. The jitter draw comes from the
    /// caller's run-scoped PRNG — the *only* legal randomness source, so
    /// two runs with the same plan seed back off identically.
    pub fn backoff(&self, attempt: u32, prng: &mut Prng) -> SimDuration {
        let capped = self.backoff_unjittered(attempt);
        let j = self.jitter.clamp(0.0, 1.0);
        let scale = 1.0 - j / 2.0 + j * prng.f64();
        capped * scale
    }
}

/// What finally went wrong with an operation, reported to its `on_fault`
/// handler after the engine's internal retries are spent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// The device the operation targeted.
    pub device: u32,
    /// Virtual instant the fault surfaced.
    pub at: SimTime,
    /// Fault classification.
    pub kind: FaultEventKind,
}

/// Classification of a surfaced fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEventKind {
    /// Transient copy errors persisted through every allowed retry.
    TransientExhausted {
        /// Attempts made (first try + retries).
        attempts: u32,
    },
    /// The device is permanently lost.
    DeviceLost,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_nanos(n * 1_000)
    }

    #[test]
    fn builder_accumulates_faults() {
        let p = FaultPlan::new(7)
            .transient_copies(1, us(10), 2)
            .degrade_link(0, us(0), us(50), 2.0)
            .oom_spike(2, us(5), 1 << 20, SimDuration::from_micros(30))
            .lose_device(3, us(40))
            .sustain_pressure(1, us(0), 4096);
        assert_eq!(p.faults.len(), 5);
        assert_eq!(p.losses(), vec![(3, us(40))]);
        assert!(!p.is_empty());
        assert_eq!(p.faults[0].device(), 1);
        assert_eq!(p.faults[4].device(), 1);
    }

    #[test]
    fn pressure_windows_cover_spikes_and_sustained() {
        let p = FaultPlan::new(0)
            .oom_spike(2, us(5), 1 << 20, SimDuration::from_micros(30))
            .sustain_pressure(1, us(0), 4096)
            .lose_device(3, us(40));
        let w = p.pressure_windows();
        assert_eq!(
            w,
            vec![(2, us(5), Some(us(35)), 1 << 20), (1, us(0), None, 4096),]
        );
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn speedup_degradation_rejected() {
        let _ = FaultPlan::new(0).degrade_link(0, us(0), us(1), 0.5);
    }

    #[test]
    fn generate_is_deterministic() {
        let a = FaultPlan::generate(11, 4, SimDuration::from_millis(5));
        let b = FaultPlan::generate(11, 4, SimDuration::from_millis(5));
        assert_eq!(a, b);
        // Some seed in a small range must produce a loss and a transient.
        let plans: Vec<FaultPlan> = (0..32)
            .map(|s| FaultPlan::generate(s, 4, SimDuration::from_millis(5)))
            .collect();
        assert!(plans.iter().any(|p| !p.losses().is_empty()));
        assert!(plans.iter().any(|p| p
            .faults
            .iter()
            .any(|f| matches!(f, PlannedFault::TransientCopies { .. }))));
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let pol = RetryPolicy {
            max_retries: 8,
            base: SimDuration::from_micros(10),
            cap: SimDuration::from_micros(100),
            jitter: 0.0,
        };
        let mut r = Prng::new(1);
        assert_eq!(pol.backoff(0, &mut r), SimDuration::from_micros(10));
        assert_eq!(pol.backoff(1, &mut r), SimDuration::from_micros(20));
        assert_eq!(pol.backoff(2, &mut r), SimDuration::from_micros(40));
        // Capped from attempt 4 onward.
        assert_eq!(pol.backoff(5, &mut r), SimDuration::from_micros(100));
        assert_eq!(pol.backoff(31, &mut r), SimDuration::from_micros(100));

        // With jitter: same PRNG stream → same delays; the spread stays
        // inside [1 - j/2, 1 + j/2] × base.
        let pol = RetryPolicy { jitter: 0.5, ..pol };
        let seq = |seed| {
            let mut r = Prng::new(seed);
            (0..16).map(|_| pol.backoff(0, &mut r)).collect::<Vec<_>>()
        };
        assert_eq!(seq(42), seq(42));
        for d in seq(42) {
            let f = d.as_secs_f64() / SimDuration::from_micros(10).as_secs_f64();
            assert!((0.75..=1.25).contains(&f), "jitter factor {f}");
        }
    }

    #[test]
    fn retry_policy_none_fails_fast() {
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }

    #[test]
    fn slow_compute_accumulates_and_targets_device() {
        let p = FaultPlan::new(3).slow_compute(2, us(10), us(90), 8.0);
        assert_eq!(p.faults.len(), 1);
        assert_eq!(p.faults[0].device(), 2);
        assert!(matches!(
            p.faults[0],
            PlannedFault::ComputeSlowdown { factor, .. } if factor == 8.0
        ));
        // Slowdowns carry no memory-pressure windows and no losses.
        assert!(p.pressure_windows().is_empty());
        assert!(p.losses().is_empty());
    }

    #[test]
    #[should_panic(expected = "slowdown factor must be >= 1")]
    fn compute_speedup_rejected() {
        let _ = FaultPlan::new(0).slow_compute(0, us(0), us(1), 0.5);
    }

    #[test]
    fn backoff_never_overflows_before_the_cap() {
        // A base large enough that base · 2^attempt overflows u64
        // nanoseconds long before attempt 63. The cap must still apply
        // to the intended (saturated) value, not to a wrapped one.
        let pol = RetryPolicy {
            max_retries: u32::MAX,
            base: SimDuration::from_millis(10),
            cap: SimDuration::from_millis(25),
            jitter: 0.0,
        };
        let mut r = Prng::new(0);
        for attempt in [0, 1, 2, 32, 63, 64, 1000, u32::MAX] {
            let d = pol.backoff(attempt, &mut r);
            assert!(d <= pol.cap, "attempt {attempt} exceeded cap: {d:?}");
        }
        assert_eq!(pol.backoff(u32::MAX, &mut r), pol.cap);
    }

    #[test]
    fn flip_and_scribble_builders_accumulate_and_report() {
        let p = FaultPlan::new(5)
            .silent_flips(2, us(10), 3)
            .scribble(1, us(25))
            .transient_copies(0, us(0), 1);
        assert_eq!(p.flips(), vec![(2, us(10), 3)]);
        assert_eq!(p.scribbles(), vec![(1, us(25))]);
        assert_eq!(p.faults[0].device(), 2);
        assert_eq!(p.faults[1].device(), 1);
        // Flips and scribbles carry no pressure windows and no losses.
        assert!(p.pressure_windows().is_empty());
        assert!(p.losses().is_empty());
    }

    #[test]
    fn validate_accepts_well_formed_plans() {
        let p = FaultPlan::new(1)
            .transient_copies(0, us(1), 2)
            .degrade_link(1, us(0), us(50), 2.0)
            .slow_compute(2, us(5), us(5), 4.0) // empty-but-not-inverted window is fine
            .oom_spike(3, us(2), 4096, SimDuration::from_micros(3))
            .silent_flips(0, us(0), 1)
            .scribble(1, us(9))
            .lose_device(3, us(40));
        assert_eq!(p.validate(4), Ok(()));
        assert_eq!(FaultPlan::new(0).validate(0), Ok(()));
    }

    #[test]
    fn validate_rejects_inverted_windows() {
        let p = FaultPlan::new(0)
            .transient_copies(0, us(0), 1)
            .degrade_link(1, us(50), us(10), 2.0);
        assert_eq!(
            p.validate(4),
            Err(FaultPlanError::WindowInverted {
                device: 1,
                index: 1
            })
        );
        let p = FaultPlan::new(0).slow_compute(2, us(9), us(3), 8.0);
        assert_eq!(
            p.validate(4),
            Err(FaultPlanError::WindowInverted {
                device: 2,
                index: 0
            })
        );
    }

    #[test]
    fn validate_rejects_zero_token_bursts() {
        let p = FaultPlan::new(0).transient_copies(1, us(0), 0);
        assert_eq!(
            p.validate(2),
            Err(FaultPlanError::ZeroCount {
                device: 1,
                index: 0
            })
        );
        let p = FaultPlan::new(0).silent_flips(0, us(0), 0);
        assert_eq!(
            p.validate(2),
            Err(FaultPlanError::ZeroCount {
                device: 0,
                index: 0
            })
        );
    }

    #[test]
    fn validate_rejects_out_of_range_devices() {
        let p = FaultPlan::new(0).lose_device(4, us(1));
        assert_eq!(
            p.validate(4),
            Err(FaultPlanError::DeviceOutOfRange {
                device: 4,
                n_devices: 4,
                index: 0
            })
        );
        // The first offence wins, in fault order.
        let p = FaultPlan::new(0)
            .scribble(9, us(0))
            .silent_flips(0, us(0), 0);
        assert!(matches!(
            p.validate(2),
            Err(FaultPlanError::DeviceOutOfRange { device: 9, .. })
        ));
        assert_eq!(
            p.validate(10),
            Err(FaultPlanError::ZeroCount {
                device: 0,
                index: 1
            })
        );
    }

    #[test]
    fn fault_plan_errors_display_the_offence() {
        let msg = FaultPlanError::WindowInverted {
            device: 1,
            index: 3,
        }
        .to_string();
        assert!(msg.contains("inverted window"), "{msg}");
        let msg = FaultPlanError::DeviceOutOfRange {
            device: 7,
            n_devices: 4,
            index: 0,
        }
        .to_string();
        assert!(msg.contains("device 7") && msg.contains('4'), "{msg}");
    }

    #[test]
    fn backoff_is_deterministic_per_seed_capped_and_monotone() {
        let pol = RetryPolicy {
            max_retries: 16,
            base: SimDuration::from_micros(5),
            cap: SimDuration::from_micros(200),
            jitter: 0.8,
        };
        // Deterministic per seed: same seed → same sequence, different
        // seed → (here) a different one.
        let seq = |seed| {
            let mut r = Prng::new(seed);
            (0..16).map(|a| pol.backoff(a, &mut r)).collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
        // Capped: jitter can push at most cap · (1 + j/2) past the cap.
        let ceiling = pol.cap * (1.0 + pol.jitter / 2.0);
        for d in seq(9) {
            assert!(d <= ceiling, "{d:?} above jittered ceiling");
        }
        // Non-decreasing up to the cap (jitter off so the exponential
        // shape is visible directly).
        let flat = RetryPolicy { jitter: 0.0, ..pol };
        let mut r = Prng::new(0);
        let mut prev = SimDuration::ZERO;
        for a in 0..64 {
            let d = flat.backoff(a, &mut r);
            assert!(d >= prev, "backoff decreased at attempt {a}");
            assert!(d <= flat.cap);
            prev = d;
        }
        assert_eq!(prev, flat.cap);
    }
}
