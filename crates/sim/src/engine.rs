//! The discrete-event simulator core.
//!
//! A [`Simulator`] owns a virtual clock and a priority queue of events.
//! Each event is an `FnOnce(&mut Simulator)` callback fired at a specific
//! virtual instant; callbacks schedule further events, so arbitrary
//! protocols (DMA engines, task graphs, …) are built on top by capturing
//! shared state (`Rc<RefCell<…>>`) in the closures.
//!
//! Determinism: ties at the same instant fire in a reproducible order
//! governed by the [`TieBreak`] policy — scheduling order by default, or
//! a seeded pseudo-random permutation for schedule fuzzing — and the
//! engine is single-threaded, so a given (program, policy) pair produces
//! an identical event history on every run — which the tests rely on.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use spread_trace::{SimDuration, SimTime, TraceRecorder};

/// Handle to a scheduled event; used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

/// An event callback.
pub type EventFn = Box<dyn FnOnce(&mut Simulator)>;

/// Policy for ordering events that share a timestamp.
///
/// Any order among same-instant events is a *legal* schedule (causality
/// is preserved structurally: an event scheduled by a firing callback
/// enters the queue only after its parent ran). `Fifo` is the historical
/// default; `Seeded` drives the `spread-check` conformance fuzzer, which
/// asserts that every legal interleaving of a directive program produces
/// the same result. Both are fully deterministic given the variant.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TieBreak {
    /// Ties fire in scheduling order.
    #[default]
    Fifo,
    /// Ties fire in a pseudo-random order derived from the seed: each
    /// event's heap key is a SplitMix64 hash of (seed, sequence number),
    /// so the permutation is reproducible from the seed alone.
    Seeded(u64),
}

impl TieBreak {
    /// The heap tie key for the event with sequence number `seq`.
    fn key(self, seq: u64) -> u64 {
        match self {
            TieBreak::Fifo => seq,
            TieBreak::Seeded(seed) => spread_prng::mix(seed, seq),
        }
    }
}

/// The discrete-event simulator: virtual clock + cancellable event queue.
pub struct Simulator {
    now: SimTime,
    /// Min-heap of (time, tie key, seq); payloads live in `payloads` so
    /// cancellation is O(1) (lazy deletion on pop). The tie key is the
    /// sequence number under [`TieBreak::Fifo`], a seeded hash under
    /// [`TieBreak::Seeded`]; the trailing seq keeps keys unique.
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    payloads: HashMap<u64, EventFn>,
    next_seq: u64,
    executed: u64,
    tie_break: TieBreak,
    trace: TraceRecorder,
}

impl Simulator {
    /// A simulator at t = 0 recording into `trace`, with FIFO ties.
    pub fn new(trace: TraceRecorder) -> Self {
        Self::with_tie_break(trace, TieBreak::Fifo)
    }

    /// A simulator at t = 0 with an explicit tie-break policy.
    pub fn with_tie_break(trace: TraceRecorder, tie_break: TieBreak) -> Self {
        Simulator {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            payloads: HashMap::new(),
            next_seq: 0,
            executed: 0,
            tie_break,
            trace,
        }
    }

    /// The active tie-break policy.
    pub fn tie_break(&self) -> TieBreak {
        self.tie_break
    }

    /// A simulator with trace recording disabled.
    pub fn without_trace() -> Self {
        Self::new(TraceRecorder::disabled())
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The recorder this simulator (and its subsystems) write spans to.
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.payloads.len()
    }

    /// Schedule `f` at absolute time `at`. Scheduling in the past is
    /// clamped to "now" (the event fires at the current instant, after
    /// events already queued for it).
    pub fn schedule_at(&mut self, at: SimTime, f: EventFn) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, self.tie_break.key(seq), seq)));
        self.payloads.insert(seq, f);
        EventId(seq)
    }

    /// Schedule `f` after a delay from now.
    pub fn schedule_after(&mut self, delay: SimDuration, f: EventFn) -> EventId {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule `f` at the current instant (after already-queued events
    /// for this instant).
    pub fn schedule_now(&mut self, f: EventFn) -> EventId {
        self.schedule_at(self.now, f)
    }

    /// Cancel a pending event. Returns true if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.payloads.remove(&id.0).is_some()
    }

    /// Time of the next pending event, if any.
    pub fn peek_next(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    fn skim_cancelled(&mut self) {
        while let Some(Reverse((_, _, seq))) = self.heap.peek() {
            if self.payloads.contains_key(seq) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Execute the next event. Returns false if the queue is empty.
    ///
    /// The clock never runs backwards; it jumps to the event's timestamp.
    pub fn step(&mut self) -> bool {
        self.skim_cancelled();
        let Some(Reverse((t, _, seq))) = self.heap.pop() else {
            return false;
        };
        let f = self
            .payloads
            .remove(&seq)
            .expect("skim_cancelled guarantees a live payload");
        debug_assert!(t >= self.now, "event queue went backwards");
        self.now = t;
        self.executed += 1;
        f(self);
        true
    }

    /// Run until no events remain. Returns the number of events executed.
    pub fn run_until_idle(&mut self) -> u64 {
        let before = self.executed;
        while self.step() {}
        self.executed - before
    }

    /// Run every event with timestamp `<= t`, then advance the clock to
    /// exactly `t` (even if idle before then).
    pub fn run_until(&mut self, t: SimTime) {
        loop {
            match self.peek_next() {
                Some(next) if next <= t => {
                    self.step();
                }
                _ => break,
            }
        }
        self.now = self.now.max(t);
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::without_trace();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (at, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = log.clone();
            sim.schedule_at(
                t(at),
                Box::new(move |s| {
                    log.borrow_mut().push((s.now().as_nanos(), tag));
                }),
            );
        }
        assert_eq!(sim.run_until_idle(), 3);
        assert_eq!(*log.borrow(), vec![(10, 'a'), (20, 'b'), (30, 'c')]);
        assert_eq!(sim.now(), t(30));
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim = Simulator::without_trace();
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in ['x', 'y', 'z'] {
            let log = log.clone();
            sim.schedule_at(t(5), Box::new(move |_| log.borrow_mut().push(tag)));
        }
        sim.run_until_idle();
        assert_eq!(*log.borrow(), vec!['x', 'y', 'z']);
    }

    #[test]
    fn events_schedule_events() {
        let mut sim = Simulator::without_trace();
        let hits = Rc::new(RefCell::new(0u32));
        let hits2 = hits.clone();
        sim.schedule_at(
            t(1),
            Box::new(move |s| {
                *hits2.borrow_mut() += 1;
                let hits3 = hits2.clone();
                s.schedule_after(
                    SimDuration::from_nanos(9),
                    Box::new(move |_| {
                        *hits3.borrow_mut() += 1;
                    }),
                );
            }),
        );
        sim.run_until_idle();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(sim.now(), t(10));
    }

    #[test]
    fn cancellation() {
        let mut sim = Simulator::without_trace();
        let fired = Rc::new(RefCell::new(false));
        let f2 = fired.clone();
        let id = sim.schedule_at(t(10), Box::new(move |_| *f2.borrow_mut() = true));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id)); // double-cancel is a no-op
        sim.run_until_idle();
        assert!(!*fired.borrow());
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut sim = Simulator::without_trace();
        sim.schedule_at(
            t(100),
            Box::new(|s| {
                // This callback schedules "in the past"; it must fire at now.
                s.schedule_at(
                    t(1),
                    Box::new(|s2| {
                        assert_eq!(s2.now().as_nanos(), 100);
                    }),
                );
            }),
        );
        sim.run_until_idle();
        assert_eq!(sim.executed(), 2);
    }

    #[test]
    fn run_until_partial() {
        let mut sim = Simulator::without_trace();
        let log = Rc::new(RefCell::new(Vec::new()));
        for at in [10u64, 20, 30] {
            let log = log.clone();
            sim.schedule_at(t(at), Box::new(move |_| log.borrow_mut().push(at)));
        }
        sim.run_until(t(20));
        assert_eq!(*log.borrow(), vec![10, 20]);
        assert_eq!(sim.now(), t(20));
        assert_eq!(sim.pending(), 1);
        // Advances clock even when idle.
        sim.run_until(t(25));
        assert_eq!(sim.now(), t(25));
        sim.run_until_idle();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
    }

    #[test]
    fn peek_next_skips_cancelled() {
        let mut sim = Simulator::without_trace();
        let id = sim.schedule_at(t(5), Box::new(|_| {}));
        sim.schedule_at(t(9), Box::new(|_| {}));
        sim.cancel(id);
        assert_eq!(sim.peek_next(), Some(t(9)));
    }

    #[test]
    fn seeded_ties_permute_but_reproduce() {
        let run = |tie: TieBreak| {
            let mut sim = Simulator::with_tie_break(TraceRecorder::disabled(), tie);
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..32u64 {
                let log = log.clone();
                sim.schedule_at(t(5), Box::new(move |_| log.borrow_mut().push(i)));
            }
            sim.run_until_idle();
            let out = log.borrow().clone();
            out
        };
        let fifo = run(TieBreak::Fifo);
        assert_eq!(fifo, (0..32).collect::<Vec<_>>());
        // Same seed → same permutation; different seeds differ from FIFO
        // (and each other) for at least one of a handful of seeds.
        let mut distinct = vec![fifo];
        for seed in 0..4 {
            let a = run(TieBreak::Seeded(seed));
            assert_eq!(
                a,
                run(TieBreak::Seeded(seed)),
                "seed {seed} not reproducible"
            );
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..32).collect::<Vec<_>>(), "events lost");
            distinct.push(a);
        }
        distinct.dedup();
        assert!(distinct.len() > 1, "seeded tie-break never permuted");
    }

    #[test]
    fn seeded_ties_preserve_time_order() {
        let mut sim = Simulator::with_tie_break(TraceRecorder::disabled(), TieBreak::Seeded(9));
        let log = Rc::new(RefCell::new(Vec::new()));
        for (at, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = log.clone();
            sim.schedule_at(t(at), Box::new(move |_| log.borrow_mut().push(tag)));
        }
        sim.run_until_idle();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn determinism_two_runs_identical() {
        let run = || {
            let mut sim = Simulator::without_trace();
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..100u64 {
                let log = log.clone();
                // Deliberately colliding timestamps.
                sim.schedule_at(t(i % 7), Box::new(move |_| log.borrow_mut().push(i)));
            }
            sim.run_until_idle();
            let out = log.borrow().clone();
            out
        };
        assert_eq!(run(), run());
    }
}
