//! # spread-sim
//!
//! A deterministic discrete-event simulation (DES) engine for the
//! `target-spread` reproduction, plus the bandwidth model that drives the
//! paper's headline numbers.
//!
//! * [`engine`] — the [`Simulator`]: a virtual clock and a cancellable
//!   event queue ordered by `(time, sequence)`. Events are `FnOnce`
//!   callbacks; everything is single-threaded and therefore exactly
//!   reproducible run to run.
//! * [`flow`] — the [`FlowNet`](flow::FlowNet): concurrent bulk transfers
//!   ("flows") share a set of capacity constraints (device link, PCIe
//!   switch, host bus) under **max–min fair** processor sharing. Every
//!   arrival or departure re-allocates rates and re-schedules completion
//!   events. This is what reproduces the paper's observation that kernel
//!   computation scales near-linearly with devices while host↔device
//!   transfers saturate a shared bus (Table I's ~2.1× at 4 GPUs).
//! * [`fault`] — deterministic, seeded [`FaultPlan`]s: transient DMA
//!   errors, link degradation windows, device-OOM spikes and permanent
//!   device loss, all pinned to virtual time so faulted runs replay
//!   byte-identically; plus the [`RetryPolicy`] that governs bounded
//!   retries with seeded exponential backoff.
//!
//! Virtual time types come from [`spread_trace`] (re-exported here) so
//! recorded spans and simulator timestamps are the same type.

#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod flow;

pub use engine::{EventId, Simulator, TieBreak};
pub use fault::{FaultEvent, FaultEventKind, FaultPlan, FaultPlanError, PlannedFault, RetryPolicy};
pub use flow::{CapacityId, FlowId, FlowNet, SharedFlowNet};
pub use spread_trace::{SimDuration, SimTime};
