//! Processor-sharing bulk transfers over shared capacity constraints.
//!
//! A *flow* is a bulk data movement of `bytes` through a set of capacity
//! constraints (its device link, the PCIe switch it hangs off, the host
//! bus). All concurrently active flows share the constraints under
//! **max–min fairness** (progressive filling / water-filling): rates are
//! raised equally for all flows until some constraint saturates, flows
//! through that constraint are frozen at their fair share, and the process
//! repeats with the residual capacity.
//!
//! Whenever a flow starts or finishes, the allocation changes, so the
//! [`SharedFlowNet`] re-computes every active flow's rate and re-schedules
//! its completion event. The result is the classic fluid model of
//! contended interconnects — exactly the effect the paper measures when it
//! reports that "the kernel computations had near to linear speedup … this
//! suggests the occurrence of a communication bottleneck introduced when
//! transferring data to and from multiple GPUs" (§VI-A).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use spread_trace::{SimDuration, SimTime};

use crate::engine::{EventId, Simulator};

/// Handle to a capacity constraint (a link, switch, or bus).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CapacityId(usize);

/// Handle to an active flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(u64);

/// Bytes of slack below which a flow is considered finished (absorbs the
/// sub-nanosecond rounding of completion events).
const DONE_EPS_BYTES: f64 = 1.0;

struct Capacity {
    name: String,
    bytes_per_sec: f64,
    /// Total bytes that have streamed through this constraint.
    bytes_through: f64,
    /// Time-integral of utilization (∫ used/capacity dt, in seconds).
    busy_seconds: f64,
}

/// Completion callback of a flow.
pub type FlowCallback = Box<dyn FnOnce(&mut Simulator)>;

struct FlowState {
    remaining: f64,
    caps: Vec<usize>,
    rate: f64,
    completion: Option<EventId>,
    on_complete: Option<FlowCallback>,
}

/// The flow network: capacities plus the currently active flows.
///
/// Use through [`SharedFlowNet`], which owns the `Rc<RefCell<…>>` plumbing
/// needed so completion events can reach back into the network.
pub struct FlowNet {
    caps: Vec<Capacity>,
    flows: BTreeMap<u64, FlowState>,
    next_flow: u64,
    last_progress: SimTime,
}

impl FlowNet {
    fn new() -> Self {
        FlowNet {
            caps: Vec::new(),
            flows: BTreeMap::new(),
            next_flow: 0,
            last_progress: SimTime::ZERO,
        }
    }

    /// Advance all flows' `remaining` to time `now` at their current
    /// rates, attributing the moved bytes to every constraint each flow
    /// traverses (utilization accounting).
    fn progress_to(&mut self, now: SimTime) {
        let dt = now.since(self.last_progress).as_secs_f64();
        if dt > 0.0 {
            let mut per_cap = vec![0.0f64; self.caps.len()];
            for f in self.flows.values_mut() {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
                for &c in &f.caps {
                    per_cap[c] += f.rate * dt;
                }
            }
            for (cap, moved) in self.caps.iter_mut().zip(per_cap) {
                cap.bytes_through += moved;
                if cap.bytes_per_sec > 0.0 {
                    cap.busy_seconds += moved / cap.bytes_per_sec;
                }
            }
        }
        self.last_progress = self.last_progress.max(now);
    }

    /// Recompute every active flow's max–min fair rate.
    fn compute_rates(&mut self) {
        let cap_rates: Vec<f64> = self.caps.iter().map(|c| c.bytes_per_sec).collect();
        let ids: Vec<u64> = self.flows.keys().copied().collect();
        let flow_caps: Vec<&[usize]> = ids
            .iter()
            .map(|id| self.flows[id].caps.as_slice())
            .collect();
        let rates = maxmin_rates(&cap_rates, &flow_caps);
        for (id, rate) in ids.into_iter().zip(rates) {
            self.flows.get_mut(&id).expect("flow exists").rate = rate;
        }
    }
}

/// Compute max–min fair rates.
///
/// `cap_rates[c]` is the capacity of constraint `c` (bytes/s, must be
/// positive); `flow_caps[f]` lists the constraints flow `f` traverses
/// (must be non-empty). Returns one rate per flow.
///
/// Properties (see the proptests): for every constraint the sum of rates
/// through it never exceeds its capacity; every flow has a positive rate;
/// and the allocation is *work conserving* — each flow is bottlenecked by
/// at least one saturated constraint.
pub fn maxmin_rates(cap_rates: &[f64], flow_caps: &[&[usize]]) -> Vec<f64> {
    let n_flows = flow_caps.len();
    let mut rates = vec![0.0f64; n_flows];
    if n_flows == 0 {
        return rates;
    }
    let mut cap_left = cap_rates.to_vec();
    let mut users: Vec<usize> = vec![0; cap_rates.len()];
    for caps in flow_caps {
        assert!(
            !caps.is_empty(),
            "flow must traverse at least one constraint"
        );
        for &c in *caps {
            users[c] += 1;
        }
    }
    let mut frozen = vec![false; n_flows];
    let mut n_frozen = 0usize;
    while n_frozen < n_flows {
        // Bottleneck constraint: smallest fair share among used constraints.
        let mut best: Option<(f64, usize)> = None;
        for (c, &left) in cap_left.iter().enumerate() {
            if users[c] == 0 {
                continue;
            }
            let share = left / users[c] as f64;
            match best {
                Some((s, _)) if s <= share => {}
                _ => best = Some((share, c)),
            }
        }
        let Some((share, bottleneck)) = best else {
            break; // no used constraints remain (shouldn't happen)
        };
        let share = share.max(0.0);
        // Freeze every unfrozen flow through the bottleneck at `share`.
        for (f, caps) in flow_caps.iter().enumerate() {
            if frozen[f] || !caps.contains(&bottleneck) {
                continue;
            }
            rates[f] = share;
            frozen[f] = true;
            n_frozen += 1;
            for &c in *caps {
                cap_left[c] = (cap_left[c] - share).max(0.0);
                users[c] -= 1;
            }
        }
    }
    rates
}

/// Shared handle to a [`FlowNet`]; clone freely.
///
/// ```
/// use spread_sim::{SharedFlowNet, Simulator};
///
/// let mut sim = Simulator::without_trace();
/// let net = SharedFlowNet::new();
/// let bus = net.add_capacity("bus", 100.0); // bytes per second
/// // Two 1000-byte flows share the bus at 50 B/s each.
/// for _ in 0..2 {
///     net.start_flow(&mut sim, 1000, vec![bus], Box::new(|_| {}));
/// }
/// sim.run_until_idle();
/// assert!((sim.now().as_secs_f64() - 20.0).abs() < 1e-6);
/// ```
#[derive(Clone)]
pub struct SharedFlowNet {
    inner: Rc<RefCell<FlowNet>>,
}

impl Default for SharedFlowNet {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedFlowNet {
    /// An empty network.
    pub fn new() -> Self {
        SharedFlowNet {
            inner: Rc::new(RefCell::new(FlowNet::new())),
        }
    }

    /// Register a capacity constraint. `bytes_per_sec` must be positive.
    pub fn add_capacity(&self, name: impl Into<String>, bytes_per_sec: f64) -> CapacityId {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "capacity must be positive and finite"
        );
        let mut net = self.inner.borrow_mut();
        net.caps.push(Capacity {
            name: name.into(),
            bytes_per_sec,
            bytes_through: 0.0,
            busy_seconds: 0.0,
        });
        CapacityId(net.caps.len() - 1)
    }

    /// Change a constraint's capacity (used by ablation benches). Takes
    /// effect at the next reallocation.
    pub fn set_capacity(&self, id: CapacityId, bytes_per_sec: f64) {
        assert!(bytes_per_sec > 0.0 && bytes_per_sec.is_finite());
        self.inner.borrow_mut().caps[id.0].bytes_per_sec = bytes_per_sec;
    }

    /// Name of a constraint.
    pub fn capacity_name(&self, id: CapacityId) -> String {
        self.inner.borrow().caps[id.0].name.clone()
    }

    /// Find a constraint by its registered name.
    pub fn find_capacity(&self, name: &str) -> Option<CapacityId> {
        self.inner
            .borrow()
            .caps
            .iter()
            .position(|c| c.name == name)
            .map(CapacityId)
    }

    /// Number of flows currently in flight.
    pub fn active_flows(&self) -> usize {
        self.inner.borrow().flows.len()
    }

    /// Current rate of a flow (bytes/s), if still active.
    pub fn rate_of(&self, id: FlowId) -> Option<f64> {
        self.inner.borrow().flows.get(&id.0).map(|f| f.rate)
    }

    /// Total bytes that have streamed through a constraint so far
    /// (progress is accounted lazily; fully accurate once the simulator
    /// is idle).
    pub fn bytes_through(&self, id: CapacityId) -> u64 {
        self.inner.borrow().caps[id.0].bytes_through.round() as u64
    }

    /// A constraint's *equivalent saturated seconds*: the time it would
    /// have needed at full capacity to move its observed bytes. Divide by
    /// the simulation makespan for average utilization; it equals the
    /// makespan exactly when the constraint is the binding bottleneck.
    pub fn saturated_seconds(&self, id: CapacityId) -> f64 {
        self.inner.borrow().caps[id.0].busy_seconds
    }

    /// Start a flow of `bytes` through `caps`. `on_complete` fires (as a
    /// simulator event) when the last byte arrives. Zero-byte flows
    /// complete immediately.
    pub fn start_flow(
        &self,
        sim: &mut Simulator,
        bytes: u64,
        caps: Vec<CapacityId>,
        on_complete: FlowCallback,
    ) -> FlowId {
        assert!(
            !caps.is_empty(),
            "flow must traverse at least one constraint"
        );
        if bytes == 0 {
            sim.schedule_now(on_complete);
            return FlowId(u64::MAX);
        }
        let id = {
            let mut net = self.inner.borrow_mut();
            net.progress_to(sim.now());
            let id = net.next_flow;
            net.next_flow += 1;
            net.flows.insert(
                id,
                FlowState {
                    remaining: bytes as f64,
                    caps: caps.into_iter().map(|c| c.0).collect(),
                    rate: 0.0,
                    completion: None,
                    on_complete: Some(on_complete),
                },
            );
            id
        };
        self.reallocate(sim);
        FlowId(id)
    }

    /// Progress, recompute rates, and reschedule every completion event.
    fn reallocate(&self, sim: &mut Simulator) {
        let now = sim.now();
        let mut pending: Vec<(u64, SimTime)> = Vec::new();
        {
            let mut net = self.inner.borrow_mut();
            net.progress_to(now);
            net.compute_rates();
            for (&id, f) in net.flows.iter_mut() {
                if let Some(ev) = f.completion.take() {
                    sim.cancel(ev);
                }
                let at = if f.rate > 0.0 {
                    // +1 ns guards against round-to-nearest leaving a
                    // sub-byte residue at the event instant.
                    now + SimDuration::from_secs_f64(f.remaining / f.rate)
                        + SimDuration::from_nanos(1)
                } else {
                    SimTime::MAX
                };
                pending.push((id, at));
            }
        }
        for (id, at) in pending {
            let shared = self.clone();
            let ev = sim.schedule_at(at, Box::new(move |s| shared.finish_flow(s, id)));
            self.inner
                .borrow_mut()
                .flows
                .get_mut(&id)
                .expect("flow still present")
                .completion = Some(ev);
        }
    }

    fn finish_flow(&self, sim: &mut Simulator, id: u64) {
        let cb = {
            let mut net = self.inner.borrow_mut();
            net.progress_to(sim.now());
            let Some(f) = net.flows.get(&id) else {
                return; // already completed via another path
            };
            if f.remaining > DONE_EPS_BYTES {
                // A stale completion (rate dropped since scheduling);
                // reallocate will schedule a fresh one.
                drop(net);
                self.reallocate(sim);
                return;
            }
            let mut f = net.flows.remove(&id).expect("checked above");
            f.on_complete.take()
        };
        self.reallocate(sim);
        if let Some(cb) = cb {
            cb(sim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// One flow through one 100 B/s constraint: 1000 bytes take 10 s.
    #[test]
    fn single_flow_duration() {
        let mut sim = Simulator::without_trace();
        let net = SharedFlowNet::new();
        let cap = net.add_capacity("link", 100.0);
        let done = Rc::new(RefCell::new(None));
        let d2 = done.clone();
        net.start_flow(
            &mut sim,
            1000,
            vec![cap],
            Box::new(move |s| {
                *d2.borrow_mut() = Some(s.now());
            }),
        );
        sim.run_until_idle();
        let t = done.borrow().expect("flow completed");
        let secs = t.as_secs_f64();
        assert!((secs - 10.0).abs() < 1e-6, "took {secs}s");
        assert_eq!(net.active_flows(), 0);
    }

    /// Two equal flows through a shared constraint each get half the
    /// bandwidth: both finish at 2× the solo time.
    #[test]
    fn two_flows_share_fairly() {
        let mut sim = Simulator::without_trace();
        let net = SharedFlowNet::new();
        let bus = net.add_capacity("bus", 100.0);
        let times = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let times = times.clone();
            net.start_flow(
                &mut sim,
                1000,
                vec![bus],
                Box::new(move |s| {
                    times.borrow_mut().push(s.now().as_secs_f64());
                }),
            );
        }
        sim.run_until_idle();
        let times = times.borrow();
        assert_eq!(times.len(), 2);
        for &t in times.iter() {
            assert!((t - 20.0).abs() < 1e-6, "took {t}s");
        }
    }

    /// A departing flow frees bandwidth for the survivor: 1000 B and
    /// 3000 B flows on a 100 B/s bus. Shared phase: both at 50 B/s; the
    /// small one finishes at t=20 having moved 1000; the big one then has
    /// 2000 left at 100 B/s → finishes at t=40.
    #[test]
    fn departure_reallocates() {
        let mut sim = Simulator::without_trace();
        let net = SharedFlowNet::new();
        let bus = net.add_capacity("bus", 100.0);
        let times = Rc::new(RefCell::new(Vec::new()));
        for bytes in [1000u64, 3000] {
            let times = times.clone();
            net.start_flow(
                &mut sim,
                bytes,
                vec![bus],
                Box::new(move |s| {
                    times.borrow_mut().push((bytes, s.now().as_secs_f64()));
                }),
            );
        }
        sim.run_until_idle();
        let times = times.borrow();
        assert_eq!(times[0].0, 1000);
        assert!(
            (times[0].1 - 20.0).abs() < 1e-6,
            "small flow at {}",
            times[0].1
        );
        assert_eq!(times[1].0, 3000);
        assert!(
            (times[1].1 - 40.0).abs() < 1e-6,
            "big flow at {}",
            times[1].1
        );
    }

    /// Late arrival splits the remaining bandwidth.
    #[test]
    fn late_arrival() {
        let mut sim = Simulator::without_trace();
        let net = SharedFlowNet::new();
        let bus = net.add_capacity("bus", 100.0);
        let done = Rc::new(RefCell::new(Vec::new()));
        {
            let done = done.clone();
            net.start_flow(
                &mut sim,
                1000,
                vec![bus],
                Box::new(move |s| {
                    done.borrow_mut().push(("first", s.now().as_secs_f64()));
                }),
            );
        }
        // At t=5 (500 bytes in), a second 500-byte flow arrives.
        let net2 = net.clone();
        let done2 = done.clone();
        sim.schedule_at(
            SimTime::from_secs_f64(5.0),
            Box::new(move |s| {
                let done3 = done2.clone();
                net2.start_flow(
                    s,
                    500,
                    vec![bus],
                    Box::new(move |s2| {
                        done3.borrow_mut().push(("second", s2.now().as_secs_f64()));
                    }),
                );
            }),
        );
        sim.run_until_idle();
        // From t=5: both at 50 B/s. First has 500 left → t=15; second 500 → t=15.
        let done = done.borrow();
        for &(_, t) in done.iter() {
            assert!((t - 15.0).abs() < 1e-6, "finished at {t}");
        }
    }

    /// The paper's topology shape: per-device links under a shared host
    /// bus. Four 12-unit links under a 22-unit bus → each flow gets 5.5.
    #[test]
    fn host_bus_caps_aggregate() {
        let mut sim = Simulator::without_trace();
        let net = SharedFlowNet::new();
        let bus = net.add_capacity("host-bus", 22.0);
        let mut ids = Vec::new();
        for d in 0..4 {
            let link = net.add_capacity(format!("link{d}"), 12.0);
            let id = net.start_flow(&mut sim, 1_000_000, vec![link, bus], Box::new(|_| {}));
            ids.push(id);
        }
        for id in &ids {
            let r = net.rate_of(*id).unwrap();
            assert!((r - 5.5).abs() < 1e-9, "rate {r}");
        }
        sim.run_until_idle();
    }

    /// One flow under the same topology is limited by its own link, not
    /// the bus: rate 12 of 22.
    #[test]
    fn single_flow_limited_by_link() {
        let mut sim = Simulator::without_trace();
        let net = SharedFlowNet::new();
        let bus = net.add_capacity("host-bus", 22.0);
        let link = net.add_capacity("link0", 12.0);
        let id = net.start_flow(&mut sim, 1_000_000, vec![link, bus], Box::new(|_| {}));
        assert!((net.rate_of(id).unwrap() - 12.0).abs() < 1e-9);
        sim.run_until_idle();
    }

    /// Max–min proper: a flow constrained by a slow private link leaves
    /// its unused share to the others (not a plain equal split).
    #[test]
    fn maxmin_redistributes_slack() {
        // Bus 30; flows A (link 5 + bus), B (bus), C (bus).
        // A bottlenecked at 5; B and C share the remaining 25 → 12.5 each.
        let rates = maxmin_rates(&[30.0, 5.0], &[&[0, 1], &[0], &[0]]);
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 12.5).abs() < 1e-9);
        assert!((rates[2] - 12.5).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut sim = Simulator::without_trace();
        let net = SharedFlowNet::new();
        let cap = net.add_capacity("link", 10.0);
        let fired = Rc::new(RefCell::new(false));
        let f2 = fired.clone();
        net.start_flow(
            &mut sim,
            0,
            vec![cap],
            Box::new(move |_| *f2.borrow_mut() = true),
        );
        sim.run_until_idle();
        assert!(*fired.borrow());
    }

    #[test]
    #[should_panic(expected = "at least one constraint")]
    fn empty_caps_rejected() {
        let mut sim = Simulator::without_trace();
        let net = SharedFlowNet::new();
        net.start_flow(&mut sim, 10, vec![], Box::new(|_| {}));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_capacity_rejected() {
        let net = SharedFlowNet::new();
        net.add_capacity("bad", 0.0);
    }

    #[test]
    fn capacity_accounting() {
        let mut sim = Simulator::without_trace();
        let net = SharedFlowNet::new();
        let bus = net.add_capacity("bus", 100.0);
        let l0 = net.add_capacity("l0", 100.0);
        let l1 = net.add_capacity("l1", 100.0);
        net.start_flow(&mut sim, 600, vec![l0, bus], Box::new(|_| {}));
        net.start_flow(&mut sim, 400, vec![l1, bus], Box::new(|_| {}));
        sim.run_until_idle();
        // Every byte of both flows crossed the bus; links saw their own.
        assert_eq!(net.bytes_through(bus), 1000);
        assert_eq!(net.bytes_through(l0), 600);
        assert_eq!(net.bytes_through(l1), 400);
        // The bus was the bottleneck: saturated for the whole makespan
        // (1000 bytes / 100 B/s = 10 s).
        assert!((net.saturated_seconds(bus) - 10.0).abs() < 1e-6);
        assert!((sim.now().as_secs_f64() - 10.0).abs() < 1e-6);
        // The links ran at half speed: 6 s and 4 s of equivalent
        // saturation respectively.
        assert!((net.saturated_seconds(l0) - 6.0).abs() < 1e-6);
        assert!((net.saturated_seconds(l1) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn byte_conservation_many_random_flows() {
        // 50 flows of varying size through random cap subsets; all must
        // complete, and total virtual time must be at least total_bytes /
        // sum_of_bottleneck (sanity lower bound) and finite.
        let mut sim = Simulator::without_trace();
        let net = SharedFlowNet::new();
        let caps: Vec<_> = (0..4)
            .map(|i| net.add_capacity(format!("c{i}"), 50.0 + 10.0 * i as f64))
            .collect();
        let completed = Rc::new(RefCell::new(0usize));
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let bytes = 1 + next() % 10_000;
            let c1 = caps[(next() % 4) as usize];
            let c2 = caps[(next() % 4) as usize];
            let use_caps = if c1 == c2 { vec![c1] } else { vec![c1, c2] };
            let completed = completed.clone();
            net.start_flow(
                &mut sim,
                bytes,
                use_caps,
                Box::new(move |_| {
                    *completed.borrow_mut() += 1;
                }),
            );
        }
        sim.run_until_idle();
        assert_eq!(*completed.borrow(), 50);
        assert_eq!(net.active_flows(), 0);
    }
}
