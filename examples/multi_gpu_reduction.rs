//! Cross-device reduction (the paper's §IX extension) — a dot product
//! spread over four devices, three ways:
//!
//! 1. the *manual* reduction the paper had to write (per-iteration
//!    partials mapped `from`, folded on the host),
//! 2. the `parallel_for_reduce` reduction-clause extension,
//! 3. a `max`-reduction showing other operators.
//!
//! Run with: `cargo run --release --example multi_gpu_reduction`

use target_spread::prelude::*;

const N: usize = 1 << 16;

fn dot_kernel(x: HostArray, y: HostArray, partials: HostArray) -> KernelSpec {
    KernelSpec::new("dot-partials", 3.0, |chunk, v| {
        for i in chunk {
            v.set(2, i, v.get(0, i) * v.get(1, i));
        }
    })
    .arg(KernelArg::read(x, |r| r))
    .arg(KernelArg::read(y, |r| r))
    .arg(KernelArg::write(partials, |r| r))
}

fn main() -> Result<(), RtError> {
    let topo = Topology::ctepower(4);
    let mut rt = Runtime::new(RuntimeConfig::new(topo).with_team_threads(4));
    let x = rt.host_array("x", N);
    let y = rt.host_array("y", N);
    let partials = rt.host_array("partials", N);
    rt.fill_host(x, |i| (i % 100) as f64 / 100.0);
    rt.fill_host(y, |i| ((i * 7) % 100) as f64 / 100.0);
    let expect: f64 = {
        let xs = rt.snapshot_host(x);
        let ys = rt.snapshot_host(y);
        xs.iter().zip(&ys).map(|(a, b)| a * b).sum()
    };

    // 1. Manual reduction (what the paper's Somier centers kernel does).
    let manual = rt.run(|s| {
        TargetSpread::devices([0, 1, 2, 3])
            .with_schedule(SpreadSchedule::static_chunk(N / 16))
            .map(spread_to(x, |c| c.range()))
            .map(spread_to(y, |c| c.range()))
            .map(spread_from(partials, |c| c.range()))
            .parallel_for(s, 0..N, dot_kernel(x, y, partials))?;
        Ok(s.with_host(partials, |p| p.iter().sum::<f64>()))
    })?;
    println!("manual reduction:        {manual:.6}");

    // 2. The reduction-clause extension.
    let clause = rt.run(|s| {
        TargetSpread::devices([0, 1, 2, 3])
            .with_schedule(SpreadSchedule::static_chunk(N / 16))
            .map(spread_to(x, |c| c.range()))
            .map(spread_to(y, |c| c.range()))
            .parallel_for_reduce(s, 0..N, dot_kernel(x, y, partials), partials, ReduceOp::Sum)
    })?;
    println!("reduction clause (Sum):  {clause:.6}");

    // 3. Other operators: the largest per-element product.
    let max = rt.run(|s| {
        TargetSpread::devices([0, 1, 2, 3])
            .with_schedule(SpreadSchedule::static_chunk(N / 16))
            .map(spread_to(x, |c| c.range()))
            .map(spread_to(y, |c| c.range()))
            .parallel_for_reduce(s, 0..N, dot_kernel(x, y, partials), partials, ReduceOp::Max)
    })?;
    println!("reduction clause (Max):  {max:.6}");

    assert!((manual - expect).abs() < 1e-9 * expect.abs());
    assert!((clause - expect).abs() < 1e-9 * expect.abs());
    assert!(max <= 1.0 + 1e-12);
    println!(
        "verified against the host dot product ✓ (virtual time {})",
        rt.elapsed()
    );
    Ok(())
}
