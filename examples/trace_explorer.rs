//! Trace exploration: run a small pipelined workload on 4 devices, then
//! inspect it the way the paper inspects its nsys traces (Figures 3/4):
//! an ASCII Gantt chart, per-lane busy/idle statistics, overlap and
//! interleaving analysis, and a CSV export.
//!
//! Run with: `cargo run --release --example trace_explorer`

use target_spread::prelude::*;
use target_spread::trace::analysis::{interleave_stats, lane_stats, overlap_report};
use target_spread::trace::{render_csv, render_gantt, GanttOptions};

const N: usize = 1 << 18;
const CHUNK: usize = N / 8;

fn main() -> Result<(), RtError> {
    let topo = Topology::ctepower(4);
    let mut rt = Runtime::new(RuntimeConfig::new(topo).with_team_threads(4));
    let a = rt.host_array("A", N);
    rt.fill_host(a, |i| i as f64);

    // Two rounds of map-in → compute → map-out, nowait with chunk-level
    // depends (the Listing 13 style), so the timeline has texture.
    rt.run(|s| {
        s.taskgroup(|s| {
            TargetEnterDataSpread::devices([0, 1, 2, 3])
                .range(0, N)
                .chunk_size(CHUNK)
                .nowait()
                .map(spread_to(a, |c| c.range()))
                .depend_out(a, |c| c.range())
                .launch(s)
                .unwrap();
            for round in 0..2 {
                TargetSpread::devices([0, 1, 2, 3])
                    .with_schedule(SpreadSchedule::static_chunk(CHUNK))
                    .nowait()
                    .map(spread_alloc(a, |c| c.range()))
                    .depend_in(a, |c| c.range())
                    .depend_out(a, |c| c.range())
                    .parallel_for(
                        s,
                        0..N,
                        KernelSpec::new(format!("inc{round}"), 4.0, |chunk, v| {
                            for i in chunk {
                                let x = v.get(0, i);
                                v.set(0, i, x + 1.0);
                            }
                        })
                        .arg(KernelArg::read_write(a, |r| r)),
                    )
                    .unwrap();
            }
            TargetExitDataSpread::devices([0, 1, 2, 3])
                .range(0, N)
                .chunk_size(CHUNK)
                .nowait()
                .map(spread_from(a, |c| c.range()))
                .depend_in(a, |c| c.range())
                .launch(s)
                .unwrap();
        })?;
        Ok(())
    })?;
    assert!(rt
        .snapshot_host(a)
        .iter()
        .enumerate()
        .all(|(i, &v)| v == i as f64 + 2.0));

    let tl = rt.timeline();
    println!("=== Gantt (full run, {} spans) ===", tl.len());
    print!(
        "{}",
        render_gantt(&tl, &GanttOptions::full(&tl).with_width(100))
    );

    println!("\n=== Per-lane busy/idle ===");
    for st in lane_stats(&tl) {
        println!(
            "  {:<10} spans={:<4} busy={:<12} idle={:<12} bytes={}",
            st.lane.header(),
            st.spans,
            st.busy.to_string(),
            st.idle.to_string(),
            st.bytes
        );
    }

    println!("\n=== Overlap and interleaving (the Figure 4 quantities) ===");
    for (o, i) in overlap_report(&tl).iter().zip(interleave_stats(&tl)) {
        println!(
            "  GPU{}: transfers {:.0}% of active time; compute overlap {:.1}%; \
             alternations {}; longest kernel run {}",
            o.device,
            100.0 * o.transfer_fraction(),
            100.0 * o.overlap_fraction(),
            i.alternations,
            i.longest_kernel_run
        );
    }

    let csv = render_csv(&tl, None);
    println!(
        "\n=== CSV export (first 5 rows of {}) ===",
        csv.lines().count() - 1
    );
    for line in csv.lines().take(6) {
        println!("  {line}");
    }
    Ok(())
}
