//! The Somier spring-grid mini-app (the paper's evaluation workload) at
//! a laptop-friendly size: runs the `target` baseline and all three
//! `target spread` implementations, verifies them against the CPU
//! reference, and prints a miniature Table I/II.
//!
//! Run with: `cargo run --release --example somier_mini`

use target_spread::somier::reference::run_reference;
use target_spread::somier::{run_somier, SomierConfig, SomierImpl};

fn main() {
    let cfg = SomierConfig::test_small(48, 3);
    println!(
        "Somier: {}³ grid, {} steps, device memory {:.2} MB (problem/device ≈ {:.1}×)",
        cfg.n,
        cfg.timesteps,
        cfg.device_mem_bytes() as f64 / 1e6,
        cfg.total_bytes() as f64 / cfg.device_mem_bytes() as f64,
    );

    // Baseline: existing target directives, one device.
    let (base, _) = run_somier(&cfg, SomierImpl::OneBufferTarget, 1).expect("baseline");
    let reference = run_reference(&cfg, cfg.buffer_planes(1));
    assert_eq!(base.centers, reference.centers, "baseline is bit-exact");
    println!(
        "\n{:<28} {:>4}  {:>12}  {:>9}",
        "implementation", "GPUs", "time", "speedup"
    );
    println!(
        "{:<28} {:>4}  {:>12}  {:>9}",
        base.label,
        1,
        base.elapsed.to_string(),
        "1.00x"
    );

    // target spread on 1, 2, 4 GPUs (Table I).
    for gpus in [1usize, 2, 4] {
        let (r, _) = run_somier(&cfg, SomierImpl::OneBufferSpread, gpus).expect("spread");
        let ref_g = run_reference(&cfg, cfg.buffer_planes(gpus));
        assert_eq!(r.centers, ref_g.centers, "{gpus}-GPU spread is bit-exact");
        println!(
            "{:<28} {:>4}  {:>12}  {:>8.2}x",
            r.label,
            gpus,
            r.elapsed.to_string(),
            base.elapsed.as_secs_f64() / r.elapsed.as_secs_f64()
        );
    }

    // The buffered strategies (Table II) on 4 GPUs.
    for which in [SomierImpl::TwoBuffers, SomierImpl::DoubleBuffering] {
        let (r, _) = run_somier(&cfg, which, 4).expect("buffered");
        println!(
            "{:<28} {:>4}  {:>12}  {:>8.2}x   ({} halo races flagged)",
            r.label,
            4,
            r.elapsed.to_string(),
            base.elapsed.as_secs_f64() / r.elapsed.as_secs_f64(),
            r.races,
        );
    }
    println!("\nAll implementations verified against the sequential CPU reference.");
}
