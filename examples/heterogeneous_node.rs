//! Heterogeneous devices + weighted spread schedules (the paper's §IX
//! future work: "more static scheduling strategies, for example, one
//! that allows irregular chunk sizes").
//!
//! A node with one fast and one 3×-slower device runs the same stencil
//! three ways: the paper's uniform static round-robin, the weighted
//! static extension (chunks sized 3:1), and the dynamic extension —
//! with coherent weighted *data placement* via `spread_schedule` on the
//! data directives.
//!
//! Run with: `cargo run --release --example heterogeneous_node`

use target_spread::prelude::SpreadSchedule as S;
use target_spread::prelude::*;

const N: usize = 1 << 18;

fn node() -> Runtime {
    let mut fast = DeviceSpec::v100().with_mem_bytes(1 << 25);
    fast.compute.max_parallelism = 1;
    let mut slow = fast.clone();
    slow.compute.time_scale = 3.0; // 3× slower kernels
    let mut topo = Topology::uniform(2, fast, 2e9, 3.5e9);
    topo.devices[1] = slow;
    Runtime::new(RuntimeConfig::new(topo).with_team_threads(4))
}

fn run(label: &str, schedule: S) -> f64 {
    let mut rt = node();
    let a = rt.host_array("A", N);
    rt.fill_host(a, |i| (i % 1000) as f64);
    let expect: Vec<f64> = rt.snapshot_host(a).iter().map(|x| x * 2.0 + 1.0).collect();

    rt.run(|s| {
        // Weighted/static data placement matching the execution schedule
        // (dynamic execution moves its own data per chunk instead).
        match &schedule {
            S::Dynamic { .. } => {
                TargetSpread::devices([0, 1])
                    .with_schedule(schedule.clone())
                    .map(spread_tofrom(a, |c| c.range()))
                    .parallel_for(s, 0..N, kernel(a))?;
            }
            placed => {
                TargetEnterDataSpread::devices([0, 1])
                    .range(0, N)
                    .with_schedule(placed.clone())
                    .map(spread_to(a, |c| c.range()))
                    .launch(s)?;
                TargetSpread::devices([0, 1])
                    .with_schedule(placed.clone())
                    .map(spread_to(a, |c| c.range()))
                    .parallel_for(s, 0..N, kernel(a))?;
                TargetExitDataSpread::devices([0, 1])
                    .range(0, N)
                    .with_schedule(placed.clone())
                    .map(spread_from(a, |c| c.range()))
                    .launch(s)?;
            }
        }
        Ok(())
    })
    .expect("run");
    assert_eq!(rt.snapshot_host(a), expect, "{label}: wrong results");
    let t = rt.elapsed().as_secs_f64();
    println!("{label:<42} {t:>9.4}s");
    t
}

fn kernel(a: HostArray) -> KernelSpec {
    KernelSpec::new("affine", 9.0, |chunk, v| {
        for i in chunk {
            let x = v.get(0, i);
            v.set(0, i, 2.0 * x + 1.0);
        }
    })
    .arg(KernelArg::read_write(a, |r| r))
}

fn main() {
    println!("stencil over a fast + 3x-slower device pair ({N} elements):\n");
    let uniform = run(
        "static round-robin, uniform chunks (paper)",
        S::static_chunk(N / 8),
    );
    let weighted = run(
        "static weighted 3:1 chunks (extension)",
        S::StaticWeighted {
            round: N,
            weights: vec![3.0, 1.0],
        },
    );
    let dynamic = run("dynamic claim (extension)", S::dynamic(N / 16));
    println!(
        "\nweighted is {:.2}x and dynamic {:.2}x faster than uniform round-robin",
        uniform / weighted,
        uniform / dynamic
    );
    assert!(weighted < uniform, "weighting must help under imbalance");
}
