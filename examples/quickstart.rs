//! Quickstart: the paper's Listing 3/4 as a running program.
//!
//! A 3-point stencil `B[i] = A[i-1] + A[i] + A[i+1]` is spread over
//! three simulated GPUs with `devices(2,0,1)` and
//! `spread_schedule(static, 4)`, using halo maps written with the
//! `omp_spread_start`/`omp_spread_size` placeholders.
//!
//! Run with: `cargo run --release --example quickstart`

use target_spread::prelude::*;

fn main() -> Result<(), RtError> {
    // A simulated node with 3 V100-class devices.
    let topo = Topology::ctepower(3);
    let mut rt = Runtime::new(RuntimeConfig::new(topo).with_team_threads(4));

    // Host arrays (the runtime owns the storage; handles are cheap).
    let n = 14; // the paper's walk-through size
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);

    // #pragma omp target spread teams distribute parallel for \
    //   devices(2,0,1) spread_schedule(static, 4) num_teams(2) \
    //   map(to:   A[omp_spread_start-1 : omp_spread_size+2]) \
    //   map(from: B[omp_spread_start   : omp_spread_size  ])
    // for (int i = 1; i < N-1; i++) B[i] = A[i-1] + A[i] + A[i+1];
    rt.run(|s| {
        TargetSpread::devices([2, 0, 1])
            .with_schedule(SpreadSchedule::static_chunk(4))
            .num_teams(2)
            .map(spread_to(a, |c| c.start() - 1..c.end() + 1))
            .map(spread_from(b, |c| c.range()))
            .parallel_for(
                s,
                1..n - 1,
                KernelSpec::new("stencil", 2.0, |chunk, v| {
                    for i in chunk {
                        let sum = v.get(0, i - 1) + v.get(0, i) + v.get(0, i + 1);
                        v.set(1, i, sum);
                    }
                })
                .arg(KernelArg::read(a, |r| r.start - 1..r.end + 1))
                .arg(KernelArg::write(b, |r| r)),
            )?;
        Ok(())
    })?;

    // The distribution (paper §III-B.1): iterations 1-4 → device 2,
    // 5-8 → device 0, 9-12 → device 1.
    println!("B = {:?}", rt.snapshot_host(b));
    println!("virtual execution time: {}", rt.elapsed());
    for i in 1..n - 1 {
        let expect = (3 * i) as f64;
        assert_eq!(rt.snapshot_host(b)[i], expect);
    }
    println!("stencil verified on all {} interior elements ✓", n - 2);
    Ok(())
}
