//! # target-spread
//!
//! A Rust reproduction of *"A Novel Set of Directives for Multi-device
//! Programming with OpenMP"* (Torres, Ferrer, Teruel — IPPS 2022): the
//! **`target spread`** directive set for distributing data and workload
//! across multiple accelerator devices, implemented on top of a
//! deterministic discrete-event simulation of a multi-GPU node.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`trace`] — span recording, timeline analysis, Gantt/CSV rendering
//!   (the reproduction's `nsys`).
//! * [`sim`] — the discrete-event engine with processor-sharing links and
//!   a max–min fair shared host bus.
//! * [`devices`] — simulated accelerators: memory pools, DMA engines,
//!   kernel cost models, node topologies (including the CTE-POWER preset
//!   used in the paper's evaluation).
//! * [`teams`] — the intra-device `teams distribute parallel for` level: a
//!   work-sharing thread-team executor.
//! * [`rt`] — the OpenMP-like offloading runtime: presence tables, array
//!   sections, task graph with `depend`, and the baseline single-device
//!   `target` directive set.
//! * [`core`] — **the paper's contribution**: `target spread`,
//!   `target data spread`, `target enter/exit data spread`,
//!   `target update spread`, spread schedules and placeholders.
//! * [`somier`] — the Somier spring-grid mini-app and its One Buffer /
//!   Two Buffers / Double Buffering implementations.
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use spread_core as core;
pub use spread_devices as devices;
pub use spread_rt as rt;
pub use spread_sim as sim;
pub use spread_somier as somier;
pub use spread_teams as teams;
pub use spread_trace as trace;

/// Convenience prelude importing the types most programs need: the
/// spread directive builders and clauses ([`core::prelude`]), the
/// runtime/kernel surface ([`rt::prelude`]), machine description
/// ([`devices::Topology`], [`devices::DeviceSpec`]), virtual time, and
/// the per-construct adaptive profiles. Every example in `examples/`
/// starts from this single import.
pub mod prelude {
    pub use spread_core::prelude::*;
    pub use spread_devices::{DeviceSpec, Topology};
    pub use spread_rt::prelude::*;
    pub use spread_trace::{ConstructProfile, DeviceProfile, SimDuration, SimTime};
}
