//! Cross-crate determinism: the whole stack is a deterministic DES, so
//! identical programs must produce identical virtual histories —
//! timings, traces, task orders, results — run after run.

use target_spread::core::prelude::*;
use target_spread::devices::Topology;
use target_spread::rt::kernel::KernelArg;
use target_spread::rt::prelude::*;
use target_spread::sim::TieBreak;
use target_spread::somier::{run_somier, SomierConfig, SomierImpl};

/// A non-trivial pipelined program; returns a full fingerprint of the
/// run: elapsed, result checksum, and the ordered trace signature.
fn fingerprint_with(tie: TieBreak) -> (u64, f64, Vec<(String, u64, u64)>) {
    let mut rt = Runtime::new(
        RuntimeConfig::new(Topology::ctepower(4))
            .with_team_threads(3)
            .with_tie_break(tie),
    );
    let n = 1 << 14;
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| ((i * 31) % 911) as f64);
    rt.run(|s| {
        s.taskgroup(|s| {
            TargetEnterDataSpread::devices([3, 1, 2, 0])
                .range(0, n)
                .chunk_size(n / 16)
                .nowait()
                .map(spread_to(a, |c| c.range()))
                .depend_out(a, |c| c.range())
                .launch(s)
                .unwrap();
            for round in 0..3 {
                TargetSpread::devices([3, 1, 2, 0])
                    .with_schedule(SpreadSchedule::static_chunk(n / 16))
                    .nowait()
                    .map(spread_alloc(a, |c| c.range()))
                    .map(spread_tofrom(b, |c| c.range()))
                    .depend_in(a, |c| c.range())
                    .depend_out(a, |c| c.range())
                    .parallel_for(
                        s,
                        0..n,
                        KernelSpec::new(format!("r{round}"), 3.0, |chunk, v| {
                            for i in chunk {
                                let x = v.get(0, i);
                                v.set(1, i, v.get(1, i) + x * 0.5);
                            }
                        })
                        .arg(KernelArg::read_write(a, |r| r))
                        .arg(KernelArg::read_write(b, |r| r)),
                    )
                    .unwrap();
            }
            TargetExitDataSpread::devices([3, 1, 2, 0])
                .range(0, n)
                .chunk_size(n / 16)
                .nowait()
                .map(spread_from(a, |c| c.range()))
                .depend_in(a, |c| c.range())
                .launch(s)
                .unwrap();
        })?;
        Ok(())
    })
    .unwrap();
    let checksum: f64 = rt.snapshot_host(b).iter().sum();
    let trace: Vec<(String, u64, u64)> = rt
        .timeline()
        .spans()
        .iter()
        .map(|s| (s.label.clone(), s.start.as_nanos(), s.end.as_nanos()))
        .collect();
    (rt.elapsed().as_nanos(), checksum, trace)
}

#[test]
fn pipelined_program_is_fully_deterministic() {
    let (t1, c1, tr1) = fingerprint_with(TieBreak::Fifo);
    let (t2, c2, tr2) = fingerprint_with(TieBreak::Fifo);
    assert_eq!(t1, t2, "virtual time");
    assert_eq!(c1, c2, "results");
    assert_eq!(tr1.len(), tr2.len(), "span count");
    assert_eq!(tr1, tr2, "full trace history");
    assert!(!tr1.is_empty());
}

/// Seeded tie-break policies are just as deterministic as FIFO: two
/// runs with the same seed must produce byte-identical Timeline span
/// sequences (labels *and* timestamps).
#[test]
fn seeded_tie_break_reproduces_the_exact_timeline() {
    for seed in [1u64, 42, 0xFEED_FACE] {
        let (t1, c1, tr1) = fingerprint_with(TieBreak::Seeded(seed));
        let (t2, c2, tr2) = fingerprint_with(TieBreak::Seeded(seed));
        assert_eq!(t1, t2, "seed {seed}: virtual time");
        assert_eq!(c1, c2, "seed {seed}: results");
        assert_eq!(tr1, tr2, "seed {seed}: full trace history");
        assert!(!tr1.is_empty());
    }
}

/// Different tie-break seeds may permute same-instant events, but the
/// program's *results* (and total virtual time: same work, same
/// resources) must not change — only the event ordering may.
#[test]
fn tie_break_seed_never_changes_the_results() {
    let (_, c0, _) = fingerprint_with(TieBreak::Fifo);
    for seed in [1u64, 2, 3, 99] {
        let (_, c, _) = fingerprint_with(TieBreak::Seeded(seed));
        assert_eq!(c0.to_bits(), c.to_bits(), "seed {seed} changed the result");
    }
}

/// Somier is deterministic for every implementation, including the
/// pipelined ones (concurrent halves resolve identically in virtual
/// time) — and independent of the host team size (real threads never
/// influence the virtual schedule).
#[test]
fn somier_deterministic_across_team_sizes() {
    for which in [
        SomierImpl::OneBufferSpread,
        SomierImpl::TwoBuffers,
        SomierImpl::DoubleBuffering,
    ] {
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            let mut cfg = SomierConfig::test_small(100, 1);
            cfg.team_threads = threads;
            let (r, _) = run_somier(&cfg, which, 2).unwrap();
            runs.push((r.elapsed, r.centers, r.transfer_ops));
        }
        assert_eq!(runs[0], runs[1], "{which:?}: team size changed the run");
    }
}

/// Host-task `depend` ordering is honoured and deterministic.
#[test]
fn host_task_depend_orders_siblings() {
    let mut rt = Runtime::new(RuntimeConfig::new(Topology::ctepower(1)));
    let a = rt.host_array("A", 4);
    let log: std::rc::Rc<std::cell::RefCell<Vec<u32>>> = Default::default();
    rt.run(|s| {
        let sec = a.full();
        for i in 0..4u32 {
            let log = log.clone();
            // Each task has an inout dependence on A: strict chain.
            s.task_depend(format!("t{i}"), vec![sec], vec![sec], move |_| {
                log.borrow_mut().push(i);
            });
        }
        Ok(())
    })
    .unwrap();
    assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
}
