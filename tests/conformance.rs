//! Tier-1 conformance: the model-based harness in `spread-check` run at
//! a small in-tree budget (CI runs the full 200 × 4 budget via the
//! `fuzz` binary). Every generated program must agree with the
//! sequential oracle under several deterministic interleavings, the
//! harness must *catch* injected semantic faults, and shrinking must be
//! deterministic.

use spread_check::{
    ast::{FaultMode, FaultSpec, KernelOp, PressureSpec, Program, Sched, Stmt},
    check_program, check_seed, fuzz, gen, oracle, pretty, shrink_seed, CheckConfig, Fault,
};
use spread_core::PressurePolicy;
use spread_rt::RtError;

#[test]
fn fuzz_small_budget_agrees_with_oracle() {
    let cfg = CheckConfig {
        interleavings: 3,
        ..CheckConfig::default()
    };
    let report = fuzz(0xC0FFEE, 40, &cfg, |_, _| {});
    assert_eq!(report.programs, 40);
    assert_eq!(report.executions, 120);
    let seeds: Vec<u64> = report.failures.iter().map(|f| f.seed).collect();
    assert!(seeds.is_empty(), "failing seeds: {seeds:?}");
}

#[test]
fn fuzz_with_fault_plans_agrees_with_oracle() {
    // Every generated fault plan — dead-on-arrival devices under both
    // fail-stop and redistribute, transient copy bursts — must land on
    // the oracle's prediction under every interleaving.
    let cfg = CheckConfig {
        interleavings: 2,
        faults: true,
        ..CheckConfig::default()
    };
    let report = fuzz(0xFA17, 30, &cfg, |_, _| {});
    assert_eq!(report.programs, 30);
    let seeds: Vec<u64> = report.failures.iter().map(|f| f.seed).collect();
    assert!(seeds.is_empty(), "failing seeds: {seeds:?}");
}

/// A handcrafted program where the injected faults are observable, so a
/// perturbed oracle must disagree with the (correct) runtime — proving
/// the harness actually detects semantic divergence.
fn fault_sensitive_program() -> Program {
    Program {
        n_devices: 2,
        n: 16,
        n_arrays: 4,
        phases: vec![vec![
            Stmt::Spread {
                devices: vec![0, 1],
                sched: Sched::Static { chunk: 4 },
                nowait: false,
                op: KernelOp::Stencil3 { src: 0, dst: 1 },
            },
            Stmt::Reduce {
                devices: vec![1, 0],
                sched: Sched::Static { chunk: 5 },
                a: 2,
                partials: 3,
                alpha: 2.0,
                op: spread_core::reduction::ReduceOp::Sum,
            },
        ]],
        fault: None,
        pressure: None,
        straggler: None,
        integrity: None,
        overlap: None,
    }
}

#[test]
fn injected_faults_are_caught() {
    let p = fault_sensitive_program();
    let clean = CheckConfig {
        interleavings: 2,
        ..CheckConfig::default()
    };
    check_program(&p, 7, &clean).expect("program is legal and conformant");
    for fault in [Fault::StencilDropsLeftHalo, Fault::ReduceSkipsLast] {
        let cfg = CheckConfig {
            interleavings: 2,
            fault: Some(fault),
            ..CheckConfig::default()
        };
        let failure = check_program(&p, 7, &cfg)
            .expect_err("perturbed oracle must disagree with the runtime");
        assert!(!failure.detail.is_empty(), "{fault:?}");
    }
}

/// A resilient program whose lost device owns real chunks: the runtime
/// recovers them bit-identically, and the `--inject recovery` canary —
/// an oracle that pretends recovery dropped those chunks — must be
/// caught. This is the proof that a runtime which silently lost work
/// during redistribution would not slip past the harness.
#[test]
fn recovery_canary_is_caught() {
    let p = Program {
        n_devices: 2,
        n: 16,
        n_arrays: 2,
        phases: vec![vec![Stmt::Spread {
            devices: vec![0, 1],
            sched: Sched::Static { chunk: 4 },
            nowait: false,
            op: KernelOp::AddConst { a: 0, c: 1.0 },
        }]],
        fault: Some(FaultSpec {
            lost: Some(1),
            mode: FaultMode::Resilient,
            transients: vec![],
        }),
        pressure: None,
        straggler: None,
        integrity: None,
        overlap: None,
    };
    let clean = CheckConfig {
        interleavings: 2,
        ..CheckConfig::default()
    };
    check_program(&p, 11, &clean).expect("recovery reproduces the fault-free state");
    let canary = CheckConfig {
        interleavings: 2,
        fault: Some(Fault::RecoveryDropsLostChunk),
        ..CheckConfig::default()
    };
    let failure =
        check_program(&p, 11, &canary).expect_err("a recovery that dropped chunks must be flagged");
    assert!(
        failure.detail.contains("array"),
        "divergence shows in host arrays: {failure}"
    );
}

#[test]
fn fail_stop_loss_is_predicted_and_matched() {
    let mut p = Program {
        n_devices: 2,
        n: 16,
        n_arrays: 2,
        phases: vec![vec![Stmt::Spread {
            devices: vec![0, 1],
            sched: Sched::Static { chunk: 4 },
            nowait: false,
            op: KernelOp::Scale { a: 1, c: 2.0 },
        }]],
        fault: Some(FaultSpec {
            lost: Some(0),
            mode: FaultMode::FailStop,
            transients: vec![],
        }),
        pressure: None,
        straggler: None,
        integrity: None,
        overlap: None,
    };
    let want = oracle::predict(&p, None);
    assert!(
        matches!(want.error, Some(RtError::DeviceLost { device: 0, .. })),
        "oracle said {:?}",
        want.error
    );
    check_program(&p, 5, &CheckConfig::default())
        .expect("runtime raises the predicted DeviceLost under every interleaving");

    // Transient copy bursts alone are absorbed by retry + backoff: the
    // program completes with unchanged results.
    p.fault = Some(FaultSpec {
        lost: None,
        mode: FaultMode::FailStop,
        transients: vec![(0, 2), (1, 3)],
    });
    check_program(&p, 5, &CheckConfig::default())
        .expect("retried transients are invisible in the final state");
}

#[test]
fn fuzz_with_pressure_agrees_with_oracle() {
    // Memory-pressure programs — tiny device caps plus sustained OOM
    // windows — must degrade exactly as the oracle's admission plan
    // predicts, under every interleaving.
    let cfg = CheckConfig {
        interleavings: 2,
        pressure: true,
        ..CheckConfig::default()
    };
    let report = fuzz(0x9E55, 30, &cfg, |_, _| {});
    assert_eq!(report.programs, 30);
    let seeds: Vec<u64> = report.failures.iter().map(|f| f.seed).collect();
    assert!(seeds.is_empty(), "failing seeds: {seeds:?}");
}

/// A pressure program whose only chunk fits no device: the runtime must
/// stream it through the host staging buffer, and the `--inject spill`
/// canary — a runtime ordered to drop the last spill slice's writes —
/// must be caught as value divergence. This is the proof that a runtime
/// which silently truncated a spill would not slip past the harness.
#[test]
fn spill_canary_is_caught() {
    let p = Program {
        n_devices: 1,
        n: 12,
        n_arrays: 1,
        phases: vec![vec![Stmt::Spread {
            devices: vec![0],
            sched: Sched::Static { chunk: 12 },
            nowait: false,
            op: KernelOp::AddConst { a: 0, c: 1.5 },
        }]],
        fault: None,
        // Sustained pressure equal to the cap: zero headroom, the whole
        // 96-byte chunk is hopeless on-device and spills.
        straggler: None,
        integrity: None,
        overlap: None,
        pressure: Some(PressureSpec {
            policy: PressurePolicy::Spill,
            cap_bytes: 64,
            sustained: vec![(0, 64)],
        }),
    };
    let clean = CheckConfig {
        interleavings: 2,
        pressure: true,
        ..CheckConfig::default()
    };
    check_program(&p, 17, &clean).expect("the spilled run matches the oracle bit-for-bit");
    let canary = CheckConfig {
        interleavings: 2,
        fault: Some(Fault::SpillDropsSlice),
        pressure: true,
        ..CheckConfig::default()
    };
    let failure = check_program(&p, 17, &canary)
        .expect_err("a spill that truncated its last slice must be flagged");
    assert!(
        failure.detail.contains("array"),
        "divergence shows in host arrays: {failure}"
    );
}

#[test]
fn fuzz_with_peer_agrees_with_oracle() {
    // Halo-exchange programs checked differentially: host-forced runs
    // (zero peer copies) and one exchange(auto) run that must match the
    // same oracle bits while performing exactly the closed-form D2D
    // route set.
    let cfg = CheckConfig {
        interleavings: 2,
        peer: true,
        ..CheckConfig::default()
    };
    let report = fuzz(0xD2D, 30, &cfg, |_, _| {});
    assert_eq!(report.programs, 30);
    let seeds: Vec<u64> = report.failures.iter().map(|f| f.seed).collect();
    assert!(seeds.is_empty(), "failing seeds: {seeds:?}");
}

/// A handcrafted three-device halo exchange whose `exchange(auto)` run
/// must route all four one-element halos device-to-device, and the
/// `--inject peer` canary — a runtime ordered to corrupt the first peer
/// copy it completes — must be caught as value divergence *only* on the
/// auto run (the host-forced runs never reach the corruption). This is
/// the proof that a runtime whose peer DMA silently delivered wrong
/// bytes would not slip past the harness.
#[test]
fn peer_canary_is_caught() {
    let p = Program {
        n_devices: 3,
        n: 12,
        n_arrays: 2,
        phases: vec![vec![Stmt::Halo {
            devices: vec![0, 1, 2],
            chunk: 4,
            a: 0,
            dst: 1,
            bump: None,
        }]],
        fault: None,
        pressure: None,
        straggler: None,
        integrity: None,
        overlap: None,
    };
    // Chunks [0,4) d0 / [4,8) d1 / [8,12) d2 ⇒ four one-element halos,
    // each valid on exactly one sibling.
    assert_eq!(
        oracle::predict_peer_copies(&p),
        vec![
            (0, 1, 0, 3, 1),
            (1, 0, 0, 4, 1),
            (1, 2, 0, 7, 1),
            (2, 1, 0, 8, 1),
        ]
    );
    let clean = CheckConfig {
        interleavings: 2,
        peer: true,
        ..CheckConfig::default()
    };
    check_program(&p, 23, &clean).expect("the peer-routed run matches the oracle bit-for-bit");
    let canary = CheckConfig {
        interleavings: 2,
        fault: Some(Fault::PeerCorrupt),
        peer: true,
        ..CheckConfig::default()
    };
    let failure = check_program(&p, 23, &canary)
        .expect_err("a corrupted peer copy must be flagged on the auto run");
    assert!(
        failure.detail.contains("array"),
        "divergence shows in host arrays: {failure}"
    );
    assert!(
        failure.detail.contains("exchange(auto)"),
        "only the peer-routed run diverges: {failure}"
    );
}

#[test]
fn shrinking_is_deterministic_and_minimal() {
    // Find a generated seed whose program contains a stencil, so the
    // injected stencil fault fires.
    let cfg = CheckConfig {
        interleavings: 2,
        fault: Some(Fault::StencilDropsLeftHalo),
        ..CheckConfig::default()
    };
    let seed = (0..500u64)
        .find(|&s| check_seed(s, &cfg).is_err())
        .expect("some seed within 500 trips the injected fault");
    let (m1, f1) = shrink_seed(seed, &cfg).unwrap();
    let (m2, f2) = shrink_seed(seed, &cfg).unwrap();
    assert_eq!(pretty::listing(&m1), pretty::listing(&m2));
    assert_eq!(f1.detail, f2.detail);
    // Minimal: a single phase with a single statement.
    assert_eq!(m1.phases.len(), 1, "{}", pretty::listing(&m1));
    assert_eq!(m1.phases[0].len(), 1, "{}", pretty::listing(&m1));
}

#[test]
fn oracle_predicts_exact_mapping_errors() {
    // Extending a live mapping [2,8) with the overlapping [6,10) is the
    // paper's forbidden "array extension" — exact error fields predicted.
    let extension = Program {
        n_devices: 1,
        n: 12,
        n_arrays: 1,
        phases: vec![vec![
            Stmt::RawEnter {
                device: 0,
                a: 0,
                start: 2,
                len: 6,
            },
            Stmt::RawEnter {
                device: 0,
                a: 0,
                start: 6,
                len: 4,
            },
        ]],
        fault: None,
        pressure: None,
        straggler: None,
        integrity: None,
        overlap: None,
    };
    let want = oracle::predict(&extension, None);
    match &want.error {
        Some(RtError::OverlapExtension {
            device,
            requested,
            present,
        }) => {
            assert_eq!(*device, 0);
            assert_eq!((requested.start, requested.len), (6, 4));
            assert_eq!((present.start, present.len), (2, 6));
        }
        other => panic!("expected OverlapExtension, oracle said {other:?}"),
    }
    check_program(&extension, 3, &CheckConfig::default())
        .expect("runtime raises exactly the predicted error");

    // Updating a section that was never mapped is NotMapped.
    let not_mapped = Program {
        n_devices: 2,
        n: 12,
        n_arrays: 1,
        phases: vec![vec![Stmt::RawUpdate {
            device: 1,
            a: 0,
            start: 3,
            len: 4,
            from: true,
        }]],
        fault: None,
        pressure: None,
        straggler: None,
        integrity: None,
        overlap: None,
    };
    let want = oracle::predict(&not_mapped, None);
    assert!(
        matches!(
            &want.error,
            Some(RtError::NotMapped { device: 1, requested })
                if requested.start == 3 && requested.len == 4
        ),
        "oracle said {:?}",
        want.error
    );
    check_program(&not_mapped, 3, &CheckConfig::default())
        .expect("runtime raises exactly the predicted error");
}

#[test]
fn replay_seed_regenerates_the_same_program() {
    for seed in [0u64, 1, 99, 0xDEAD] {
        let a = pretty::listing(&gen::gen_program(seed));
        let b = pretty::listing(&gen::gen_program(seed));
        assert_eq!(a, b);
        assert!(a.contains("#pragma omp"));
    }
}
