//! The paper's listings, executable end to end through the umbrella
//! crate — one test per listing that defines observable behaviour.
#![allow(clippy::needless_range_loop)]

use target_spread::core::prelude::*;
use target_spread::devices::{DeviceSpec, Topology};
use target_spread::rt::kernel::KernelArg;
use target_spread::rt::prelude::*;

fn rt(n_dev: usize) -> Runtime {
    let topo = Topology::uniform(
        n_dev,
        DeviceSpec::v100().with_mem_bytes(1 << 22),
        1e9,
        1.6e9,
    );
    Runtime::new(RuntimeConfig::new(topo).with_team_threads(2))
}

fn stencil(a: HostArray, b: HostArray) -> KernelSpec {
    KernelSpec::new("stencil", 2.0, |chunk, v| {
        for i in chunk {
            let s = v.get(0, i - 1) + v.get(0, i) + v.get(0, i + 1);
            v.set(1, i, s);
        }
    })
    .arg(KernelArg::read(a, |r| r.start - 1..r.end + 1))
    .arg(KernelArg::write(b, |r| r))
}

/// Listing 1/2: single-device `target` with the combined directive.
#[test]
fn listing_1_2_target_combined() {
    let mut rt = rt(1);
    let n = 100;
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| 1.0 + i as f64);
    rt.run(|s| {
        Target::device(0)
            .num_teams(2)
            .map(to(a, 0..n))
            .map(from(b, 1..n - 1))
            .parallel_for(s, 1..n - 1, stencil(a, b))?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(b);
    for i in 1..n - 1 {
        assert_eq!(out[i], (3 * (i + 1)) as f64);
    }
}

/// Listing 3: standalone `target spread` — serial per-chunk loop.
#[test]
fn listing_3_target_spread_standalone() {
    let mut rt = rt(3);
    let n = 14;
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        TargetSpread::devices([2, 0, 1])
            .with_schedule(SpreadSchedule::static_chunk(4))
            .serial()
            .map(spread_to(a, |c| c.start() - 1..c.end() + 1))
            .map(spread_from(b, |c| c.range()))
            .parallel_for(s, 1..n - 1, stencil(a, b))?;
        Ok(())
    })
    .unwrap();
    for i in 1..n - 1 {
        assert_eq!(rt.snapshot_host(b)[i], (3 * i) as f64);
    }
}

/// Listing 4: the combined spread directive with per-device teams.
#[test]
fn listing_4_combined_spread() {
    let mut rt = rt(3);
    let n = 200;
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| (i * i % 97) as f64);
    let expect: Vec<f64> = {
        let av = rt.snapshot_host(a);
        (0..n)
            .map(|i| {
                if i == 0 || i == n - 1 {
                    0.0
                } else {
                    av[i - 1] + av[i] + av[i + 1]
                }
            })
            .collect()
    };
    rt.run(|s| {
        TargetSpread::devices([2, 0, 1])
            .with_schedule(SpreadSchedule::static_chunk(17))
            .num_teams(2)
            .num_threads(64)
            .map(spread_to(a, move |c| {
                c.start().saturating_sub(1)..(c.end() + 1).min(n)
            }))
            .map(spread_from(b, |c| c.range()))
            .parallel_for(
                s,
                1..n - 1,
                KernelSpec::new("stencil", 2.0, |chunk, v| {
                    for i in chunk {
                        let s = v.get(0, i - 1) + v.get(0, i) + v.get(0, i + 1);
                        v.set(1, i, s);
                    }
                })
                .arg(KernelArg::read(a, move |r| {
                    r.start.saturating_sub(1)..(r.end + 1).min(n)
                }))
                .arg(KernelArg::write(b, |r| r)),
            )?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(b);
    for i in 1..n - 1 {
        assert_eq!(out[i], expect[i], "B[{i}]");
    }
}

/// Listing 5: `target data spread` structured region.
#[test]
fn listing_5_target_data_spread() {
    let mut rt = rt(3);
    let n = 120;
    let a = rt.host_array("A", n + 2);
    let b = rt.host_array("B", n + 2);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        TargetDataSpread::devices([2, 0, 1])
            .range(1, n)
            .chunk_size(4)
            .map(spread_tofrom(a, |c| c.halo(1, 1)))
            .map(spread_tofrom(b, |c| c.range()))
            .region(s, |s| {
                TargetSpread::devices([2, 0, 1])
                    .with_schedule(SpreadSchedule::static_chunk(4))
                    .map(spread_to(a, |c| c.halo(1, 1)))
                    .map(spread_to(b, |c| c.range()))
                    .parallel_for(s, 1..n + 1, stencil(a, b))?;
                Ok(())
            })
    })
    .unwrap();
    for i in 1..n + 1 {
        assert_eq!(rt.snapshot_host(b)[i], (3 * i) as f64);
    }
    assert_eq!(rt.device_mem_used(0), 0);
}

/// Listing 6: `target enter/exit data spread` roundtrip with `nowait`.
#[test]
fn listing_6_enter_exit_data_spread() {
    let mut rt = rt(3);
    let n = 60;
    let a = rt.host_array("A", n + 2);
    let b = rt.host_array("B", n + 2);
    rt.fill_host(a, |i| 2.0 * i as f64);
    rt.run(|s| {
        s.taskgroup(|s| {
            TargetEnterDataSpread::devices([2, 0, 1])
                .range(1, n)
                .chunk_size(4)
                .nowait()
                .map(spread_to(a, |c| c.halo(1, 1)))
                .map(spread_to(b, |c| c.range()))
                .launch(s)
                .unwrap();
        })?;
        TargetSpread::devices([2, 0, 1])
            .with_schedule(SpreadSchedule::static_chunk(4))
            .map(spread_to(a, |c| c.halo(1, 1)))
            .map(spread_to(b, |c| c.range()))
            .parallel_for(s, 1..n + 1, stencil(a, b))?;
        s.taskgroup(|s| {
            TargetExitDataSpread::devices([2, 0, 1])
                .range(1, n)
                .chunk_size(4)
                .nowait()
                .map(spread_from(a, |c| c.range()))
                .map(spread_from(b, |c| c.range()))
                .launch(s)
                .unwrap();
        })?;
        Ok(())
    })
    .unwrap();
    for i in 1..n + 1 {
        assert_eq!(rt.snapshot_host(b)[i], (6 * i) as f64);
    }
}

/// Listing 7: `target update spread` both directions.
#[test]
fn listing_7_update_spread() {
    let mut rt = rt(3);
    let n = 36;
    let a = rt.host_array("A", n);
    rt.run(|s| {
        TargetEnterDataSpread::devices([0, 1, 2])
            .range(0, n)
            .chunk_size(3)
            .map(spread_to(a, |c| c.range()))
            .launch(s)?;
        s.fill_host(a, |i| 100.0 + i as f64);
        TargetUpdateSpread::devices([0, 1, 2])
            .range(0, n)
            .chunk_size(3)
            .to(a, |c| c.range())
            .launch(s)?;
        TargetSpread::devices([0, 1, 2])
            .with_schedule(SpreadSchedule::static_chunk(3))
            .map(spread_alloc(a, |c| c.range()))
            .parallel_for(
                s,
                0..n,
                KernelSpec::new("neg", 1.0, |chunk, v| {
                    for i in chunk {
                        let x = v.get(0, i);
                        v.set(0, i, -x);
                    }
                })
                .arg(KernelArg::read_write(a, |r| r)),
            )?;
        s.fill_host(a, |_| 0.0);
        TargetUpdateSpread::devices([0, 1, 2])
            .range(0, n)
            .chunk_size(3)
            .from(a, |c| c.range())
            .launch(s)?;
        Ok(())
    })
    .unwrap();
    for i in 0..n {
        assert_eq!(rt.snapshot_host(a)[i], -(100.0 + i as f64));
    }
}

/// Listing 8: different device lists and chunkings per data directive.
#[test]
fn listing_8_independent_device_lists() {
    let mut rt = rt(4);
    let a = rt.host_array("A", 100);
    let b = rt.host_array("B", 400);
    rt.run(|s| {
        s.taskgroup(|s| {
            TargetEnterDataSpread::devices([2, 0])
                .range(1, 60)
                .chunk_size(4)
                .nowait()
                .map(spread_to(a, |c| c.halo(1, 1)))
                .launch(s)
                .unwrap();
            TargetEnterDataSpread::devices([1, 3])
                .range(100, 200)
                .chunk_size(10)
                .nowait()
                .map(spread_to(b, |c| c.range()))
                .launch(s)
                .unwrap();
        })?;
        Ok(())
    })
    .unwrap();
    // A only on {0, 2}; B only on {1, 3}.
    for d in [0u32, 2] {
        assert!(rt
            .mapped_sections(d)
            .iter()
            .all(|(sec, _, _)| sec.array == a.id()));
    }
    for d in [1u32, 3] {
        assert!(rt
            .mapped_sections(d)
            .iter()
            .all(|(sec, _, _)| sec.array == b.id()));
    }
}

/// Listing 13 (future work, implemented): depend on data-spread
/// directives pipelines chunk transfers with chunk kernels.
#[test]
fn listing_13_depend_on_data_spread() {
    let mut rt = rt(2);
    let m = 200;
    let b = rt.host_array("B", m + 100);
    rt.fill_host(b, |i| i as f64);
    rt.run(|s| {
        s.taskgroup(|s| {
            TargetEnterDataSpread::devices([1, 0])
                .range(100, m)
                .chunk_size(10)
                .nowait()
                .map(spread_to(b, |c| c.range()))
                .depend_out(b, |c| c.range())
                .launch(s)
                .unwrap();
            TargetSpread::devices([1, 0])
                .with_schedule(SpreadSchedule::static_chunk(10))
                .nowait()
                .map(spread_alloc(b, |c| c.range()))
                .depend_in(b, |c| c.range())
                .depend_out(b, |c| c.range())
                .parallel_for(
                    s,
                    100..100 + m,
                    KernelSpec::new("x10", 1.0, |chunk, v| {
                        for i in chunk {
                            let x = v.get(0, i);
                            v.set(0, i, 10.0 * x);
                        }
                    })
                    .arg(KernelArg::read_write(b, |r| r)),
                )
                .unwrap();
            TargetExitDataSpread::devices([1, 0])
                .range(100, m)
                .chunk_size(10)
                .nowait()
                .map(spread_from(b, |c| c.range()))
                .depend_in(b, |c| c.range())
                .launch(s)
                .unwrap();
        })?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(b);
    for i in 100..100 + m {
        assert_eq!(out[i], 10.0 * i as f64);
    }
    assert!(rt.races().is_empty());
}
