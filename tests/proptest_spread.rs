//! Property tests across the whole stack: random spread configurations
//! must always compute the same result as the sequential loop.

use proptest::prelude::*;
use target_spread::core::prelude::*;
use target_spread::devices::{DeviceSpec, Topology};
use target_spread::rt::kernel::KernelArg;
use target_spread::rt::prelude::*;

fn runtime(n_dev: usize) -> Runtime {
    let topo = Topology::uniform(
        n_dev,
        DeviceSpec::v100().with_mem_bytes(1 << 22),
        1e9,
        1.6e9,
    );
    Runtime::new(
        RuntimeConfig::new(topo)
            .with_team_threads(2)
            .with_trace(false),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random sizes, chunkings, device lists and values: the spread
    /// stencil equals the sequential stencil exactly.
    #[test]
    fn spread_stencil_equals_sequential(
        n in 8usize..300,
        chunk in 1usize..64,
        n_dev in 1usize..5,
        perm_seed in 0u64..24,
        seed in 0u64..u64::MAX,
    ) {
        // Device list: a permutation of 0..n_dev (distribution order is
        // list order, so exercise different orders).
        let mut devices: Vec<u32> = (0..n_dev as u32).collect();
        let k = (perm_seed as usize) % n_dev.max(1);
        devices.rotate_left(k);

        // The §V-B gap rule: a device's next halo'd chunk must leave a
        // gap, i.e. (n_dev − 1) · chunk ≥ 2. One device ⇒ one chunk for
        // the whole loop; two devices ⇒ chunks of ≥ 2.
        let iters = n.saturating_sub(2);
        let chunk = match n_dev {
            1 => iters.max(1),
            2 => chunk.max(2),
            _ => chunk,
        };

        let mut rt = runtime(n_dev);
        let a = rt.host_array("A", n);
        let b = rt.host_array("B", n);
        let x = seed | 1;
        rt.fill_host(a, move |i| {
            let mut v = x ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            v ^= v >> 33;
            (v % 1000) as f64
        });
        let av = rt.snapshot_host(a);
        let expect: Vec<f64> = (0..n)
            .map(|i| {
                if i == 0 || i == n - 1 {
                    0.0
                } else {
                    av[i - 1] + av[i] + av[i + 1]
                }
            })
            .collect();

        rt.run(|s| {
            TargetSpread::devices(devices.clone())
                .spread_schedule(SpreadSchedule::static_chunk(chunk))
                .map(spread_to(a, |c| c.start() - 1..c.end() + 1))
                .map(spread_from(b, |c| c.range()))
                .parallel_for(
                    s,
                    1..n - 1,
                    KernelSpec::new("stencil", 2.0, |chunk, v| {
                        for i in chunk {
                            let sum = v.get(0, i - 1) + v.get(0, i) + v.get(0, i + 1);
                            v.set(1, i, sum);
                        }
                    })
                    .arg(KernelArg::read(a, |r| r.start - 1..r.end + 1))
                    .arg(KernelArg::write(b, |r| r)),
                )?;
            Ok(())
        })
        .unwrap();
        let out = rt.snapshot_host(b);
        for i in 1..n - 1 {
            prop_assert_eq!(out[i], expect[i], "i={}", i);
        }
        // Memory hygiene on every device.
        for d in 0..n_dev as u32 {
            prop_assert_eq!(rt.device_mem_used(d), 0);
        }
        prop_assert!(rt.races().is_empty());
    }

    /// The reduction extension equals the sequential fold for random
    /// configurations and operators.
    #[test]
    fn spread_reduce_equals_sequential(
        n in 4usize..500,
        chunk in 1usize..64,
        n_dev in 1usize..5,
        op_pick in 0usize..3,
    ) {
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min][op_pick];
        let mut rt = runtime(n_dev);
        let a = rt.host_array("A", n);
        let partials = rt.host_array("P", n);
        rt.fill_host(a, |i| ((i * 37) % 101) as f64 - 50.0);
        let av = rt.snapshot_host(a);
        let expect = av
            .iter()
            .map(|&x| x * 2.0)
            .fold(op.identity(), |acc, v| op.combine(acc, v));

        let devices: Vec<u32> = (0..n_dev as u32).collect();
        let got = rt
            .run(|s| {
                TargetSpread::devices(devices.clone())
                    .spread_schedule(SpreadSchedule::static_chunk(chunk))
                    .map(spread_to(a, |c| c.range()))
                    .parallel_for_reduce(
                        s,
                        0..n,
                        KernelSpec::new("x2", 1.0, |chunk, v| {
                            for i in chunk {
                                v.set(1, i, 2.0 * v.get(0, i));
                            }
                        })
                        .arg(KernelArg::read(a, |r| r))
                        .arg(KernelArg::write(partials, |r| r)),
                        partials,
                        op,
                    )
            })
            .unwrap();
        match op {
            // Sum order matches the sequential fold exactly (host fold
            // over the partials array in index order).
            ReduceOp::Sum => prop_assert_eq!(got, expect),
            _ => prop_assert_eq!(got, expect),
        }
    }

    /// Enter/exit data spread with random range+chunk_size keeps the
    /// presence tables balanced (everything released, nothing leaks).
    #[test]
    fn data_spread_roundtrip_is_balanced(
        start in 0usize..50,
        len in 1usize..200,
        chunk in 1usize..32,
        n_dev in 2usize..5,
    ) {
        let mut rt = runtime(n_dev);
        let a = rt.host_array("A", start + len);
        rt.fill_host(a, |i| i as f64);
        let devices: Vec<u32> = (0..n_dev as u32).collect();
        rt.run(|s| {
            TargetEnterDataSpread::devices(devices.clone())
                .range(start, len)
                .chunk_size(chunk)
                .map(spread_to(a, |c| c.range()))
                .launch(s)?;
            TargetExitDataSpread::devices(devices.clone())
                .range(start, len)
                .chunk_size(chunk)
                .map(spread_from(a, |c| c.range()))
                .launch(s)?;
            Ok(())
        })
        .unwrap();
        for d in 0..n_dev as u32 {
            prop_assert_eq!(rt.device_mem_used(d), 0, "device {} leaked", d);
            prop_assert!(rt.mapped_sections(d).is_empty());
        }
        // Data survived the roundtrip.
        let out = rt.snapshot_host(a);
        for (i, &v) in out.iter().enumerate() {
            prop_assert_eq!(v, i as f64);
        }
    }
}
