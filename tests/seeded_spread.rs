//! Seeded property tests across the whole stack: random spread
//! configurations must always compute the same result as the sequential
//! loop.
//!
//! These were proptest properties in the seed; they are now plain seeded
//! loops over `spread_prng::Prng` so the workspace builds offline and
//! every failure is reproducible from the printed case description
//! alone. Shrunken historical regressions are promoted to named unit
//! tests at the bottom.

use spread_prng::Prng;
use target_spread::core::prelude::*;
use target_spread::devices::{DeviceSpec, Topology};
use target_spread::rt::kernel::KernelArg;
use target_spread::rt::prelude::*;

fn runtime(n_dev: usize) -> Runtime {
    let topo = Topology::uniform(
        n_dev,
        DeviceSpec::v100().with_mem_bytes(1 << 22),
        1e9,
        1.6e9,
    );
    Runtime::new(
        RuntimeConfig::new(topo)
            .with_team_threads(2)
            .with_trace(false),
    )
}

/// One random stencil case. The parameters mirror the seed's proptest
/// strategy; `rotation` permutes the device list (distribution order is
/// list order, so different orders must agree too).
fn check_stencil(n: usize, chunk: usize, n_dev: usize, rotation: usize, seed: u64) {
    let ctx = format!("n={n} chunk={chunk} n_dev={n_dev} rotation={rotation} seed={seed}");
    let mut devices: Vec<u32> = (0..n_dev as u32).collect();
    devices.rotate_left(rotation % n_dev.max(1));

    // The §V-B gap rule: a device's next halo'd chunk must leave a gap,
    // i.e. (n_dev − 1) · chunk ≥ 2. One device ⇒ one chunk for the whole
    // loop; two devices ⇒ chunks of ≥ 2.
    let iters = n.saturating_sub(2);
    let chunk = match n_dev {
        1 => iters.max(1),
        2 => chunk.max(2),
        _ => chunk,
    };

    let mut rt = runtime(n_dev);
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    let x = seed | 1;
    rt.fill_host(a, move |i| {
        let mut v = x ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        v ^= v >> 33;
        (v % 1000) as f64
    });
    let av = rt.snapshot_host(a);
    let expect: Vec<f64> = (0..n)
        .map(|i| {
            if i == 0 || i == n - 1 {
                0.0
            } else {
                av[i - 1] + av[i] + av[i + 1]
            }
        })
        .collect();

    rt.run(|s| {
        TargetSpread::devices(devices.clone())
            .with_schedule(SpreadSchedule::static_chunk(chunk))
            .map(spread_to(a, |c| c.start() - 1..c.end() + 1))
            .map(spread_from(b, |c| c.range()))
            .parallel_for(
                s,
                1..n - 1,
                KernelSpec::new("stencil", 2.0, |chunk, v| {
                    for i in chunk {
                        let sum = v.get(0, i - 1) + v.get(0, i) + v.get(0, i + 1);
                        v.set(1, i, sum);
                    }
                })
                .arg(KernelArg::read(a, |r| r.start - 1..r.end + 1))
                .arg(KernelArg::write(b, |r| r)),
            )?;
        Ok(())
    })
    .unwrap();
    let out = rt.snapshot_host(b);
    for i in 1..n - 1 {
        assert_eq!(out[i], expect[i], "i={i} ({ctx})");
    }
    // Memory hygiene on every device.
    for d in 0..n_dev as u32 {
        assert_eq!(rt.device_mem_used(d), 0, "device {d} leaked ({ctx})");
    }
    assert!(rt.races().is_empty(), "races reported ({ctx})");
}

/// Random sizes, chunkings, device lists and values: the spread stencil
/// equals the sequential stencil exactly.
#[test]
fn spread_stencil_equals_sequential() {
    let mut r = Prng::new(0x573_7072_6561_6431);
    for _ in 0..48 {
        let n = r.range(8, 300);
        let chunk = r.range(1, 64);
        let n_dev = r.range(1, 5);
        let rotation = r.range(0, 24);
        let seed = r.next_u64();
        check_stencil(n, chunk, n_dev, rotation, seed);
    }
}

/// The reduction extension equals the sequential fold for random
/// configurations and operators.
#[test]
fn spread_reduce_equals_sequential() {
    let mut r = Prng::new(0x5265_6475_6365);
    for _ in 0..32 {
        let n = r.range(4, 500);
        let chunk = r.range(1, 64);
        let n_dev = r.range(1, 5);
        let op = *r.pick(&[ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min]);
        let ctx = format!("n={n} chunk={chunk} n_dev={n_dev} op={op:?}");

        let mut rt = runtime(n_dev);
        let a = rt.host_array("A", n);
        let partials = rt.host_array("P", n);
        rt.fill_host(a, |i| ((i * 37) % 101) as f64 - 50.0);
        let av = rt.snapshot_host(a);
        let expect = av
            .iter()
            .map(|&x| x * 2.0)
            .fold(op.identity(), |acc, v| op.combine(acc, v));

        let devices: Vec<u32> = (0..n_dev as u32).collect();
        let got = rt
            .run(|s| {
                TargetSpread::devices(devices.clone())
                    .with_schedule(SpreadSchedule::static_chunk(chunk))
                    .map(spread_to(a, |c| c.range()))
                    .parallel_for_reduce(
                        s,
                        0..n,
                        KernelSpec::new("x2", 1.0, |chunk, v| {
                            for i in chunk {
                                v.set(1, i, 2.0 * v.get(0, i));
                            }
                        })
                        .arg(KernelArg::read(a, |r| r))
                        .arg(KernelArg::write(partials, |r| r)),
                        partials,
                        op,
                    )
            })
            .unwrap();
        // Sum order matches the sequential fold exactly (host fold over
        // the partials array in index order).
        assert_eq!(got, expect, "{ctx}");
    }
}

/// Enter/exit data spread with random range+chunk_size keeps the
/// presence tables balanced (everything released, nothing leaks).
#[test]
fn data_spread_roundtrip_is_balanced() {
    let mut r = Prng::new(0x526f_756e_6474_7269);
    for _ in 0..32 {
        let start = r.range(0, 50);
        let len = r.range(1, 200);
        let chunk = r.range(1, 32);
        let n_dev = r.range(2, 5);
        let ctx = format!("start={start} len={len} chunk={chunk} n_dev={n_dev}");

        let mut rt = runtime(n_dev);
        let a = rt.host_array("A", start + len);
        rt.fill_host(a, |i| i as f64);
        let devices: Vec<u32> = (0..n_dev as u32).collect();
        rt.run(|s| {
            TargetEnterDataSpread::devices(devices.clone())
                .range(start, len)
                .chunk_size(chunk)
                .map(spread_to(a, |c| c.range()))
                .launch(s)?;
            TargetExitDataSpread::devices(devices.clone())
                .range(start, len)
                .chunk_size(chunk)
                .map(spread_from(a, |c| c.range()))
                .launch(s)?;
            Ok(())
        })
        .unwrap();
        for d in 0..n_dev as u32 {
            assert_eq!(rt.device_mem_used(d), 0, "device {d} leaked ({ctx})");
            assert!(rt.mapped_sections(d).is_empty(), "{ctx}");
        }
        // Data survived the roundtrip.
        let out = rt.snapshot_host(a);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as f64, "{ctx}");
        }
    }
}

// ---------------------------------------------------------------------
// Promoted regressions: shrunken proptest failures from the seed's
// `proptest-regressions` file, kept as named deterministic cases so they
// are readable and survive any change to the random strategy.
// ---------------------------------------------------------------------

/// Shrunk case `n = 8, chunk = 1, n_dev = 2, perm_seed = 0, seed = 0`:
/// two devices with unit chunks violate the §V-B gap rule unless the
/// runner widens the chunk, and the halo'd first chunk starts at
/// `c.start() - 1 = 0`.
#[test]
fn regression_two_device_unit_chunk_stencil() {
    check_stencil(8, 1, 2, 0, 0);
}
