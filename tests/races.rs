//! Direct coverage for the footprint race detector
//! (`Runtime::races()` / `RaceReport`): a genuine host-footprint
//! conflict between unordered `nowait` data directives must be
//! reported, and a busy but well-formed `nowait` spread program must
//! report none.

use target_spread::core::prelude::*;
use target_spread::core::SpreadMap;
use target_spread::devices::{DeviceSpec, Topology};
use target_spread::rt::kernel::KernelArg;
use target_spread::rt::prelude::*;

fn runtime(n_dev: usize) -> Runtime {
    let topo = Topology::uniform(
        n_dev,
        DeviceSpec::v100().with_mem_bytes(1 << 22),
        1e9,
        1.6e9,
    );
    Runtime::new(
        RuntimeConfig::new(topo)
            .with_team_threads(2)
            .with_trace(false),
    )
}

/// An exit copy-out writes host `A` while an enter on another device
/// reads it; with `nowait` and no `depend` clauses the two transfers
/// start at the same virtual instant, so the conflict is real and must
/// produce a `RaceReport` naming the overlapping section.
#[test]
fn unordered_host_write_vs_read_is_reported() {
    let n = 1 << 12;
    let mut rt = runtime(2);
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        // Make A present on device 0 first (blocking, conflict-free).
        TargetEnterDataSpread::devices([0])
            .range(0, n)
            .chunk_size(n)
            .map(spread_to(a, |c| c.range()))
            .launch(s)?;
        // Now race: D2H from device 0 writes host A[0..n] while the H2D
        // enter for device 1 reads host A[0..n], unordered.
        TargetExitDataSpread::devices([0])
            .range(0, n)
            .chunk_size(n)
            .nowait()
            .map(spread_from(a, |c| c.range()))
            .launch(s)?;
        TargetEnterDataSpread::devices([1])
            .range(0, n)
            .chunk_size(n)
            .nowait()
            .map(spread_to(a, |c| c.range()))
            .launch(s)?;
        s.drain_all()?;
        // Balance device 1 so the mapping table ends empty.
        TargetExitDataSpread::devices([1])
            .range(0, n)
            .chunk_size(n)
            .map(SpreadMap::new(MapType::Release, a, |c| c.range()))
            .launch(s)?;
        Ok(())
    })
    .unwrap();
    let races = rt.races();
    assert!(
        !races.is_empty(),
        "host write vs host read on A must be flagged"
    );
    let r = &races[0];
    assert_eq!(r.section.array, a.id(), "race names array A: {r:?}");
    assert!(r.section.len > 0, "{r:?}");
}

/// The same machine running a busy multi-device `nowait` program whose
/// statements touch disjoint arrays: plenty of concurrency, zero
/// conflicts — the detector must stay silent and the results must be
/// exact.
#[test]
fn conflict_free_nowait_spread_reports_no_races() {
    let n = 1 << 12;
    let mut rt = runtime(3);
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.fill_host(b, |i| 2.0 * i as f64);
    rt.run(|s| {
        for (arr, name, c) in [(a, "bump_a", 1.0), (b, "bump_b", 10.0)] {
            TargetSpread::devices([0, 1, 2])
                .with_schedule(SpreadSchedule::static_chunk(n / 8))
                .nowait()
                .map(spread_tofrom(arr, |ch| ch.range()))
                .parallel_for(
                    s,
                    0..n,
                    KernelSpec::new(name, 2.0, move |chunk, v| {
                        for i in chunk {
                            v.set(0, i, v.get(0, i) + c);
                        }
                    })
                    .arg(KernelArg::read_write(arr, |r| r)),
                )?;
        }
        s.drain_all()?;
        Ok(())
    })
    .unwrap();
    assert!(
        rt.races().is_empty(),
        "disjoint-array nowait spreads must not be flagged: {:?}",
        rt.races()
    );
    let av = rt.snapshot_host(a);
    let bv = rt.snapshot_host(b);
    for i in 0..n {
        assert_eq!(av[i], i as f64 + 1.0);
        assert_eq!(bv[i], 2.0 * i as f64 + 10.0);
    }
}
