//! Direct coverage for the footprint race detector
//! (`Runtime::races()` / `RaceReport`): a genuine host-footprint
//! conflict between unordered `nowait` data directives must be
//! reported, and a busy but well-formed `nowait` spread program must
//! report none. Also: the sharded presence tables hammered from real
//! OS threads, one shard per thread, with no cross-shard interference.

use std::sync::Arc;
use std::thread;

use target_spread::core::prelude::*;
use target_spread::core::SpreadMap;
use target_spread::devices::{DeviceSpec, Topology};
use target_spread::rt::kernel::KernelArg;
use target_spread::rt::mapping::{EnterDecision, ExitDecision, ShardedPresence};
use target_spread::rt::prelude::*;
use target_spread::rt::{ArrayId, Section};

fn runtime(n_dev: usize) -> Runtime {
    let topo = Topology::uniform(
        n_dev,
        DeviceSpec::v100().with_mem_bytes(1 << 22),
        1e9,
        1.6e9,
    );
    Runtime::new(
        RuntimeConfig::new(topo)
            .with_team_threads(2)
            .with_trace(false),
    )
}

/// An exit copy-out writes host `A` while an enter on another device
/// reads it; with `nowait` and no `depend` clauses the two transfers
/// start at the same virtual instant, so the conflict is real and must
/// produce a `RaceReport` naming the overlapping section.
#[test]
fn unordered_host_write_vs_read_is_reported() {
    let n = 1 << 12;
    let mut rt = runtime(2);
    let a = rt.host_array("A", n);
    rt.fill_host(a, |i| i as f64);
    rt.run(|s| {
        // Make A present on device 0 first (blocking, conflict-free).
        TargetEnterDataSpread::devices([0])
            .range(0, n)
            .chunk_size(n)
            .map(spread_to(a, |c| c.range()))
            .launch(s)?;
        // Now race: D2H from device 0 writes host A[0..n] while the H2D
        // enter for device 1 reads host A[0..n], unordered.
        TargetExitDataSpread::devices([0])
            .range(0, n)
            .chunk_size(n)
            .nowait()
            .map(spread_from(a, |c| c.range()))
            .launch(s)?;
        TargetEnterDataSpread::devices([1])
            .range(0, n)
            .chunk_size(n)
            .nowait()
            .map(spread_to(a, |c| c.range()))
            .launch(s)?;
        s.drain_all()?;
        // Balance device 1 so the mapping table ends empty.
        TargetExitDataSpread::devices([1])
            .range(0, n)
            .chunk_size(n)
            .map(SpreadMap::new(MapType::Release, a, |c| c.range()))
            .launch(s)?;
        Ok(())
    })
    .unwrap();
    let races = rt.races();
    assert!(
        !races.is_empty(),
        "host write vs host read on A must be flagged"
    );
    let r = &races[0];
    assert_eq!(r.section.array, a.id(), "race names array A: {r:?}");
    assert!(r.section.len > 0, "{r:?}");
}

/// The same machine running a busy multi-device `nowait` program whose
/// statements touch disjoint arrays: plenty of concurrency, zero
/// conflicts — the detector must stay silent and the results must be
/// exact.
#[test]
fn conflict_free_nowait_spread_reports_no_races() {
    let n = 1 << 12;
    let mut rt = runtime(3);
    let a = rt.host_array("A", n);
    let b = rt.host_array("B", n);
    rt.fill_host(a, |i| i as f64);
    rt.fill_host(b, |i| 2.0 * i as f64);
    rt.run(|s| {
        for (arr, name, c) in [(a, "bump_a", 1.0), (b, "bump_b", 10.0)] {
            TargetSpread::devices([0, 1, 2])
                .with_schedule(SpreadSchedule::static_chunk(n / 8))
                .nowait()
                .map(spread_tofrom(arr, |ch| ch.range()))
                .parallel_for(
                    s,
                    0..n,
                    KernelSpec::new(name, 2.0, move |chunk, v| {
                        for i in chunk {
                            v.set(0, i, v.get(0, i) + c);
                        }
                    })
                    .arg(KernelArg::read_write(arr, |r| r)),
                )?;
        }
        s.drain_all()?;
        Ok(())
    })
    .unwrap();
    assert!(
        rt.races().is_empty(),
        "disjoint-array nowait spreads must not be flagged: {:?}",
        rt.races()
    );
    let av = rt.snapshot_host(a);
    let bv = rt.snapshot_host(b);
    for i in 0..n {
        assert_eq!(av[i], i as f64 + 1.0);
        assert_eq!(bv[i], 2.0 * i as f64 + 10.0);
    }
}

/// The sharded presence tables under genuine OS-thread concurrency: one
/// writer thread per device shard, each also continuously reading its
/// neighbour's shard through the shared-lock path. Writers must never
/// interfere across shards, readers must never observe a half-applied
/// mutation (an entry with `refcount == 0` that isn't dying), and every
/// shard must land in exactly the state its own thread's script built.
#[test]
fn concurrent_per_shard_traffic_is_isolated_and_tear_free() {
    const DEVICES: usize = 4;
    const ROUNDS: usize = 2_000;
    let sharded = Arc::new(ShardedPresence::new(DEVICES));
    let handles: Vec<_> = (0..DEVICES)
        .map(|d| {
            let sharded = Arc::clone(&sharded);
            thread::spawn(move || {
                let mut pool = target_spread::devices::MemoryPool::new(1 << 20);
                let home = Section::new(ArrayId(d as u32), 0, 64);
                let scratch = Section::new(ArrayId(d as u32), 100, 16);
                {
                    let mut t = sharded.write(d);
                    assert_eq!(t.begin_enter(home), Ok(EnterDecision::Fresh));
                    let a = pool.alloc(home.len as u64 * 8).unwrap();
                    t.insert_fresh(home, a);
                }
                for _ in 0..ROUNDS {
                    // Writer half: a refcount round-trip on `home` plus a
                    // full fresh→dying→free life of `scratch`, all under
                    // this shard's lock only.
                    {
                        let mut t = sharded.write(d);
                        assert!(matches!(t.begin_enter(home), Ok(EnterDecision::Reuse(_))));
                        assert!(matches!(
                            t.begin_exit(&home, false),
                            Ok(ExitDecision::Keep(_))
                        ));
                        assert_eq!(t.begin_enter(scratch), Ok(EnterDecision::Fresh));
                        let a = pool.alloc(scratch.len as u64 * 8).unwrap();
                        let key = t.insert_fresh(scratch, a);
                        assert_eq!(
                            t.begin_exit(&scratch, false),
                            Ok(ExitDecision::LastRef(key))
                        );
                        assert_eq!(t.finish_exit(key), Some(a));
                        pool.dealloc(a);
                    }
                    // Reader half: observe the neighbour's shard through
                    // the shared lock while its owner is mutating it.
                    let t = sharded.read((d + 1) % DEVICES);
                    for (_, e) in t.iter() {
                        assert!(
                            e.refcount >= 1 || e.dying,
                            "torn read: a live entry with refcount 0 on \
                             device {}'s shard",
                            (d + 1) % DEVICES
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for d in 0..DEVICES {
        let t = sharded.read(d);
        assert_eq!(t.len(), 1, "device {d}: only `home` survives");
        let (_, e) = t.iter().next().unwrap();
        assert_eq!(e.section, Section::new(ArrayId(d as u32), 0, 64));
        assert_eq!(e.refcount, 1);
        assert!(!e.dying);
    }
    sharded.debug_validate_all();
}
