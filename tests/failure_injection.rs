//! Failure-injection tests: every error path a user can hit, across
//! crates.

use target_spread::core::prelude::*;
use target_spread::devices::{DeviceSpec, Topology};
use target_spread::rt::kernel::KernelArg;
use target_spread::rt::prelude::*;

fn tiny_rt(n_dev: usize, mem: u64) -> Runtime {
    let topo = Topology::uniform(n_dev, DeviceSpec::v100().with_mem_bytes(mem), 1e9, 1.6e9);
    Runtime::new(RuntimeConfig::new(topo).with_team_threads(2))
}

/// OOM without backpressure fails hard (raw `cudaMalloc` behaviour).
#[test]
fn oom_fails_hard_by_default() {
    let mut rt = tiny_rt(1, 800); // 100 elements
    let a = rt.host_array("A", 200);
    let err = rt
        .run(|s| {
            TargetEnterData::device(0).map(to(a, 0..200)).launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::OutOfMemory { device: 0, .. }));
}

/// With backpressure, an over-subscribing enter waits for a release.
#[test]
fn backpressure_waits_for_release() {
    let topo = Topology::uniform(1, DeviceSpec::v100().with_mem_bytes(1600), 1e9, 1.6e9);
    let mut rt = Runtime::new(
        RuntimeConfig::new(topo)
            .with_team_threads(2)
            .with_alloc_backpressure(true),
    );
    let a = rt.host_array("A", 150);
    let b = rt.host_array("B", 150);
    rt.fill_host(b, |i| i as f64);
    rt.run(|s| {
        // A fills 150 of 200 elements.
        TargetEnterData::device(0).map(to(a, 0..150)).launch(s)?;
        // B cannot fit; the nowait enter parks until A is released.
        TargetEnterData::device(0)
            .map(to(b, 0..150))
            .nowait()
            .launch(s)?;
        TargetExitData::device(0)
            .map(spread_rt::map::release(a, 0..150))
            .launch(s)?;
        // Drain: B's enter must now complete.
        Ok(())
    })
    .unwrap();
    assert_eq!(rt.device_mem_used(0), 150 * 8);
}

/// Backpressure that can never be satisfied is a reported deadlock,
/// not a hang.
#[test]
fn backpressure_deadlock_detected() {
    let topo = Topology::uniform(1, DeviceSpec::v100().with_mem_bytes(800), 1e9, 1.6e9);
    let mut rt = Runtime::new(
        RuntimeConfig::new(topo)
            .with_team_threads(2)
            .with_alloc_backpressure(true),
    );
    let a = rt.host_array("A", 200);
    let err = rt
        .run(|s| {
            TargetEnterData::device(0).map(to(a, 0..200)).launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::Deadlock { .. }), "got {err}");
}

/// A mapping parked on backpressure whose device then dies must surface
/// `DeviceLost` — never hang waiting for a release that can no longer
/// happen. The lost-device cleanup fails stranded memory waiters.
#[test]
fn backpressure_park_on_lost_device_fails_not_hangs() {
    use target_spread::sim::{FaultPlan, SimTime};
    let run_once = || {
        let topo = Topology::uniform(1, DeviceSpec::v100().with_mem_bytes(1600), 1e9, 1.6e9);
        let mut rt = Runtime::new(
            RuntimeConfig::new(topo)
                .with_team_threads(2)
                .with_alloc_backpressure(true)
                // The copies finish within microseconds; by 1 ms the
                // only thing left alive is B's parked allocation.
                .with_fault_plan(FaultPlan::new(3).lose_device(0, SimTime::from_secs_f64(1e-3))),
        );
        let a = rt.host_array("A", 150);
        let b = rt.host_array("B", 150);
        rt.run(|s| {
            // A fills 150 of 200 elements and is never released.
            TargetEnterData::device(0).map(to(a, 0..150)).launch(s)?;
            // B cannot fit: parks forever on device 0's memory.
            TargetEnterData::device(0)
                .map(to(b, 0..150))
                .nowait()
                .launch(s)?;
            Ok(())
        })
        .unwrap_err()
    };
    let err = run_once();
    assert!(
        matches!(err, RtError::DeviceLost { device: 0, .. }),
        "got {err}"
    );
    // Deterministic: the same loss surfaces the same error.
    assert_eq!(err, run_once());
}

/// Kernel argument section not mapped on the device.
#[test]
fn kernel_section_missing() {
    let mut rt = tiny_rt(2, 1 << 20);
    let a = rt.host_array("A", 100);
    let err = rt
        .run(|s| {
            // Map only half, then launch over the full range.
            Target::device(0).map(to(a, 0..50)).parallel_for(
                s,
                0..100,
                KernelSpec::new("k", 1.0, |_c, _v| {}).arg(KernelArg::read(a, |r| r)),
            )?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::KernelSectionMissing { .. }));
}

/// A kernel body reading outside its mapped section aborts with the
/// "unmapped device access" diagnostic.
#[test]
#[should_panic(expected = "unmapped device access")]
fn kernel_out_of_section_read_panics() {
    let mut rt = tiny_rt(1, 1 << 20);
    let a = rt.host_array("A", 100);
    let _ = rt.run(|s| {
        Target::device(0).map(to(a, 10..90)).parallel_for(
            s,
            20..30,
            KernelSpec::new("bad", 1.0, |_chunk, v| {
                let _ = v.get(0, 5); // below the mapped [10, 90)
            })
            .arg(KernelArg::read(a, |r| r)),
        )?;
        Ok(())
    });
}

/// A kernel body writing outside its own chunk aborts with the
/// cross-chunk diagnostic.
#[test]
#[should_panic(expected = "cross-chunk write")]
fn kernel_cross_chunk_write_panics() {
    let mut rt = tiny_rt(1, 1 << 20);
    let a = rt.host_array("A", 100);
    let _ = rt.run(|s| {
        Target::device(0).map(tofrom(a, 0..100)).parallel_for(
            s,
            0..100,
            KernelSpec::new("bad", 1.0, |chunk, v| {
                // Write one past the end of this chunk's section.
                v.set(0, chunk.end % 100, 1.0);
            })
            .arg(KernelArg::write(a, |r| r))
            .with_schedule(spread_teams::LoopSchedule::StaticChunked { chunk: 10 }),
        )?;
        Ok(())
    });
}

/// The spread halo-overlap restriction on one device (§V-B).
#[test]
fn spread_halo_overlap_rejected() {
    let mut rt = tiny_rt(1, 1 << 20);
    let a = rt.host_array("A", 100);
    let err = rt
        .run(|s| {
            TargetEnterDataSpread::devices([0])
                .range(1, 64)
                .chunk_size(8)
                .map(spread_to(a, |c| c.halo(1, 1)))
                .launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::OverlapExtension { .. }));
}

/// Errors poison the runtime: the first error is sticky.
#[test]
fn errors_are_sticky() {
    let mut rt = tiny_rt(1, 800);
    let a = rt.host_array("A", 200);
    let e1 = rt
        .run(|s| {
            TargetEnterData::device(0).map(to(a, 0..200)).launch(s)?;
            Ok(())
        })
        .unwrap_err();
    let e2 = rt
        .run(|s| {
            TargetEnterData::device(0).map(to(a, 0..10)).launch(s)?;
            Ok(())
        })
        .unwrap_err();
    assert_eq!(e1, e2, "the original error is preserved");
}

/// Device ids outside the node are rejected by every directive.
#[test]
fn unknown_devices_rejected_everywhere() {
    let mut rt = tiny_rt(2, 1 << 20);
    let a = rt.host_array("A", 10);
    let err = rt
        .run(|s| {
            TargetSpread::devices([0, 7])
                .with_schedule(SpreadSchedule::static_chunk(2))
                .map(spread_to(a, |c| c.range()))
                .parallel_for(
                    s,
                    0..10,
                    KernelSpec::new("k", 1.0, |_c, _v| {}).arg(KernelArg::read(a, |r| r)),
                )?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, RtError::InvalidDirective(_)));
}
