//! Bounded exhaustive conformance: the runtime versus the
//! `spread-semantics` small-step machine on **every** small program.
//!
//! `spread_check::enumerate` enumerates every directive program of up
//! to a bounded number of statements over a fixed alphabet (compute
//! constructs, raw enter/exit/update in every legal and illegal
//! combination, a malformed directive), on one- and two-device
//! machines. Each program is checked end to end: the spec machine
//! predicts the final host arrays, mapping tables and exact `RtError`,
//! and the real runtime must reproduce the prediction bit-for-bit
//! under FIFO plus a seeded tie-break permutation.
//!
//! The default depth keeps the sweep tier-1-friendly (~180 programs);
//! CI raises it via `SPREAD_SEMANTICS_DEPTH=3` in release
//! (~1 700 programs) for the full bounded model check.

use spread_check::{enumerate, CheckConfig};

#[test]
fn every_bounded_program_matches_the_spec_machine() {
    let depth: usize = std::env::var("SPREAD_SEMANTICS_DEPTH")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let cfg = CheckConfig {
        interleavings: 2,
        ..CheckConfig::default()
    };
    let report = enumerate::model_check(depth, &cfg, |_, _, _| {});
    assert!(report.programs > 0);
    let disagreements: Vec<String> = report
        .failures
        .iter()
        .map(|f| format!("program #{}: {}", f.index, f.failure))
        .collect();
    assert!(
        disagreements.is_empty(),
        "depth {depth}: {} of {} bounded program(s) disagree with the \
         spread-semantics machine:\n{}",
        disagreements.len(),
        report.programs,
        disagreements.join("\n")
    );
}
